"""Batched optimization-as-a-service: POSET-RL behind a request queue.

:class:`OptimizationService` turns a trained policy into a compilation
service. Clients submit :class:`OptimizeRequest`\\ s (textual IR in) from
any thread and receive an :class:`OptimizeResult` — the predicted pass
sequence plus a size/throughput report against the unoptimized module.

**Micro-batching.** A single scheduler thread drives every in-flight
request as a greedy-rollout *session* (one
:class:`~repro.core.environment.PhaseOrderingEnv` per request). Each tick
stacks the observations of all active sessions and serves them with one
batched Q-network forward per pinned model version — the same
one-forward-drives-N machinery as vectorized training
(:meth:`RegisteredModel.act` is the serving twin of
``DQNAgent.act_batch``), so N customer modules cost one network call per
step instead of N. New requests join at tick boundaries (continuous
batching); when the service is idle, the first waiter is held for at most
``batch_window_s`` so closely-spaced arrivals share a batch, and the
window is cut short the moment ``max_batch`` requests are waiting.

**Caching.** Completed reports land in a fingerprint-keyed
:class:`~repro.serving.cache.ResultCache`; repeat submissions return the
recorded report without touching the pass pipeline or any measurement
code. Session environments are pooled per (fingerprint, action space) and
share one :class:`~repro.core.metrics.MetricsEngine` per action-space
kind, so even cache-miss rollouts over known modules run on the warm
transition cache. (Engines are segregated by action-space kind because
the transition cache keys on raw action indices, which mean different
sub-sequences in different spaces.)

**Robustness guard.** Every request carries a wall-clock deadline;
oversized or unparsable modules are rejected up front; each optimized
result is verified (memoized by result fingerprint) before it is
returned; and any pass failure, verifier failure or timeout falls back to
the stock ``-Oz`` pipeline with a per-reason error counter.

With ``semantic_check=True`` the guard goes beyond structural validity:
the optimized module is run in the reference interpreter against the
original (:func:`repro.testing.oracle.modules_equivalent`) and an
observable behaviour change — a miscompile the verifier cannot see —
falls back to ``-Oz`` with a ``miscompile:`` reason. Off by default: it
costs a handful of interpreter runs per (memoized) result.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.environment import PhaseOrderingEnv
from ..core.metrics import MetricsEngine
from ..ir.fingerprint import module_fingerprint
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import VerificationError, verify_module
from ..observability import Span, get_registry, get_tracer
from ..passes.pipelines import OZ_PASS_SEQUENCE, build_pipeline
from ..rl.network import QNetwork
from .cache import ResultCache, text_key
from .registry import ModelRegistry, RegisteredModel

#: Cap on the verified-result fingerprint memo (entries are 32-char keys).
_VERIFIED_MEMO_LIMIT = 65536

#: Cap on the text-key admission memo when it cannot live in the result
#: cache (rejections, and everything when ``result_cache_size=None``).
_FP_MEMO_LIMIT = 65536

#: Canonical order of the per-request latency stages (span children and
#: ``repro_serving_stage_seconds`` labels).
LATENCY_STAGES = ("queue", "forward", "passes", "measure", "verify")

#: Request outcomes (``repro_serving_requests_total``/latency labels).
_STATUSES = ("ok", "fallback", "rejected")


class _ServingInstruments:
    """Registry handles pre-resolved at service construction.

    Resolving an instrument (label sorting, family lookup, two lock
    acquisitions) costs microseconds — fine per pipeline run, too much
    per request on the warm cache-hit path. Binding the children once
    keeps the enabled hot path to bare ``inc``/``observe`` calls.
    """

    __slots__ = (
        "requests", "latency", "stage", "batch_size", "queue_depth",
        "cache_hits", "_registry", "_guard_trips",
    )

    def __init__(self, registry):
        self._registry = registry
        self.requests = {
            s: registry.counter(
                "repro_serving_requests_total", "requests by outcome",
                labels={"status": s},
            )
            for s in _STATUSES
        }
        self.latency = {
            s: registry.histogram(
                "repro_serving_latency_seconds", "end-to-end request latency",
                labels={"status": s},
            )
            for s in _STATUSES
        }
        self.stage = {
            s: registry.histogram(
                "repro_serving_stage_seconds",
                "end-to-end latency decomposed by stage",
                labels={"stage": s},
            )
            for s in LATENCY_STAGES
        }
        self.batch_size = registry.histogram(
            "repro_serving_batch_size", "sessions stepped per batch tick",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self.queue_depth = registry.gauge(
            "repro_serving_queue_depth", "sessions waiting to join"
        )
        self.cache_hits = registry.counter(
            "repro_serving_result_cache_hits_total",
            "requests answered from the result cache",
        )
        self._guard_trips: Dict[str, Any] = {}

    def guard_trip(self, reason: str):
        """Counter for one coarse guard-reason tag (open label set)."""
        tag = reason.split(":", 1)[0]
        counter = self._guard_trips.get(tag)
        if counter is None:
            counter = self._registry.counter(
                "repro_serving_guard_trips_total",
                "fallbacks and rejections by guard reason",
                labels={"reason": tag},
            )
            self._guard_trips[tag] = counter
        return counter


@dataclass
class OptimizeRequest:
    """One unit of service traffic: a module to optimize."""

    ir_text: str
    name: str = "<module>"


@dataclass
class OptimizeResult:
    """The service's answer: pass sequence + size/throughput report."""

    name: str
    #: ``"ok"`` (policy sequence served), ``"fallback"`` (guard tripped,
    #: ``-Oz`` result returned) or ``"rejected"`` (nothing optimized).
    status: str
    reason: Optional[str] = None
    model_version: Optional[str] = None
    action_space: Optional[str] = None
    actions: List[int] = field(default_factory=list)
    passes: List[str] = field(default_factory=list)
    base_size: int = 0
    optimized_size: int = 0
    base_throughput: float = 0.0
    optimized_throughput: float = 0.0
    fingerprint: Optional[str] = None
    optimized_ir: Optional[str] = None
    cache_hit: bool = False
    latency_s: float = 0.0
    #: Shard index that served this request (set by the sharded gateway;
    #: ``None`` for the single-process service).
    shard: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def size_reduction_pct(self) -> float:
        """Size win over the unoptimized module (positive = smaller)."""
        if not self.base_size:
            return 0.0
        return 100.0 * (self.base_size - self.optimized_size) / self.base_size

    def report(self) -> Dict[str, Any]:
        """The deterministic part of the result (excludes per-request
        fields: latency, cache flag, caller-chosen name)."""
        return {
            "status": self.status,
            "reason": self.reason,
            "model_version": self.model_version,
            "action_space": self.action_space,
            "actions": list(self.actions),
            "passes": list(self.passes),
            "base_size": self.base_size,
            "optimized_size": self.optimized_size,
            "base_throughput": self.base_throughput,
            "optimized_throughput": self.optimized_throughput,
            "fingerprint": self.fingerprint,
            "optimized_ir": self.optimized_ir,
        }

    def as_dict(self) -> Dict[str, Any]:
        out = self.report()
        out.update(
            name=self.name,
            cache_hit=self.cache_hit,
            latency_s=round(self.latency_s, 6),
            size_reduction_pct=round(self.size_reduction_pct, 2),
        )
        if self.shard is not None:
            out["shard"] = self.shard
        return out


class _Session:
    """One in-flight request: its pinned model, env and rollout state."""

    __slots__ = (
        "name", "fingerprint", "model", "future", "arrival", "deadline",
        "env", "pool_key", "state", "finalized", "stage_seconds", "traj",
    )

    def __init__(
        self,
        name: str,
        fingerprint: str,
        model: RegisteredModel,
        future: "Future[OptimizeResult]",
        arrival: float,
        deadline: float,
    ):
        self.name = name
        self.fingerprint = fingerprint
        self.model = model
        self.future = future
        self.arrival = arrival
        self.deadline = deadline
        self.env: Optional[PhaseOrderingEnv] = None
        self.pool_key: Optional[Tuple[str, str, int]] = None
        self.state: Optional[np.ndarray] = None
        self.finalized = False
        #: Accumulated wall seconds per latency stage (see LATENCY_STAGES),
        #: filled only while observability is enabled.
        self.stage_seconds: Dict[str, float] = {}
        #: ``(states, actions, rewards)`` captured for the experience tap
        #: (``None`` when no tap is configured). ``states`` ends up with
        #: one more row than ``actions``: the rollout's visited states
        #: including the terminal one.
        self.traj: Optional[Tuple[list, list, list]] = None


class OptimizationService:
    """Micro-batching front end over a :class:`ModelRegistry`."""

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        target: str = "x86-64",
        max_batch: int = 8,
        batch_window_s: float = 0.005,
        request_timeout_s: float = 60.0,
        max_instructions: int = 100_000,
        result_cache_size: Optional[int] = 1024,
        include_ir: bool = True,
        verify: bool = True,
        semantic_check: bool = False,
        metrics_cache: bool = True,
        experience_tap=None,
    ):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self.registry = registry if registry is not None else ModelRegistry()
        self.target = target
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.request_timeout_s = request_timeout_s
        self.max_instructions = max_instructions
        self.include_ir = include_ir
        self.verify = verify
        self.semantic_check = semantic_check
        self.metrics_cache = metrics_cache
        #: Optional :class:`~repro.learning.tap.ExperienceTap` — completed
        #: (verified) rollouts are logged as RL trajectories for the
        #: online trainer. Fallbacks and cache hits are never logged.
        self.experience_tap = experience_tap
        self.result_cache: Optional[ResultCache] = (
            ResultCache(result_cache_size) if result_cache_size else None
        )

        # Scheduler state. ``_queue`` is shared with client threads (under
        # ``_wake``); ``_active``, the env pool and the metrics engines are
        # touched by the scheduler thread only.
        self._wake = threading.Condition()
        self._queue: Deque[_Session] = deque()
        self._active: List[_Session] = []
        self._env_pool: Dict[Tuple[str, str, int], List[PhaseOrderingEnv]] = {}
        self._engines: Dict[str, MetricsEngine] = {}
        self._verified: set = set()
        self._sem_verified: set = set()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._closed = False

        # Exact-text admission memo (client threads, under ``_memo_lock``):
        # text key -> ("ok", fingerprint) | ("rejected", reason). With a
        # result cache configured, accepted texts are memoized *in the
        # cache* instead (``ResultCache.memo_text``) so their lifetime is
        # coupled to the results they point at; this dict then only holds
        # rejections, bounded by ``_FP_MEMO_LIMIT``.
        self._memo_lock = threading.Lock()
        self._fp_memo: Dict[str, Tuple[str, str]] = {}
        self._modules: Dict[str, Module] = {}

        self.counters: Dict[str, int] = {
            "requests": 0, "ok": 0, "cache_hits": 0,
            "fallbacks": 0, "rejected": 0, "batch_ticks": 0,
            "batched_steps": 0,
        }
        #: Per-reason guard counters, e.g. ``{"timeout": 2, "oversized": 1}``.
        self.error_counts: Dict[str, int] = {}

        # Observability is bound at construction time: a service built
        # while the global registry is disabled carries ``_observe=False``
        # and runs the exact uninstrumented hot path. When enabled, the
        # instrument children are resolved here, once, so per-request
        # publication is plain ``inc``/``observe`` calls.
        self._registry = get_registry()
        self._tracer = get_tracer()
        self._observe = self._registry.enabled
        self._instruments = (
            _ServingInstruments(self._registry) if self._observe else None
        )

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_agent(
        cls,
        agent,
        *,
        version: Optional[str] = None,
        snapshot: bool = True,
        **kwargs,
    ) -> "OptimizationService":
        """Serve a :class:`~repro.core.agent_api.PosetRL` facade's policy.

        ``snapshot=True`` (default) registers a frozen copy of the online
        network, so continued training of the facade cannot mutate the
        serving model mid-request.
        """
        network = agent.agent.online
        if snapshot:
            frozen = QNetwork(
                network.state_dim, network.num_actions,
                network.hidden, network.learning_rate,
            )
            frozen.copy_from(network)
            network = frozen
        registry = ModelRegistry()
        registry.register(
            network,
            action_space=agent.action_space_kind,
            episode_length=agent.episode_length,
            version=version,
            metadata=agent.checkpoint_metadata(),
        )
        kwargs.setdefault("target", agent.target)
        return cls(registry, **kwargs)

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        *,
        action_space: Optional[str] = None,
        version: Optional[str] = None,
        **kwargs,
    ) -> "OptimizationService":
        """Serve a saved ``.npz`` checkpoint (metadata-aware, see
        :meth:`ModelRegistry.register_checkpoint`)."""
        registry = ModelRegistry()
        registry.register_checkpoint(
            path, action_space=action_space, version=version
        )
        metadata = QNetwork.load_metadata(path)
        if "target" in metadata:
            kwargs.setdefault("target", str(metadata["target"]))
        return cls(registry, **kwargs)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "OptimizationService":
        with self._wake:
            if self._closed:
                raise RuntimeError("service has been stopped")
            if self._thread is None:
                self._running = True
                self._thread = threading.Thread(
                    target=self._loop, name="repro-serving", daemon=True
                )
                self._thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop accepting requests, drain in-flight work, join the thread."""
        self.drain(timeout)

    def drain(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Graceful shutdown: stop accepting, flush in-flight batches.

        New :meth:`submit` calls raise immediately; every request already
        queued or mid-rollout is driven to completion (its future
        resolves with a real result — nothing is dropped), and the final
        counter totals are returned so a supervisor (e.g. the sharded
        gateway's worker shutdown) can fold them into an aggregate view.
        Idempotent: a second call returns the same totals.
        """
        with self._wake:
            self._closed = True
            self._running = False
            self._wake.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout)
        if self.experience_tap is not None:
            self.experience_tap.flush()
        with self._memo_lock:
            return {
                "counters": dict(self.counters),
                "errors": dict(self.error_counts),
            }

    def __enter__(self) -> "OptimizationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- client API ---------------------------------------------------------
    def submit(
        self, ir_text: str, name: str = "<module>"
    ) -> "Future[OptimizeResult]":
        """Enqueue one module; returns a future for its result.

        The admission guard runs on the caller's thread: parse/oversize
        rejection, exact-text memoization, fingerprinting and the result
        cache lookup. Cache hits complete the future immediately — they
        never reach the scheduler, the pass pipeline or any measurement
        code. The active model version is pinned here, so a hot reload
        between submission and execution does not change this request's
        policy.
        """
        if self._closed:
            # Checked again under the lock before enqueueing; this early
            # copy also stops the cache-hit fast path from answering
            # after a drain ("stops accepting" means cached results too).
            raise RuntimeError("service has been stopped")
        future: "Future[OptimizeResult]" = Future()
        arrival = time.monotonic()
        self._count("requests")

        key = text_key(ir_text)
        with self._memo_lock:
            memo = self._fp_memo.get(key)
        if memo is None and self.result_cache is not None:
            fingerprint = self.result_cache.lookup_text(key)
            if fingerprint is not None:
                memo = ("ok", fingerprint)
        if memo is None:
            memo = self._admission_check(key, ir_text)
        kind, payload = memo
        if kind == "rejected":
            self._reject(future, name, arrival, payload)
            return future
        fingerprint = payload

        model = self.registry.active
        if self.result_cache is not None:
            hit = self.result_cache.get(fingerprint, model.version)
            if hit is not None:
                self._count("cache_hits")
                latency_s = time.monotonic() - arrival
                future.set_result(replace(
                    hit, name=name, cache_hit=True, latency_s=latency_s,
                ))
                self._publish_result(name, hit.status, latency_s,
                                     cache_hit=True)
                return future

        session = _Session(
            name=name,
            fingerprint=fingerprint,
            model=model,
            future=future,
            arrival=arrival,
            deadline=arrival + self.request_timeout_s,
        )
        with self._wake:
            if self._closed:
                raise RuntimeError("service has been stopped")
            self._queue.append(session)
            if self._observe:
                self._instruments.queue_depth.set(len(self._queue))
            self._wake.notify_all()
        return future

    def submit_request(self, request: OptimizeRequest) -> "Future[OptimizeResult]":
        return self.submit(request.ir_text, name=request.name)

    def optimize(
        self, ir_text: str, name: str = "<module>",
        timeout: Optional[float] = None,
    ) -> OptimizeResult:
        """Synchronous convenience: submit and wait (auto-starts)."""
        self.start()
        budget = timeout if timeout is not None else self.request_timeout_s + 60.0
        return self.submit(ir_text, name=name).result(timeout=budget)

    # -- observability ------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "counters": dict(self.counters),
            "errors": dict(self.error_counts),
            "models": {
                v: self.registry.get(v).describe()
                for v in self.registry.versions()
            },
        }
        if self.result_cache is not None:
            out["result_cache"] = self.result_cache.stats.as_dict()
        out["metrics"] = {
            kind: engine.stats() for kind, engine in self._engines.items()
        }
        return out

    # -- admission (client threads) -----------------------------------------
    def _admission_check(self, key: str, ir_text: str) -> Tuple[str, str]:
        """Parse/oversize guard + fingerprint, memoized on exact text."""
        try:
            module = parse_module(ir_text)
        except Exception as exc:
            memo = ("rejected", f"parse_error: {exc}")
        else:
            count = module.instruction_count
            if count > self.max_instructions:
                memo = (
                    "rejected",
                    f"oversized: {count} instructions exceed the "
                    f"service limit of {self.max_instructions}",
                )
            else:
                fingerprint = module_fingerprint(module)
                memo = ("ok", fingerprint)
                with self._memo_lock:
                    self._modules.setdefault(fingerprint, module)
                if self.result_cache is not None:
                    # Memoize in the cache so the entry's lifetime is
                    # coupled to the results it points at.
                    self.result_cache.memo_text(key, fingerprint)
                    return memo
        with self._memo_lock:
            if len(self._fp_memo) >= _FP_MEMO_LIMIT:
                self._fp_memo.clear()
            self._fp_memo[key] = memo
        return memo

    def _count(self, key: str, n: int = 1) -> None:
        with self._memo_lock:
            self.counters[key] = self.counters.get(key, 0) + n

    def _count_error(self, reason: str) -> None:
        tag = reason.split(":", 1)[0]
        with self._memo_lock:
            self.error_counts[tag] = self.error_counts.get(tag, 0) + 1

    def _reject(
        self, future: Future, name: str, arrival: float, reason: str
    ) -> None:
        self._count("rejected")
        self._count_error(reason)
        latency_s = time.monotonic() - arrival
        future.set_result(OptimizeResult(
            name=name, status="rejected", reason=reason,
            latency_s=latency_s,
        ))
        self._publish_result(name, "rejected", latency_s, reason=reason)

    # -- observability publication ------------------------------------------
    def _publish_result(
        self,
        name: str,
        status: str,
        latency_s: float,
        stage_seconds: Optional[Dict[str, float]] = None,
        reason: Optional[str] = None,
        cache_hit: bool = False,
    ) -> None:
        """Mirror one finished request into the metric registry/tracer.

        No-op unless observability was enabled when the service was
        constructed. Scheduler-completed requests carry ``stage_seconds``
        and yield both per-stage histograms and one ``request`` span tree
        (queue/forward/passes/measure/verify) in the trace ring.
        """
        if not self._observe:
            return
        instruments = self._instruments
        instruments.requests[status].inc()
        if cache_hit:
            instruments.cache_hits.inc()
        instruments.latency[status].observe(latency_s)
        if reason is not None:
            instruments.guard_trip(reason).inc()
        if stage_seconds:
            stage_instruments = instruments.stage
            for stage in LATENCY_STAGES:
                if stage in stage_seconds:
                    stage_instruments[stage].observe(stage_seconds[stage])
            if self._tracer.enabled:
                tags = {"name": name, "status": status}
                if reason is not None:
                    tags["reason"] = reason
                root = Span("request", duration_s=latency_s, tags=tags)
                root.children = [
                    Span(stage, duration_s=stage_seconds[stage])
                    for stage in LATENCY_STAGES
                    if stage in stage_seconds
                ]
                self._tracer.record(root)

    # -- scheduler thread ---------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._wake:
                while self._running and not self._queue and not self._active:
                    self._wake.wait(0.1)
                if not self._running and not self._queue and not self._active:
                    return
                if not self._active and self._queue:
                    # Batch-forming window: the oldest waiter is held at
                    # most ``batch_window_s`` for company, cut short as
                    # soon as the batch is full.
                    window_end = self._queue[0].arrival + self.batch_window_s
                    while self._running and len(self._queue) < self.max_batch:
                        remaining = window_end - time.monotonic()
                        if remaining <= 0:
                            break
                        self._wake.wait(remaining)
                admitted: List[_Session] = []
                while self._queue and (
                    len(self._active) + len(admitted) < self.max_batch
                ):
                    admitted.append(self._queue.popleft())
                if self._observe and admitted:
                    self._instruments.queue_depth.set(len(self._queue))
            for session in admitted:
                self._admit(session)
            try:
                self._tick()
            except Exception as exc:  # pragma: no cover - defensive
                # A scheduler crash must not strand submitters on futures
                # that will never resolve.
                for session in self._active:
                    if not session.finalized:
                        self._finalize_fallback(
                            session, f"scheduler_error: {exc}"
                        )
                self._active = []

    def _engine_for(self, kind: str) -> MetricsEngine:
        engine = self._engines.get(kind)
        if engine is None:
            # ``threadsafe``: the scheduler owns the rollouts, but client
            # threads reach the same caches through ``stats()`` and the
            # counters race without the lock.
            engine = MetricsEngine(
                target=self.target, enabled=self.metrics_cache,
                threadsafe=True,
            )
            self._engines[kind] = engine
        return engine

    def _admit(self, session: _Session) -> None:
        """Attach a (pooled or fresh) environment and start the rollout."""
        now = time.monotonic()
        if self._observe:
            # Pre-seed every stage so the per-step hot loop can use plain
            # ``+=`` instead of ``.get()`` chains.
            session.stage_seconds = {
                "queue": now - session.arrival, "forward": 0.0,
                "passes": 0.0, "measure": 0.0, "verify": 0.0,
            }
        if now > session.deadline:
            self._finalize_fallback(session, "timeout: expired in queue")
            return
        try:
            model = session.model
            pool_key = (
                session.fingerprint,
                model.action_space_kind,
                model.episode_length,
            )
            pool = self._env_pool.get(pool_key)
            env = pool.pop() if pool else None
            if env is None:
                with self._memo_lock:
                    module = self._modules[session.fingerprint]
                env = PhaseOrderingEnv(
                    module,
                    model.action_space,
                    target=self.target,
                    episode_length=model.episode_length,
                    metrics=self._engine_for(model.action_space_kind),
                )
            session.env = env
            session.pool_key = pool_key
            session.state = env.reset()
            if self.experience_tap is not None:
                session.traj = ([session.state], [], [])
            self._active.append(session)
        except Exception as exc:
            self._finalize_fallback(session, f"env_error: {exc}")

    def _tick(self) -> None:
        """One lockstep step of every active session.

        Safe to call with no active sessions (an empty batch tick is a
        no-op). Sessions are grouped by pinned model version, so a hot
        reload mid-stream simply yields one batched forward per model
        generation until the old sessions drain.
        """
        if not self._active:
            return
        now = time.monotonic()
        for session in self._active:
            if now > session.deadline:
                self._finalize_fallback(session, "timeout: deadline exceeded")
        self._active = [s for s in self._active if not s.finalized]
        if not self._active:
            return

        groups: Dict[str, List[_Session]] = {}
        for session in self._active:
            groups.setdefault(session.model.version, []).append(session)

        self._count("batch_ticks")
        observe = self._observe
        for sessions in groups.values():
            model = sessions[0].model
            states = np.stack([s.state for s in sessions])
            try:
                if observe:
                    forward_start = time.perf_counter()
                    actions = model.act(states)
                    forward_s = time.perf_counter() - forward_start
                    for session in sessions:
                        # Wall-clock attribution: every session in the
                        # group waited on this one batched forward.
                        session.stage_seconds["forward"] += forward_s
                    self._instruments.batch_size.observe(len(sessions))
                else:
                    actions = model.act(states)
            except Exception as exc:
                for session in sessions:
                    self._finalize_fallback(session, f"model_error: {exc}")
                continue
            self._count("batched_steps", len(sessions))
            for session, action in zip(sessions, actions):
                env = session.env
                assert env is not None
                try:
                    state, reward, done, info = env.step(int(action))
                except Exception as exc:
                    self._finalize_fallback(
                        session,
                        f"pass_error: step {env.steps} "
                        f"(action {int(action)}): {exc}",
                    )
                    continue
                if observe:
                    stages = session.stage_seconds
                    stages["passes"] += info.passes_seconds
                    stages["measure"] += info.measure_seconds
                session.state = state
                if session.traj is not None:
                    states, acts, rewards = session.traj
                    states.append(state)
                    acts.append(int(action))
                    rewards.append(float(reward))
                if done:
                    self._finalize_ok(session)
        self._active = [s for s in self._active if not s.finalized]

    # -- finalization (scheduler thread) ------------------------------------
    def _note_verify_time(self, session: _Session, start: float) -> None:
        if self._observe:
            session.stage_seconds["verify"] = (
                session.stage_seconds.get("verify", 0.0)
                + (time.perf_counter() - start)
            )

    def _release_env(self, session: _Session) -> None:
        env, session.env = session.env, None
        if env is not None and session.pool_key is not None:
            pool = self._env_pool.setdefault(session.pool_key, [])
            if len(pool) < self.max_batch:
                pool.append(env)

    def _finalize_ok(self, session: _Session) -> None:
        """Verify the rollout result and answer with the policy report."""
        env = session.env
        assert env is not None
        verify_start = time.perf_counter()
        try:
            result_fp = env.fingerprint
            needs_verify = self.verify and (
                result_fp is None or result_fp not in self._verified
            )
            needs_sem_check = self.semantic_check and (
                result_fp is None
                or (session.fingerprint, result_fp) not in self._sem_verified
            )
            optimized: Optional[Module] = None
            if needs_verify or needs_sem_check or self.include_ir:
                optimized = env.current
            if needs_verify:
                verify_module(optimized)
                if result_fp is not None:
                    if len(self._verified) >= _VERIFIED_MEMO_LIMIT:
                        self._verified.clear()
                    self._verified.add(result_fp)
            if needs_sem_check:
                from ..testing.oracle import modules_equivalent

                with self._memo_lock:
                    original = self._modules[session.fingerprint]
                mismatch = modules_equivalent(original, optimized)
                if mismatch is not None:
                    self._note_verify_time(session, verify_start)
                    self._finalize_fallback(session, f"miscompile: {mismatch}")
                    return
                if result_fp is not None:
                    if len(self._sem_verified) >= _VERIFIED_MEMO_LIMIT:
                        self._sem_verified.clear()
                    self._sem_verified.add((session.fingerprint, result_fp))
        except VerificationError as exc:
            self._note_verify_time(session, verify_start)
            self._finalize_fallback(session, f"verify_error: {exc}")
            return
        except Exception as exc:
            self._note_verify_time(session, verify_start)
            self._finalize_fallback(session, f"finalize_error: {exc}")
            return
        self._note_verify_time(session, verify_start)

        model = session.model
        actions = [info.action for info in env.history]
        passes: List[str] = []
        for action in actions:
            passes.extend(model.action_space.passes_for(action))
        result = OptimizeResult(
            name=session.name,
            status="ok",
            model_version=model.version,
            action_space=model.action_space_kind,
            actions=actions,
            passes=passes,
            base_size=env.base_size,
            optimized_size=env.last_size,
            base_throughput=env.base_throughput,
            optimized_throughput=env.last_throughput,
            fingerprint=session.fingerprint,
            optimized_ir=(
                print_module(optimized)
                if self.include_ir and optimized is not None
                else None
            ),
        )
        if self.result_cache is not None:
            self.result_cache.put(session.fingerprint, model.version, result)
        if self.experience_tap is not None and session.traj is not None:
            # Only verified "ok" rollouts become training experience; the
            # tap itself never raises into the scheduler.
            states, traj_actions, traj_rewards = session.traj
            self.experience_tap.record(states, traj_actions, traj_rewards)
        self._release_env(session)
        self._count("ok")
        session.finalized = True
        latency_s = time.monotonic() - session.arrival
        session.future.set_result(replace(result, latency_s=latency_s))
        self._publish_result(
            session.name, "ok", latency_s,
            stage_seconds=session.stage_seconds,
        )

    def _finalize_fallback(self, session: _Session, reason: str) -> None:
        """Answer with the stock ``-Oz`` result; never raises."""
        self._release_env(session)
        self._count("fallbacks")
        self._count_error(reason)
        result = self._fallback_result(session, reason)
        session.finalized = True
        session.future.set_result(result)
        self._publish_result(
            session.name, result.status, result.latency_s,
            stage_seconds=session.stage_seconds or None,
            reason=reason,
        )

    def _fallback_result(self, session: _Session, reason: str) -> OptimizeResult:
        try:
            with self._memo_lock:
                original = self._modules[session.fingerprint]
            engine = self._engine_for(session.model.action_space_kind)
            base_size = engine.size(original).total_bytes
            base_throughput = engine.throughput(original).throughput
            copy = original.clone()
            build_pipeline("Oz").run(copy)
            return OptimizeResult(
                name=session.name,
                status="fallback",
                reason=reason,
                model_version=session.model.version,
                action_space=session.model.action_space_kind,
                passes=list(OZ_PASS_SEQUENCE),
                base_size=base_size,
                optimized_size=engine.size(copy).total_bytes,
                base_throughput=base_throughput,
                optimized_throughput=engine.throughput(copy).throughput,
                fingerprint=session.fingerprint,
                optimized_ir=print_module(copy) if self.include_ir else None,
                latency_s=time.monotonic() - session.arrival,
            )
        except Exception as exc:  # pragma: no cover - double fault
            return OptimizeResult(
                name=session.name,
                status="rejected",
                reason=f"{reason}; fallback_failed: {exc}",
                model_version=session.model.version,
                fingerprint=session.fingerprint,
                latency_s=time.monotonic() - session.arrival,
            )
