"""Result cache for the optimization service.

Completed :class:`~repro.serving.service.OptimizeResult` reports are keyed
on ``(module fingerprint, model version)`` — the structural fingerprint
from :mod:`repro.ir.fingerprint`, so two textually different but
structurally identical submissions share one entry, and a hot reload
(new model version) never serves a stale sequence.

A repeat submission is answered entirely from this cache: no pass runs,
no size/MCA/embedding measurement, no environment step — the recorded
report is returned verbatim (only per-request fields like latency and the
``cache_hit`` flag differ).

In front of the structural key sits an exact-text memo: byte-identical
resubmissions (the common serving case) skip even the parse and the
fingerprint walk.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Dict, Hashable, Optional, Tuple

from ..caching import CacheStats, LRUCache


def text_key(ir_text: str) -> str:
    """Cheap exact-text key (128-bit blake2b of the submitted bytes)."""
    return hashlib.blake2b(ir_text.encode(), digest_size=16).hexdigest()


class ResultCache:
    """Thread-safe LRU of finished optimization reports.

    The underlying :class:`~repro.caching.LRUCache` supplies the bounded
    storage and hit/miss/eviction counters; this wrapper adds the lock
    (results are looked up from every client thread) and the composite
    ``(fingerprint, model_version)`` key.
    """

    def __init__(self, capacity: int = 1024):
        self._lock = threading.Lock()
        self._cache = LRUCache(capacity)

    def _key(self, fingerprint: str, model_version: str) -> Hashable:
        return (fingerprint, model_version)

    def get(self, fingerprint: str, model_version: str) -> Optional[Any]:
        with self._lock:
            return self._cache.get(self._key(fingerprint, model_version))

    def put(self, fingerprint: str, model_version: str, result: Any) -> None:
        with self._lock:
            self._cache.put(self._key(fingerprint, model_version), result)

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return self._cache.stats
