"""Result cache for the optimization service.

Completed :class:`~repro.serving.service.OptimizeResult` reports are keyed
on ``(module fingerprint, model version)`` — the structural fingerprint
from :mod:`repro.ir.fingerprint`, so two textually different but
structurally identical submissions share one entry, and a hot reload
(new model version) never serves a stale sequence.

A repeat submission is answered entirely from this cache: no pass runs,
no size/MCA/embedding measurement, no environment step — the recorded
report is returned verbatim (only per-request fields like latency and the
``cache_hit`` flag differ).

In front of the structural key sits an exact-text **admission memo**:
byte-identical resubmissions (the common serving case) skip even the
parse and the fingerprint walk. The memo lives *inside* the cache so its
lifetime is coupled to the results it points at: when the last
``(fingerprint, version)`` entry for a fingerprint is evicted by
capacity pressure, every text key memoized for that fingerprint is
dropped with it — a stranded memo entry would otherwise keep answering
with a fingerprint whose result is gone, and the memo itself would grow
without bound. Text keys memoized before any result lands (the request
is still in flight) are bounded separately by ``memo_capacity``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Set

from ..caching import CacheStats, LRUCache


def text_key(ir_text: str) -> str:
    """Cheap exact-text key (128-bit blake2b of the submitted bytes)."""
    return hashlib.blake2b(ir_text.encode(), digest_size=16).hexdigest()


class ResultCache:
    """Thread-safe LRU of finished optimization reports.

    The underlying :class:`~repro.caching.LRUCache` supplies the bounded
    storage and hit/miss/eviction counters; this wrapper adds the lock
    (results are looked up from every client thread), the composite
    ``(fingerprint, model_version)`` key, and the exact-text admission
    memo whose entries are evicted together with their fingerprint's
    last result entry.
    """

    def __init__(self, capacity: int = 1024, memo_capacity: Optional[int] = None):
        self._lock = threading.Lock()
        self._cache = LRUCache(capacity, on_evict=self._entry_evicted)
        #: Bound on text keys memoized ahead of (or outliving) results.
        self._memo_capacity = 4 * capacity if memo_capacity is None else memo_capacity
        if self._memo_capacity <= 0:
            raise ValueError("memo_capacity must be positive")
        self._text_memo: "OrderedDict[str, str]" = OrderedDict()
        self._fp_texts: Dict[str, Set[str]] = {}
        #: Live ``(fingerprint, version)`` entry count per fingerprint —
        #: the memo for a fingerprint survives until this reaches zero.
        self._fp_live: Dict[str, int] = {}

    def _key(self, fingerprint: str, model_version: str) -> Hashable:
        return (fingerprint, model_version)

    # -- results ------------------------------------------------------------
    def get(self, fingerprint: str, model_version: str) -> Optional[Any]:
        with self._lock:
            return self._cache.get(self._key(fingerprint, model_version))

    def put(self, fingerprint: str, model_version: str, result: Any) -> None:
        with self._lock:
            key = self._key(fingerprint, model_version)
            if key not in self._cache:
                self._fp_live[fingerprint] = self._fp_live.get(fingerprint, 0) + 1
            self._cache.put(key, result)

    def _entry_evicted(self, key: Hashable, value: Any) -> None:
        # Runs under self._lock (callback fires inside self._cache.put).
        fingerprint = key[0]
        live = self._fp_live.get(fingerprint, 0) - 1
        if live > 0:
            self._fp_live[fingerprint] = live
            return
        self._fp_live.pop(fingerprint, None)
        for text in self._fp_texts.pop(fingerprint, ()):
            self._text_memo.pop(text, None)

    # -- exact-text admission memo ------------------------------------------
    def memo_text(self, key: str, fingerprint: str) -> None:
        """Record that the exact text ``key`` parses to ``fingerprint``."""
        with self._lock:
            previous = self._text_memo.get(key)
            if previous == fingerprint:
                return
            if previous is not None:
                self._drop_text(key, previous)
            self._text_memo[key] = fingerprint
            self._fp_texts.setdefault(fingerprint, set()).add(key)
            while len(self._text_memo) > self._memo_capacity:
                old_key, old_fp = self._text_memo.popitem(last=False)
                texts = self._fp_texts.get(old_fp)
                if texts is not None:
                    texts.discard(old_key)
                    if not texts:
                        del self._fp_texts[old_fp]

    def _drop_text(self, key: str, fingerprint: str) -> None:
        self._text_memo.pop(key, None)
        texts = self._fp_texts.get(fingerprint)
        if texts is not None:
            texts.discard(key)
            if not texts:
                del self._fp_texts[fingerprint]

    def lookup_text(self, key: str) -> Optional[str]:
        """Fingerprint previously memoized for this exact text, if any."""
        with self._lock:
            return self._text_memo.get(key)

    @property
    def memo_size(self) -> int:
        with self._lock:
            return len(self._text_memo)

    # -- bookkeeping ---------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            # ``LRUCache.clear`` fires no eviction callbacks; everything
            # goes at once here too.
            self._cache.clear()
            self._text_memo.clear()
            self._fp_texts.clear()
            self._fp_live.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return self._cache.stats
