"""Optimization-as-a-service: the deployed face of POSET-RL.

The training side of this repo produces a policy; this package serves it.
:class:`OptimizationService` accepts concurrent textual-IR requests,
micro-batches the greedy rollouts of all in-flight sessions into one
Q-network forward per tick, memoizes full reports in a fingerprint-keyed
result cache, and guards every request with timeouts, result
verification and automatic ``-Oz`` fallback. :class:`ModelRegistry`
provides versioned checkpoints with atomic hot reload, and
:func:`run_load` is the closed-loop harness behind
``python -m repro.tools.serve``.

See ``docs/SERVING.md`` for the architecture and measured numbers.
"""

from .cache import ResultCache, text_key
from .loadgen import LoadReport, request_pool, run_load
from .registry import ModelRegistry, RegisteredModel
from .service import OptimizationService, OptimizeRequest, OptimizeResult

__all__ = [
    "LoadReport",
    "ModelRegistry",
    "OptimizationService",
    "OptimizeRequest",
    "OptimizeResult",
    "RegisteredModel",
    "ResultCache",
    "request_pool",
    "run_load",
    "text_key",
]
