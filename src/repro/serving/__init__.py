"""Optimization-as-a-service: the deployed face of POSET-RL.

The training side of this repo produces a policy; this package serves it.
:class:`OptimizationService` accepts concurrent textual-IR requests,
micro-batches the greedy rollouts of all in-flight sessions into one
Q-network forward per tick, memoizes full reports in a fingerprint-keyed
result cache, and guards every request with timeouts, result
verification and automatic ``-Oz`` fallback. :class:`ModelRegistry`
provides versioned checkpoints with atomic hot reload.

One service is one process; :class:`ShardedGateway` scales out
horizontally — N worker subprocesses, each a full service, behind a
front door owning admission control (bounded in-flight window,
per-tenant token buckets) and fingerprint-affine routing so repeat
traffic keeps hitting warm shard caches. :func:`run_load` (closed-loop)
and :func:`run_open_loop` (Poisson open-loop with bursts and tenant
mixes) are the harnesses behind ``python -m repro.tools.serve``.

See ``docs/SERVING.md`` for the architecture and measured numbers.
"""

from .cache import ResultCache, text_key
from .gateway import (
    GatewayStats,
    ShardSpec,
    ShardedGateway,
    TokenBucket,
    shard_for_fingerprint,
)
from .loadgen import (
    LoadReport,
    OpenLoopReport,
    TenantMix,
    request_pool,
    run_load,
    run_open_loop,
)
from .registry import ModelRegistry, RegisteredModel
from .service import OptimizationService, OptimizeRequest, OptimizeResult

__all__ = [
    "GatewayStats",
    "LoadReport",
    "ModelRegistry",
    "OpenLoopReport",
    "OptimizationService",
    "OptimizeRequest",
    "OptimizeResult",
    "RegisteredModel",
    "ResultCache",
    "ShardSpec",
    "ShardedGateway",
    "TenantMix",
    "TokenBucket",
    "request_pool",
    "run_load",
    "run_open_loop",
    "shard_for_fingerprint",
    "text_key",
]
