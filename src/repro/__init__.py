"""POSET-RL reproduction.

Phase ordering for optimizing size and execution time with reinforcement
learning (Jain et al., ISPASS 2022), rebuilt end-to-end in Python on a
from-scratch SSA compiler substrate. See DESIGN.md for the system map.

Quick start::

    from repro import PosetRL, load_suite

    agent = PosetRL(action_space="odg", target="x86-64")
    agent.train(load_suite("llvm_test_suite")[:16], episodes=20)
    summary = agent.evaluate_suite("mibench", load_suite("mibench"))
    print(summary.row())
"""

from .core import (
    MANUAL_SUBSEQUENCES,
    OZ_PASS_SEQUENCE,
    OzDependenceGraph,
    PAPER_ODG_SUBSEQUENCES,
    PhaseOrderingEnv,
    PosetRL,
    RewardWeights,
    make_action_space,
)
from .workloads import load_suite

__version__ = "1.0.0"

__all__ = [
    "MANUAL_SUBSEQUENCES",
    "OZ_PASS_SEQUENCE",
    "OzDependenceGraph",
    "PAPER_ODG_SUBSEQUENCES",
    "PhaseOrderingEnv",
    "PosetRL",
    "RewardWeights",
    "load_suite",
    "make_action_space",
    "__version__",
]
