"""Per-stage timing of one RL episode: where does a step's time go?

Breaks an episode down into the stages the environment runs — pass
pipeline (``apply``), codegen size, MCA scheduling, IR2Vec embedding,
fingerprinting — and prints a table of per-stage totals, plus cache
counters when the incremental metrics engine is on.

Examples::

    python -m repro.tools.profile input.ll
    python -m repro.tools.profile --suite mibench --benchmark susan
    python -m repro.tools.profile --no-cache --steps 30 input.ll
    python -m repro.tools.profile --episodes 5 input.ll   # repeat to see hits
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from ..codegen.target import TARGETS
from ..core.environment import PhaseOrderingEnv, make_action_space
from ..core.metrics import MetricsEngine
from ..ir.parser import parse_module
from ..workloads.suites import load_suite


class _StageClock:
    """Accumulates wall time and call counts per stage."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def timed(self, stage: str, fn, *args, **kwargs):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        self.totals[stage] = self.totals.get(stage, 0.0) + elapsed
        self.calls[stage] = self.calls.get(stage, 0) + 1
        return result


def _instrument(env, engine: MetricsEngine, clock: _StageClock) -> None:
    """Route the env's stage calls through the clock.

    Wraps the engine's bound methods (and ``ActionSpace.apply``) on the
    *instances*, so the episode runs through the real ``env.step`` path —
    including the transition cache, whose hits show up as stages simply
    not being called.
    """
    stages = (
        ("passes", env.action_space, "apply"),
        ("codegen", engine, "size"),
        ("mca", engine, "throughput"),
        ("embedding", engine, "embedding"),
        ("fingerprint", engine, "fingerprint"),
    )
    for stage, obj, attr in stages:
        original = getattr(obj, attr)

        def wrapped(*args, _stage=stage, _fn=original, **kwargs):
            return clock.timed(_stage, _fn, *args, **kwargs)

        setattr(obj, attr, wrapped)


def _profile_episode(env, actions) -> None:
    env.reset()
    for action in actions:
        env.step(action)


def run(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-profile", description=__doc__)
    parser.add_argument("--target", default="x86-64",
                        choices=sorted(set(TARGETS)))
    parser.add_argument("--action-space", default="odg",
                        choices=("odg", "manual"))
    parser.add_argument("--steps", type=int, default=15,
                        help="actions per episode (default 15)")
    parser.add_argument("--episodes", type=int, default=1,
                        help="episodes to run (repeats expose cache hits)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-cache", action="store_true",
                        help="profile the uncached metrics paths")
    parser.add_argument("--suite", help="profile a workload-suite benchmark "
                        "instead of an input file")
    parser.add_argument("--benchmark",
                        help="benchmark name within --suite (default: first)")
    parser.add_argument("input", nargs="?",
                        help="textual IR file (- for stdin)")
    args = parser.parse_args(argv)

    if args.suite:
        try:
            corpus = load_suite(args.suite)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 1
        if args.benchmark:
            matches = [m for n, m in corpus if n == args.benchmark]
            if not matches:
                names = ", ".join(n for n, _ in corpus)
                print(f"no benchmark {args.benchmark!r} in {args.suite} "
                      f"(have: {names})", file=sys.stderr)
                return 1
            module = matches[0]
        else:
            module = corpus[0][1]
    elif args.input:
        text = sys.stdin.read() if args.input == "-" else open(args.input).read()
        module = parse_module(text)
    else:
        parser.error("provide an input file or --suite")

    action_space = make_action_space(args.action_space)
    engine = MetricsEngine(target=args.target, enabled=not args.no_cache)
    env = PhaseOrderingEnv(
        module,
        action_space=action_space,
        target=args.target,
        episode_length=max(args.steps, 1),
        metrics=engine,
    )
    import numpy as np

    rng = np.random.RandomState(args.seed)
    actions = [int(rng.randint(len(action_space))) for _ in range(args.steps)]

    clock = _StageClock()
    _instrument(env, engine, clock)
    start = time.perf_counter()
    for _ in range(args.episodes):
        _profile_episode(env, actions)
    wall = time.perf_counter() - start

    mode = "uncached" if args.no_cache else "cached"
    print(f"profile: {args.episodes} episode(s) x {args.steps} steps "
          f"({mode}, target {args.target})")
    print(f"{'stage':<12} {'total s':>10} {'calls':>7} {'ms/call':>9} {'share':>7}")
    for stage in ("passes", "codegen", "mca", "embedding", "fingerprint"):
        total = clock.totals.get(stage, 0.0)
        calls = clock.calls.get(stage, 0)
        per = 1000.0 * total / calls if calls else 0.0
        share = 100.0 * total / wall if wall else 0.0
        print(f"{stage:<12} {total:>10.4f} {calls:>7} {per:>9.3f} {share:>6.1f}%")
    print(f"{'wall':<12} {wall:>10.4f}")

    if engine.enabled:
        print("\ncache counters:")
        for name, counters in engine.stats().items():
            print(f"  {name:<12} hits={counters['hits']:<8.0f} "
                  f"misses={counters['misses']:<8.0f} "
                  f"evictions={counters['evictions']:<6.0f} "
                  f"hit_rate={counters['hit_rate']:.2%}")
    return 0


def main() -> int:  # pragma: no cover - console entry
    try:
        return run()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
