"""Per-stage timing of one RL episode: where does a step's time go?

Breaks an episode down into the stages the environment runs — pass
pipeline (``apply``), codegen size, MCA scheduling, IR2Vec embedding,
fingerprinting — and prints a table of per-stage totals, plus cache
counters when the incremental metrics engine is on.

``--train N`` switches to the training-throughput harness: it runs one
training loop — ``--train-mode`` picks serial, vectorized (default) or
the distributed actor-learner pipeline, ``--algo`` picks the learner
(ddqn / dqn / prioritized-ddqn / ppo) — for N environment steps over the
selected corpus and prints the
:class:`~repro.core.agent_api.TrainThroughput` report (steps/sec,
episodes/sec, training updates). ``--compare-serial`` additionally times
the serial ``PosetRL.train`` loop on the same budget and prints the
speedup; distributed runs also print the pipeline report (broadcasts,
snapshot staleness, per-actor rates) and ``--fail-on-no-broadcast``
turns a broadcast-free or unclean run into a nonzero exit for CI.

Examples::

    python -m repro.tools.profile input.ll
    python -m repro.tools.profile --suite mibench --benchmark susan
    python -m repro.tools.profile --no-cache --steps 30 input.ll
    python -m repro.tools.profile --episodes 5 input.ll   # repeat to see hits
    python -m repro.tools.profile --suite mibench --train 480 --n-envs 8
    python -m repro.tools.profile --suite mibench --train 480 --n-envs 8 \\
        --workers 8 --no-cache --compare-serial
    python -m repro.tools.profile --suite mibench --train 120 \\
        --train-mode distributed --actors 2 --algo prioritized-ddqn \\
        --fail-on-no-broadcast
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from ..codegen.target import TARGETS
from ..core.environment import PhaseOrderingEnv, make_action_space
from ..core.metrics import MetricsEngine
from ..ir.parser import parse_module
from ..workloads.suites import load_suite


class _StageClock:
    """Accumulates wall time and call counts per stage."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def timed(self, stage: str, fn, *args, **kwargs):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        self.totals[stage] = self.totals.get(stage, 0.0) + elapsed
        self.calls[stage] = self.calls.get(stage, 0) + 1
        return result


def _instrument(env, engine: MetricsEngine, clock: _StageClock) -> None:
    """Route the env's stage calls through the clock.

    Wraps the engine's bound methods (and ``ActionSpace.apply``) on the
    *instances*, so the episode runs through the real ``env.step`` path —
    including the transition cache, whose hits show up as stages simply
    not being called.
    """
    stages = (
        ("passes", env.action_space, "apply"),
        ("codegen", engine, "size"),
        ("mca", engine, "throughput"),
        ("embedding", engine, "embedding"),
        ("fingerprint", engine, "fingerprint"),
    )
    for stage, obj, attr in stages:
        original = getattr(obj, attr)

        def wrapped(*args, _stage=stage, _fn=original, **kwargs):
            return clock.timed(_stage, _fn, *args, **kwargs)

        setattr(obj, attr, wrapped)


def _profile_episode(env, actions) -> None:
    env.reset()
    for action in actions:
        env.step(action)


def _print_throughput(label: str, report) -> None:
    print(f"{label:<12} steps={report.total_steps:<7} "
          f"episodes={report.episodes:<5} wall={report.wall_seconds:>8.3f}s  "
          f"steps/s={report.steps_per_second:>8.1f}  "
          f"episodes/s={report.episodes_per_second:>7.2f}  "
          f"updates={report.train_updates}")


def _print_distributed_report(report) -> None:
    print(f"{'pipeline':<12} broadcasts={report.broadcasts:<4} "
          f"mean_staleness={report.mean_staleness:>6.1f}  "
          f"max_staleness={report.max_staleness:<5} "
          f"clean_drain={report.clean_drain}")
    for actor_id, rate in sorted(report.actor_steps_per_second.items()):
        print(f"{'actor ' + str(actor_id):<12} steps/s={rate:>8.1f}")
    if report.priority_stats:
        ps = report.priority_stats
        print(f"{'priorities':<12} total={ps['total']:>10.3f}  "
              f"mean={ps['mean']:>8.4f}  max={ps['max']:>8.4f}")


def _run_train_harness(args, corpus) -> int:
    """Time one training mode (serial / vectorized / distributed)."""
    from ..core.agent_api import PosetRL

    def make_agent() -> PosetRL:
        return PosetRL(
            action_space=args.action_space,
            target=args.target,
            episode_length=max(args.steps, 1),
            algo=args.algo,
            seed=args.seed,
            cache=not args.no_cache,
        )

    mode = "uncached" if args.no_cache else "cached"
    print(f"training-throughput harness: {args.train} steps, "
          f"mode={args.train_mode}, algo={args.algo}, "
          f"n_envs={args.n_envs}, workers={args.workers}, "
          f"actors={args.actors}, corpus={len(corpus)} module(s), {mode}")
    agent = make_agent()
    if args.train_mode == "distributed":
        agent.train_distributed(
            corpus, total_steps=args.train, actors=args.actors,
            chunk_size=args.chunk_size, broadcast_every=args.broadcast_every,
        )
        report = agent.last_distributed_report
        _print_throughput("distributed", agent.last_train_throughput)
        _print_distributed_report(report)
        if args.fail_on_no_broadcast and (
            report.broadcasts == 0 or not report.clean_drain
        ):
            print("FAIL: no weight broadcast reached an actor or the drain "
                  "was not clean", file=sys.stderr)
            return 1
    elif args.train_mode == "serial":
        episodes = max(1, args.train // max(args.steps, 1))
        agent.train(corpus, episodes=episodes)
        _print_throughput("serial", agent.last_train_throughput)
    else:
        agent.train_vectorized(
            corpus, total_steps=args.train, n_envs=args.n_envs,
            workers=args.workers,
        )
        _print_throughput("vectorized", agent.last_train_throughput)
    vec = agent.last_train_throughput
    if args.compare_serial and args.train_mode != "serial":
        serial_agent = make_agent()
        episodes = max(1, args.train // max(args.steps, 1))
        serial_agent.train(corpus, episodes=episodes)
        serial = serial_agent.last_train_throughput
        _print_throughput("serial", serial)
        if serial.steps_per_second:
            print(f"speedup: {vec.steps_per_second / serial.steps_per_second:.2f}x "
                  f"({args.train_mode} vs serial steps/sec)")
    if not args.no_cache:
        print("\ncache counters:")
        for name, counters in agent.cache_stats().items():
            print(f"  {name:<12} hits={counters['hits']:<8.0f} "
                  f"misses={counters['misses']:<8.0f} "
                  f"hit_rate={counters['hit_rate']:.2%}")
    return 0


def _maybe_export_metrics(args) -> None:
    if getattr(args, "metrics_out", None):
        from ..observability import export_snapshot

        export_snapshot(args.metrics_out)
        print(f"metrics snapshot -> {args.metrics_out}")


def run(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-profile", description=__doc__)
    parser.add_argument("--target", default="x86-64",
                        choices=sorted(set(TARGETS)))
    parser.add_argument("--action-space", default="odg",
                        choices=("odg", "manual"))
    parser.add_argument("--steps", type=int, default=15,
                        help="actions per episode (default 15)")
    parser.add_argument("--episodes", type=int, default=1,
                        help="episodes to run (repeats expose cache hits)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-cache", action="store_true",
                        help="profile the uncached metrics paths")
    parser.add_argument("--flat", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="measure through the flat struct-of-arrays "
                        "kernels (--no-flat restores the object walks)")
    parser.add_argument("--compare-flat", action="store_true",
                        help="profile the episode twice — flat kernels vs "
                        "object walks — and print the speedup")
    parser.add_argument("--suite", help="profile a workload-suite benchmark "
                        "instead of an input file")
    parser.add_argument("--benchmark",
                        help="benchmark name within --suite (default: first)")
    parser.add_argument("--train", type=int, metavar="STEPS",
                        help="run the training-throughput harness for this "
                        "many environment steps instead of stage profiling")
    parser.add_argument("--train-mode", default="vectorized",
                        choices=("serial", "vectorized", "distributed"),
                        help="training loop for --train (default vectorized)")
    parser.add_argument("--algo", default="ddqn",
                        choices=("ddqn", "dqn", "prioritized-ddqn", "ppo"),
                        help="learning algorithm for --train (default ddqn)")
    parser.add_argument("--n-envs", type=int, default=8,
                        help="vector width for --train (default 8)")
    parser.add_argument("--workers", type=int, default=0,
                        help="environment worker processes for --train "
                        "(default 0: step in-process)")
    parser.add_argument("--actors", type=int, default=2,
                        help="actor processes for --train-mode distributed "
                        "(default 2)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="transitions per actor rollout chunk "
                        "(default: one episode)")
    parser.add_argument("--broadcast-every", type=int, default=2,
                        help="re-broadcast learner weights to an actor after "
                        "this many of its chunks (default 2)")
    parser.add_argument("--fail-on-no-broadcast", action="store_true",
                        help="with --train-mode distributed: exit nonzero "
                        "unless at least one weight broadcast reached an "
                        "actor and every actor drained cleanly")
    parser.add_argument("--compare-serial", action="store_true",
                        help="with --train: also time the serial train loop "
                        "and print the speedup")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="enable observability and write a metrics/trace "
                        "snapshot to this JSON file (render it with "
                        "python -m repro.tools.stats)")
    parser.add_argument("input", nargs="?",
                        help="textual IR file (- for stdin)")
    args = parser.parse_args(argv)

    # Enable before any env/engine is constructed: instruments are bound
    # at construction time (see repro.observability).
    if args.metrics_out:
        from ..observability import enable as enable_observability

        enable_observability()

    if args.suite:
        try:
            suite_corpus = load_suite(args.suite)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 1
        if args.benchmark:
            matches = [(n, m) for n, m in suite_corpus if n == args.benchmark]
            if not matches:
                names = ", ".join(n for n, _ in suite_corpus)
                print(f"no benchmark {args.benchmark!r} in {args.suite} "
                      f"(have: {names})", file=sys.stderr)
                return 1
            corpus = matches
        else:
            corpus = list(suite_corpus)
        module = corpus[0][1]
    elif args.input:
        text = sys.stdin.read() if args.input == "-" else open(args.input).read()
        module = parse_module(text)
        corpus = [(args.input, module)]
    else:
        parser.error("provide an input file or --suite")

    if args.train:
        rc = _run_train_harness(args, corpus)
        _maybe_export_metrics(args)
        return rc

    action_space = make_action_space(args.action_space)
    import numpy as np

    rng = np.random.RandomState(args.seed)
    actions = [int(rng.randint(len(action_space))) for _ in range(args.steps)]

    def profile_once(flat: bool):
        engine = MetricsEngine(
            target=args.target, enabled=not args.no_cache, flat=flat
        )
        env = PhaseOrderingEnv(
            module,
            action_space=make_action_space(args.action_space),
            target=args.target,
            episode_length=max(args.steps, 1),
            metrics=engine,
        )
        clock = _StageClock()
        _instrument(env, engine, clock)
        start = time.perf_counter()
        for _ in range(args.episodes):
            _profile_episode(env, actions)
        return engine, clock, time.perf_counter() - start

    engine, clock, wall = profile_once(args.flat)

    mode = "uncached" if args.no_cache else "cached"
    kernels = "flat" if args.flat and not args.no_cache else "object"
    print(f"profile: {args.episodes} episode(s) x {args.steps} steps "
          f"({mode}, {kernels} kernels, target {args.target})")
    print(f"{'stage':<12} {'total s':>10} {'calls':>7} {'ms/call':>9} {'share':>7}")
    for stage in ("passes", "codegen", "mca", "embedding", "fingerprint"):
        total = clock.totals.get(stage, 0.0)
        calls = clock.calls.get(stage, 0)
        per = 1000.0 * total / calls if calls else 0.0
        share = 100.0 * total / wall if wall else 0.0
        print(f"{stage:<12} {total:>10.4f} {calls:>7} {per:>9.3f} {share:>6.1f}%")
    print(f"{'wall':<12} {wall:>10.4f}")

    if args.compare_flat:
        _, other_clock, other_wall = profile_once(not args.flat)
        this, other = ("flat", "object") if args.flat else ("object", "flat")

        def measure_s(c: _StageClock) -> float:
            return sum(
                c.totals.get(s, 0.0)
                for s in ("codegen", "mca", "embedding", "fingerprint")
            )

        a, b = measure_s(clock), measure_s(other_clock)
        print(f"\ncompare: measure+encode {this} {a:.4f}s vs "
              f"{other} {b:.4f}s", end="")
        if a and b:
            ratio = (b / a) if args.flat else (a / b)
            print(f"  (flat speedup {ratio:.2f}x)")
        else:
            print()
        print(f"compare: wall {this} {wall:.4f}s vs {other} {other_wall:.4f}s")

    if engine.enabled:
        print("\ncache counters:")
        for name, counters in engine.stats().items():
            print(f"  {name:<12} hits={counters['hits']:<8.0f} "
                  f"misses={counters['misses']:<8.0f} "
                  f"evictions={counters['evictions']:<6.0f} "
                  f"hit_rate={counters['hit_rate']:.2%}")
        if engine._flat_core is not None:
            flat_stats = engine.stats()["flat"]
            print(f"  flat core    builds={flat_stats['builds']:<6.0f} "
                  f"row_rebuilds={flat_stats['row_rebuilds']:<8.0f} "
                  f"invalidations={flat_stats['invalidations']:<6.0f} "
                  f"bytes={flat_stats['bytes_resident']:,.0f}")
    _maybe_export_metrics(args)
    return 0


def main() -> int:  # pragma: no cover - console entry
    try:
        return run()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
