"""Command-line tools mirroring the LLVM binaries the paper drives.

* ``python -m repro.tools.opt``    — the `opt` analogue: run pipelines or
  explicit pass lists over textual IR.
* ``python -m repro.tools.sizeit`` — the `llvm-size` analogue: object-size
  breakdown per target.
* ``python -m repro.tools.mca``    — the `llvm-mca` analogue: static
  throughput report.
* ``python -m repro.tools.profile`` — per-stage timing (passes / codegen /
  mca / embedding) for one RL episode, with cache counters.
* ``python -m repro.tools.serve``  — load harness for the batched
  optimization service: throughput, p50/p95/p99 latency, guard counters.
"""
