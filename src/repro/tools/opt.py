"""`opt`-style pass driver over textual IR.

Examples::

    python -m repro.tools.opt -Oz input.ll -o output.ll
    python -m repro.tools.opt --passes "-simplifycfg -sroa -gvn" input.ll
    python -m repro.tools.opt -Oz --stats --verify input.ll
    python -m repro.tools.opt --agent model.npz input.ll -o output.ll
    python -m repro.tools.opt --list-passes
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import verify_module
from ..passes.base import PassManager, available_passes, parse_pass_list
from ..passes.pipelines import OPT_LEVELS, build_pipeline


def build_argparser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-opt", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    for level in OPT_LEVELS:
        parser.add_argument(
            f"-{level}", dest="level", action="store_const", const=level,
            help=f"run the {level} pipeline",
        )
    parser.add_argument("--passes", type=str, default=None,
                        help='explicit pass list, e.g. "-sroa -gvn -dce"')
    parser.add_argument("--agent", type=str, default=None, metavar="CHECKPOINT",
                        help="apply a trained policy's predicted sequence "
                        "from this .npz checkpoint (serving code path)")
    parser.add_argument("--action-space", choices=("odg", "manual"),
                        default=None,
                        help="with --agent: override the checkpoint's "
                        "recorded action space")
    parser.add_argument("--verify", action="store_true",
                        help="verify the IR after every pass")
    parser.add_argument("--stats", action="store_true",
                        help="report which passes changed the module")
    parser.add_argument("--list-passes", action="store_true",
                        help="print the registered pass names and exit")
    parser.add_argument("-o", "--output", type=str, default=None,
                        help="output file (default: stdout)")
    parser.add_argument("input", nargs="?", help="textual IR file (- for stdin)")
    return parser


def _run_agent(args, text: str) -> int:
    """Optimize with a trained policy through the serving code path.

    The checkpoint goes through the model registry (embedded metadata
    picks the action space), and the request through the full service
    guard: the result is verified, and a pass failure falls back to
    ``-Oz`` with the reason reported on stderr.
    """
    from ..serving import OptimizationService

    with OptimizationService.from_checkpoint(
        args.agent, action_space=args.action_space, include_ir=True,
    ) as service:
        result = service.optimize(text, name=args.input)

    if result.status == "rejected":
        sys.stderr.write(f"error: request rejected: {result.reason}\n")
        return 1
    if result.status == "fallback":
        sys.stderr.write(
            f"; warning: policy sequence failed ({result.reason}); "
            f"served the -Oz fallback\n"
        )

    assert result.optimized_ir is not None
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(result.optimized_ir)
    else:
        sys.stdout.write(result.optimized_ir)

    if args.stats:
        model = service.registry.active
        sys.stderr.write(
            f"; model {model.version} ({model.action_space_kind}), "
            f"status {result.status}\n"
            f"; actions: {' '.join(map(str, result.actions)) or '(none)'}\n"
            f"; passes applied: {len(result.passes)}\n"
            f"; size: {result.base_size} -> {result.optimized_size} bytes "
            f"({result.size_reduction_pct:.1f}% reduction)\n"
        )
    return 0


def run(argv: Optional[List[str]] = None) -> int:
    parser = build_argparser()
    args = parser.parse_args(argv)

    if args.list_passes:
        print("\n".join(available_passes()))
        return 0

    if args.input is None:
        parser.error("an input file is required")
    if args.agent and (args.passes or args.level):
        parser.error("--agent is mutually exclusive with --passes / -O levels")
    text = (
        sys.stdin.read()
        if args.input == "-"
        else open(args.input).read()
    )

    if args.agent:
        return _run_agent(args, text)

    module = parse_module(text)

    if args.passes is not None:
        manager = PassManager(parse_pass_list(args.passes), verify=args.verify)
    elif args.level is not None:
        manager = build_pipeline(args.level)
        manager.verify = args.verify
    else:
        manager = PassManager([], verify=args.verify)
    manager.collect_stats = args.stats

    before = module.instruction_count
    manager.run(module)
    verify_module(module)

    output = print_module(module)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(output)
    else:
        sys.stdout.write(output)

    if args.stats:
        after = module.instruction_count
        sys.stderr.write(
            f"; instructions: {before} -> {after}\n"
            f"; passes that changed the module: "
            f"{', '.join(manager.changed_passes) or '(none)'}\n"
        )
        if manager.stats is not None and manager.stats.records:
            sys.stderr.write(manager.stats.report() + "\n")
    return 0


def main() -> int:  # pragma: no cover - console entry
    try:
        return run()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
