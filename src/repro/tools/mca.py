"""`llvm-mca`-style static throughput report.

Examples::

    python -m repro.tools.mca input.ll
    python -m repro.tools.mca --target aarch64 --per-block input.ll
    python -m repro.tools.mca -O3 input.ll
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..codegen.target import TARGETS
from ..ir.parser import parse_module
from ..mca.sched import estimate_throughput
from ..passes.pipelines import OPT_LEVELS, build_pipeline


def run(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-mca", description=__doc__)
    parser.add_argument("--target", default="x86-64",
                        choices=sorted(set(TARGETS)))
    parser.add_argument("--per-block", action="store_true")
    for level in OPT_LEVELS:
        parser.add_argument(
            f"-{level}", dest="level", action="store_const", const=level,
            help=f"optimize with {level} before analysis",
        )
    parser.add_argument("input", help="textual IR file (- for stdin)")
    args = parser.parse_args(argv)

    text = sys.stdin.read() if args.input == "-" else open(args.input).read()
    module = parse_module(text)
    if args.level:
        build_pipeline(args.level).run(module)

    summary = estimate_throughput(module, args.target)
    print(f"target:          {summary.target}")
    print(f"total cycles:    {summary.total_cycles:.2f}")
    print(f"total uops:      {summary.total_uops:.2f}")
    print(f"IPC:             {summary.ipc:.2f}")
    print(f"throughput:      {summary.throughput:.2f} (runs / 1e9 cycles)")

    for fr in summary.functions:
        print(f"\nfunction @{fr.name}: "
              f"{fr.cycles_per_invocation:.2f} cycles/invocation, "
              f"{fr.uops_per_invocation:.1f} uops")
        if args.per_block:
            print(f"  {'block':<18} {'freq':>9} {'uops':>5} {'disp':>7} "
                  f"{'res':>7} {'lat':>7} {'cycles':>8}")
            for b in fr.blocks:
                print(f"  {b.name:<18} {b.frequency:>9.2f} {b.uops:>5} "
                      f"{b.dispatch_bound:>7.2f} {b.resource_bound:>7.2f} "
                      f"{b.latency_bound:>7.2f} {b.cycles:>8.2f}")
    return 0


def main() -> int:  # pragma: no cover - console entry
    try:
        return run()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
