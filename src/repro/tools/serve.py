"""Load harness for the batched optimization service and sharded gateway.

Builds an :class:`~repro.serving.OptimizationService` (from a checkpoint
or a freshly-seeded policy) — or, with ``--shards N``, a
:class:`~repro.serving.ShardedGateway` over N worker subprocesses —
drives it with closed-loop clients over a benchmark suite, and reports
throughput, p50/p95/p99 latency and the service's guard/cache counters.
``--compare-serial`` also times the serial per-request
``PosetRL.predict`` path and prints the speedup.

``--arrival-rate R`` switches to the **open-loop** harness: Poisson
arrivals offered at R req/s regardless of completions, with optional
bursts (``--burst-factor/--burst-every/--burst-duty``) and a tenant mix
(``--tenants``, rate-limited per tenant via ``--tenant-rate``). This is
the overload mode: expect nonzero shed and bounded p99 rather than
lossless service.

Examples::

    python -m repro.tools.serve --suite mibench --requests 64 --concurrency 8
    python -m repro.tools.serve --suite mibench --checkpoint model.npz \\
        --requests 128 --concurrency 8 --compare-serial
    python -m repro.tools.serve --suite spec2017 --requests 24 \\
        --no-result-cache --json results.json
    python -m repro.tools.serve --suite mibench --requests 12 \\
        --fail-on-fallback     # CI smoke mode
    python -m repro.tools.serve --suite mibench --shards 4 --requests 128
    python -m repro.tools.serve --suite mibench --shards 2 \\
        --arrival-rate 40 --duration 10 --burst-factor 4 --burst-every 2 \\
        --tenants 3 --tenant-rate 10 --max-pending 32
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import List, Optional

from ..codegen.target import TARGETS
from ..core.agent_api import PosetRL
from ..ir.printer import print_module
from ..observability import enable as enable_observability, export_snapshot
from ..serving import (
    OptimizationService,
    ShardedGateway,
    TenantMix,
    request_pool,
    run_load,
    run_open_loop,
)
from ..workloads.suites import load_suite


def build_argparser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-serve", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--suite", default="mibench",
                        help="workload suite for the request pool "
                        "(default mibench)")
    parser.add_argument("--checkpoint",
                        help="serve this .npz checkpoint (default: a "
                        "freshly-initialized policy)")
    parser.add_argument("--action-space", choices=("odg", "manual"),
                        default=None,
                        help="override the checkpoint's action space")
    parser.add_argument("--target", default="x86-64",
                        choices=sorted(set(TARGETS)))
    parser.add_argument("--requests", type=int, default=64,
                        help="total requests to send (default 64)")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="closed-loop client threads (default 8)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="scheduler batch width (default 8)")
    parser.add_argument("--window-ms", type=float, default=5.0,
                        help="batch-forming window in ms (default 5)")
    parser.add_argument("--timeout-s", type=float, default=60.0,
                        help="per-request wall-clock deadline (default 60)")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="disable the fingerprint result cache")
    parser.add_argument("--semantic-check", action="store_true",
                        help="run every optimized module in the reference "
                        "interpreter against the original and fall back to "
                        "-Oz on observable behaviour changes")
    parser.add_argument("--no-warmup", action="store_true",
                        help="skip the untimed warm-up pass over the "
                        "distinct modules")
    parser.add_argument("--compare-serial", action="store_true",
                        help="also time serial per-request PosetRL.predict "
                        "and print the speedup")
    parser.add_argument("--fail-on-fallback", action="store_true",
                        help="exit non-zero if any request fell back to -Oz "
                        "or was rejected (CI smoke gate); gateway sheds "
                        "under an open-loop overload do not count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", dest="json_path",
                        help="also write the report as JSON to this path")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="enable observability and write a metrics/trace "
                        "snapshot to this JSON file (render it with "
                        "python -m repro.tools.stats); with --shards, each "
                        "worker writes PATH with a -shardN stem suffix too")
    parser.add_argument("--learn", action="store_true",
                        help="tap verified rollouts into an experience "
                        "journal for closed-loop learning (see "
                        "python -m repro.tools.learn and docs/LEARNING.md)")
    parser.add_argument("--journal-dir", metavar="DIR",
                        help="experience journal directory for --learn "
                        "(default: a fresh temp dir, printed at startup)")

    gateway = parser.add_argument_group("sharded gateway")
    gateway.add_argument("--shards", type=int, default=0,
                         help="serve through a ShardedGateway with this many "
                         "worker subprocesses (default 0: single in-process "
                         "service)")
    gateway.add_argument("--max-pending", type=int, default=64,
                         help="gateway admission window: in-flight requests "
                         "beyond this are shed (default 64)")
    gateway.add_argument("--tenant-rate", type=float, default=None,
                         help="token-bucket rate limit per tenant, req/s "
                         "(default: unlimited)")
    gateway.add_argument("--tenant-burst", type=float, default=None,
                         help="token-bucket burst capacity per tenant "
                         "(default: max(1, rate))")

    openloop = parser.add_argument_group("open-loop traffic")
    openloop.add_argument("--arrival-rate", type=float, default=None,
                          help="offer Poisson traffic at this rate (req/s) "
                          "instead of closed-loop clients")
    openloop.add_argument("--duration", type=float, default=None,
                          help="open-loop run length in seconds (default: "
                          "--requests arrivals)")
    openloop.add_argument("--burst-factor", type=float, default=1.0,
                          help="multiply the arrival rate by this during "
                          "bursts (default 1: no bursts)")
    openloop.add_argument("--burst-every", type=float, default=0.0,
                          help="burst window period in seconds (default 0: "
                          "no bursts)")
    openloop.add_argument("--burst-duty", type=float, default=0.5,
                          help="fraction of each window spent bursting "
                          "(default 0.5)")
    openloop.add_argument("--tenants", type=int, default=1,
                          help="number of equal-weight tenants in the "
                          "open-loop mix (default 1)")
    return parser


def _make_tap(journal_dir: str):
    from ..learning import ExperienceJournal, ExperienceTap

    return ExperienceTap(ExperienceJournal(
        os.path.join(journal_dir, "service"), segment_size=64
    ))


def _shard_metrics_template(path: str) -> str:
    stem, dot, ext = path.rpartition(".")
    if not dot:
        return path + "-shard{shard}"
    return f"{stem}-shard{{shard}}.{ext}"


def run(argv: Optional[List[str]] = None) -> int:
    args = build_argparser().parse_args(argv)

    # Must happen before the service is constructed: instruments are
    # bound at construction time (see repro.observability).
    if args.metrics_out:
        enable_observability()

    try:
        suite = load_suite(args.suite)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 1
    corpus = [(name, print_module(module)) for name, module in suite]

    service_kwargs = dict(
        max_batch=args.max_batch,
        batch_window_s=args.window_ms / 1e3,
        request_timeout_s=args.timeout_s,
        result_cache_size=None if args.no_result_cache else 1024,
        include_ir=False,
        semantic_check=args.semantic_check,
    )

    journal_dir: Optional[str] = None
    if args.learn or args.journal_dir:
        journal_dir = args.journal_dir or tempfile.mkdtemp(
            prefix="repro-journal-"
        )
        print(f"experience journal: {journal_dir} "
              f"(train from it with python -m repro.tools.learn)")

    agent: Optional[PosetRL] = None
    if args.shards > 0:
        gateway_kwargs = dict(
            max_pending=args.max_pending,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
            shard_metrics_template=(
                _shard_metrics_template(args.metrics_out)
                if args.metrics_out else None
            ),
            **service_kwargs,
        )
        if journal_dir is not None:
            gateway_kwargs["journal_dir"] = journal_dir
        if args.checkpoint:
            target = ShardedGateway.from_checkpoint(
                args.checkpoint, args.shards,
                action_space=args.action_space,
                target=args.target,
                **gateway_kwargs,
            )
        else:
            agent = PosetRL(
                action_space=args.action_space or "odg",
                target=args.target, seed=args.seed,
            )
            target = ShardedGateway.from_agent(
                agent, args.shards, **gateway_kwargs
            )
        model_desc = (f"{target.model_version} "
                      f"({target.spec.action_space}) x{args.shards} shards")
        model_info = {
            "version": target.model_version,
            "action_space": target.spec.action_space,
            "shards": args.shards,
        }
    elif args.checkpoint:
        if journal_dir is not None:
            service_kwargs["experience_tap"] = _make_tap(journal_dir)
        target = OptimizationService.from_checkpoint(
            args.checkpoint,
            action_space=args.action_space,
            target=args.target,
            **service_kwargs,
        )
    else:
        if journal_dir is not None:
            service_kwargs["experience_tap"] = _make_tap(journal_dir)
        agent = PosetRL(
            action_space=args.action_space or "odg",
            target=args.target, seed=args.seed,
        )
        target = OptimizationService.from_agent(agent, **service_kwargs)

    if args.shards <= 0:
        model = target.registry.active
        model_desc = f"{model.version} ({model.action_space_kind})"
        model_info = model.describe()

    requests = request_pool(corpus, args.requests)
    open_loop = args.arrival_rate is not None
    with target:
        if not args.no_warmup:
            run_load(
                target,
                request_pool(corpus, len(corpus)),
                concurrency=args.concurrency,
            )
        if open_loop:
            tenants = [
                TenantMix(f"tenant{i}") for i in range(max(1, args.tenants))
            ]
            report = run_open_loop(
                target,
                requests,
                arrival_rate=args.arrival_rate,
                total=None if args.duration else args.requests,
                duration_s=args.duration,
                seed=args.seed,
                burst_factor=args.burst_factor,
                burst_every_s=args.burst_every,
                burst_duty=args.burst_duty,
                tenants=tenants,
                result_timeout_s=args.timeout_s + 60.0,
            )
        else:
            report = run_load(target, requests, concurrency=args.concurrency)
        stats = target.stats()

    print(f"serving load report: suite={args.suite} "
          f"model={model_desc} target={args.target}")
    if open_loop:
        print(f"  open-loop: offered={report.offered} "
              f"({report.offered_rps:.1f} req/s offered, "
              f"rate={args.arrival_rate:.1f}) wall={report.wall_seconds:.3f}s")
        print(f"  goodput={report.goodput_rps:.1f} req/s "
              f"shed={report.shed} ({100 * report.shed_rate:.1f}%) "
              f"max_in_flight={report.max_in_flight}")
        print(f"  served latency p50={report.p50_ms:.2f}ms "
              f"p95={report.p95_ms:.2f}ms p99={report.p99_ms:.2f}ms")
        if len(report.per_tenant) > 1:
            for tenant, tstats in sorted(report.per_tenant.items()):
                print(f"    {tenant}: {tstats}")
    else:
        print(f"  requests={report.requests} "
              f"concurrency={report.concurrency} "
              f"max_batch={args.max_batch} window={args.window_ms:.1f}ms")
        print(f"  wall={report.wall_seconds:.3f}s "
              f"throughput={report.throughput_rps:.1f} req/s")
        print(f"  latency p50={report.p50_ms:.2f}ms p95={report.p95_ms:.2f}ms "
              f"p99={report.p99_ms:.2f}ms")
    print(f"  statuses={report.status_counts} cache_hits={report.cache_hits}")

    if args.shards > 0:
        gw_stats = stats.as_dict()
        print(f"  gateway counters: {gw_stats['counters']}")
        if gw_stats["shed_reasons"]:
            print(f"  shed reasons: {gw_stats['shed_reasons']}")
        payload_stats = gw_stats
        guard_errors = {}
    else:
        if stats["errors"]:
            print(f"  guard counters: {stats['errors']}")
        payload_stats = stats
        guard_errors = stats["errors"]

    payload = {
        "suite": args.suite,
        "target": args.target,
        "model": model_info,
        "shards": args.shards,
        "load": report.as_dict(),
        "service_stats": payload_stats,
    }

    if args.compare_serial:
        serial_agent = agent or PosetRL(
            action_space=args.action_space or "odg",
            target=args.target, seed=args.seed,
        )
        suite_by_name = dict(suite)
        modules = [suite_by_name[r.name] for r in requests]
        for module in modules[: len(suite)]:
            serial_agent.predict(module)  # warm the metrics caches
        start = time.perf_counter()
        for module in modules:
            serial_agent.predict(module)
        serial_wall = time.perf_counter() - start
        serial_rps = len(modules) / serial_wall if serial_wall else 0.0
        measured_rps = (
            report.goodput_rps if open_loop else report.throughput_rps
        )
        speedup = measured_rps / serial_rps if serial_rps else float("inf")
        print(f"  serial predict: {serial_wall:.3f}s "
              f"({serial_rps:.1f} req/s) -> batched speedup {speedup:.2f}x")
        payload["serial"] = {
            "wall_seconds": round(serial_wall, 4),
            "throughput_rps": round(serial_rps, 2),
            "speedup": round(speedup, 2),
        }

    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)

    if args.metrics_out:
        export_snapshot(args.metrics_out)
        print(f"  metrics snapshot -> {args.metrics_out}")
        if args.shards > 0:
            template = _shard_metrics_template(args.metrics_out)
            shard_paths = " ".join(
                template.format(shard=i) for i in range(args.shards)
            )
            print(f"  per-shard snapshots -> {shard_paths}")
            print(f"  merge: python -m repro.tools.stats "
                  f"{args.metrics_out} {shard_paths}")

    if args.fail_on_fallback:
        bad = report.status_counts.get("fallback", 0)
        rejected = report.status_counts.get("rejected", 0)
        if open_loop:
            # Sheds are the admission control working as designed under
            # offered overload; only hard rejections count against CI.
            rejected = max(0, rejected - getattr(report, "shed", 0))
        bad += rejected
        if bad:
            print(f"FAIL: {bad} request(s) fell back or were rejected "
                  f"(guard counters: {guard_errors})", file=sys.stderr)
            return 1
        print("  no fallbacks, no rejections")
    return 0


def main() -> int:  # pragma: no cover - console entry
    try:
        return run()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
