"""Load harness for the batched optimization service.

Builds an :class:`~repro.serving.OptimizationService` (from a checkpoint
or a freshly-seeded policy), drives it with closed-loop clients over a
benchmark suite, and reports throughput, p50/p95/p99 latency and the
service's guard/cache counters. ``--compare-serial`` also times the
serial per-request ``PosetRL.predict`` path and prints the speedup.

Examples::

    python -m repro.tools.serve --suite mibench --requests 64 --concurrency 8
    python -m repro.tools.serve --suite mibench --checkpoint model.npz \\
        --requests 128 --concurrency 8 --compare-serial
    python -m repro.tools.serve --suite spec2017 --requests 24 \\
        --no-result-cache --json results.json
    python -m repro.tools.serve --suite mibench --requests 12 \\
        --fail-on-fallback     # CI smoke mode
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from ..codegen.target import TARGETS
from ..core.agent_api import PosetRL
from ..ir.printer import print_module
from ..observability import enable as enable_observability, export_snapshot
from ..serving import OptimizationService, request_pool, run_load
from ..workloads.suites import load_suite


def build_argparser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-serve", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--suite", default="mibench",
                        help="workload suite for the request pool "
                        "(default mibench)")
    parser.add_argument("--checkpoint",
                        help="serve this .npz checkpoint (default: a "
                        "freshly-initialized policy)")
    parser.add_argument("--action-space", choices=("odg", "manual"),
                        default=None,
                        help="override the checkpoint's action space")
    parser.add_argument("--target", default="x86-64",
                        choices=sorted(set(TARGETS)))
    parser.add_argument("--requests", type=int, default=64,
                        help="total requests to send (default 64)")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="closed-loop client threads (default 8)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="scheduler batch width (default 8)")
    parser.add_argument("--window-ms", type=float, default=5.0,
                        help="batch-forming window in ms (default 5)")
    parser.add_argument("--timeout-s", type=float, default=60.0,
                        help="per-request wall-clock deadline (default 60)")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="disable the fingerprint result cache")
    parser.add_argument("--semantic-check", action="store_true",
                        help="run every optimized module in the reference "
                        "interpreter against the original and fall back to "
                        "-Oz on observable behaviour changes")
    parser.add_argument("--no-warmup", action="store_true",
                        help="skip the untimed warm-up pass over the "
                        "distinct modules")
    parser.add_argument("--compare-serial", action="store_true",
                        help="also time serial per-request PosetRL.predict "
                        "and print the speedup")
    parser.add_argument("--fail-on-fallback", action="store_true",
                        help="exit non-zero if any request fell back to -Oz "
                        "or was rejected (CI smoke gate)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", dest="json_path",
                        help="also write the report as JSON to this path")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="enable observability and write a metrics/trace "
                        "snapshot to this JSON file (render it with "
                        "python -m repro.tools.stats)")
    return parser


def run(argv: Optional[List[str]] = None) -> int:
    args = build_argparser().parse_args(argv)

    # Must happen before the service is constructed: instruments are
    # bound at construction time (see repro.observability).
    if args.metrics_out:
        enable_observability()

    try:
        suite = load_suite(args.suite)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 1
    corpus = [(name, print_module(module)) for name, module in suite]

    agent: Optional[PosetRL] = None
    if args.checkpoint:
        service = OptimizationService.from_checkpoint(
            args.checkpoint,
            action_space=args.action_space,
            target=args.target,
            max_batch=args.max_batch,
            batch_window_s=args.window_ms / 1e3,
            request_timeout_s=args.timeout_s,
            result_cache_size=None if args.no_result_cache else 1024,
            include_ir=False,
            semantic_check=args.semantic_check,
        )
    else:
        agent = PosetRL(
            action_space=args.action_space or "odg",
            target=args.target, seed=args.seed,
        )
        service = OptimizationService.from_agent(
            agent,
            max_batch=args.max_batch,
            batch_window_s=args.window_ms / 1e3,
            request_timeout_s=args.timeout_s,
            result_cache_size=None if args.no_result_cache else 1024,
            include_ir=False,
            semantic_check=args.semantic_check,
        )

    requests = request_pool(corpus, args.requests)
    with service:
        if not args.no_warmup:
            run_load(
                service,
                request_pool(corpus, len(corpus)),
                concurrency=args.concurrency,
            )
        report = run_load(service, requests, concurrency=args.concurrency)
        stats = service.stats()

    model = service.registry.active
    print(f"serving load report: suite={args.suite} "
          f"model={model.version} ({model.action_space_kind}) "
          f"target={args.target}")
    print(f"  requests={report.requests} concurrency={report.concurrency} "
          f"max_batch={args.max_batch} window={args.window_ms:.1f}ms")
    print(f"  wall={report.wall_seconds:.3f}s "
          f"throughput={report.throughput_rps:.1f} req/s")
    print(f"  latency p50={report.p50_ms:.2f}ms p95={report.p95_ms:.2f}ms "
          f"p99={report.p99_ms:.2f}ms")
    print(f"  statuses={report.status_counts} cache_hits={report.cache_hits}")
    if stats["errors"]:
        print(f"  guard counters: {stats['errors']}")

    payload = {
        "suite": args.suite,
        "target": args.target,
        "model": model.describe(),
        "load": report.as_dict(),
        "service_stats": stats,
    }

    if args.compare_serial:
        serial_agent = agent or PosetRL(
            action_space=args.action_space or "odg",
            target=args.target, seed=args.seed,
        )
        suite_by_name = dict(suite)
        modules = [suite_by_name[r.name] for r in requests]
        for module in modules[: len(suite)]:
            serial_agent.predict(module)  # warm the metrics caches
        start = time.perf_counter()
        for module in modules:
            serial_agent.predict(module)
        serial_wall = time.perf_counter() - start
        serial_rps = len(modules) / serial_wall if serial_wall else 0.0
        speedup = (
            report.throughput_rps / serial_rps if serial_rps else float("inf")
        )
        print(f"  serial predict: {serial_wall:.3f}s "
              f"({serial_rps:.1f} req/s) -> batched speedup {speedup:.2f}x")
        payload["serial"] = {
            "wall_seconds": round(serial_wall, 4),
            "throughput_rps": round(serial_rps, 2),
            "speedup": round(speedup, 2),
        }

    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)

    if args.metrics_out:
        export_snapshot(args.metrics_out)
        print(f"  metrics snapshot -> {args.metrics_out}")

    if args.fail_on_fallback:
        bad = report.status_counts.get("fallback", 0)
        bad += report.status_counts.get("rejected", 0)
        if bad:
            print(f"FAIL: {bad} request(s) fell back or were rejected "
                  f"(guard counters: {stats['errors']})", file=sys.stderr)
            return 1
        print("  no fallbacks, no rejections")
    return 0


def main() -> int:  # pragma: no cover - console entry
    try:
        return run()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
