"""Render observability snapshots: metrics tables, traces, Prometheus.

Reads a JSON snapshot written by ``--metrics-out`` (serve/fuzz/profile)
or :func:`repro.observability.export_snapshot` and renders it for a
terminal: counters and gauges as one table, histograms with count /
mean / approximate p50/p95/p99 (from the fixed buckets), and the most
recent traces as indented span trees.

``--follow`` tails the file: re-read and re-render every ``--interval``
seconds until interrupted (the producer rewrites the snapshot in place).
``--prom`` emits the Prometheus exposition text instead — pipe it to a
file and point a ``textfile`` collector or a scrape-time converter at it.

Multiple snapshots merge into one aggregated view before rendering —
counters and histogram buckets sum across inputs, matched on family
name + labels. That is how per-shard gateway worker snapshots
(``repro.tools.serve --shards N --metrics-out ...`` writes one file per
worker) become fleet totals.

Examples::

    python -m repro.tools.stats metrics.json
    python -m repro.tools.stats metrics.json --traces 5
    python -m repro.tools.stats metrics.json --follow --interval 2
    python -m repro.tools.stats metrics.json --prom > metrics.prom
    python -m repro.tools.stats metrics-shard*.json --prom
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from ..observability import merge_snapshots, prometheus_text


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _histogram_quantile(sample: dict, q: float) -> float:
    """Approximate quantile from cumulative bucket counts (linear within
    a bucket; the +Inf bucket reports its lower bound)."""
    buckets = sample["buckets"]
    total = sample["count"]
    if not total:
        return 0.0
    rank = q * total
    lower = 0.0
    prev_count = 0
    items = list(buckets.items())
    for le, count in items:
        if count >= rank:
            if le == "+Inf":
                return lower
            upper = float(le)
            span = count - prev_count
            if span <= 0:
                return upper
            fraction = (rank - prev_count) / span
            return lower + fraction * (upper - lower)
        prev_count = count
        if le != "+Inf":
            lower = float(le)
    return lower


def render_metrics(families: List[dict]) -> str:
    lines: List[str] = []
    scalars = [f for f in families if f["type"] in ("counter", "gauge")]
    histograms = [f for f in families if f["type"] == "histogram"]

    if scalars:
        lines.append(f"{'metric':<58} {'type':>8} {'value':>14}")
        for family in scalars:
            for sample in family["samples"]:
                name = family["name"] + _format_labels(
                    sample.get("labels") or {}
                )
                value = sample["value"]
                rendered = (
                    f"{value:.6g}" if isinstance(value, float) else str(value)
                )
                lines.append(
                    f"{name:<58} {family['type']:>8} {rendered:>14}"
                )
    if histograms:
        if scalars:
            lines.append("")
        lines.append(
            f"{'histogram':<58} {'count':>8} {'mean':>10} "
            f"{'p50':>10} {'p95':>10} {'p99':>10}"
        )
        for family in histograms:
            for sample in family["samples"]:
                name = family["name"] + _format_labels(
                    sample.get("labels") or {}
                )
                count = sample["count"]
                mean = sample["sum"] / count if count else 0.0
                lines.append(
                    f"{name:<58} {count:>8} {mean:>10.4g} "
                    f"{_histogram_quantile(sample, 0.50):>10.4g} "
                    f"{_histogram_quantile(sample, 0.95):>10.4g} "
                    f"{_histogram_quantile(sample, 0.99):>10.4g}"
                )
    return "\n".join(lines)


def _render_span(span: dict, indent: int, out: List[str]) -> None:
    tags = span.get("tags") or {}
    tag_text = (
        " [" + " ".join(f"{k}={v}" for k, v in sorted(tags.items())) + "]"
        if tags
        else ""
    )
    out.append(
        f"{'  ' * indent}{span['name']:<24} "
        f"{1e3 * span.get('duration_s', 0.0):>10.3f}ms{tag_text}"
    )
    for child in span.get("children", []):
        _render_span(child, indent + 1, out)


def render_traces(traces: List[dict], limit: int) -> str:
    if not traces:
        return "(no traces recorded)"
    out: List[str] = []
    for span in traces[-limit:]:
        _render_span(span, 0, out)
        out.append("")
    return "\n".join(out).rstrip()


def render_snapshot(snap: dict, traces: int = 3) -> str:
    lines: List[str] = []
    when = snap.get("unix_time")
    header = "observability snapshot"
    if when:
        header += time.strftime(
            " (%Y-%m-%d %H:%M:%S)", time.localtime(when)
        )
    if not snap.get("enabled", True):
        header += " [observability disabled: nothing was recorded]"
    lines.append(header)
    lines.append("")
    body = render_metrics(snap.get("metrics", []))
    lines.append(body if body else "(no metrics recorded)")
    if traces > 0:
        recorded = snap.get("traces", [])
        lines.append("")
        lines.append(f"recent traces ({len(recorded)} in ring, "
                     f"showing last {min(traces, len(recorded))}):")
        lines.append(render_traces(recorded, traces))
    return "\n".join(lines)


def build_argparser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stats", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("snapshot", nargs="+",
                        help="metrics JSON file(s) written by --metrics-out "
                        "(or - for stdin); several files are merged into "
                        "one aggregated view")
    parser.add_argument("--traces", type=int, default=3,
                        help="how many recent traces to render (default 3; "
                        "0 hides them)")
    parser.add_argument("--prom", action="store_true",
                        help="emit Prometheus exposition text instead of "
                        "the human-readable rendering")
    parser.add_argument("--follow", action="store_true",
                        help="re-read and re-render the file until "
                        "interrupted")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between --follow refreshes (default 2)")
    return parser


def _load(path: str) -> dict:
    if path == "-":
        return json.load(sys.stdin)
    with open(path) as fh:
        return json.load(fh)


def run(argv: Optional[List[str]] = None) -> int:
    args = build_argparser().parse_args(argv)
    if args.follow and "-" in args.snapshot:
        print("--follow cannot tail stdin", file=sys.stderr)
        return 2
    if args.snapshot.count("-") > 1:
        print("stdin (-) can be given at most once", file=sys.stderr)
        return 2

    while True:
        try:
            snaps = [_load(path) for path in args.snapshot]
            snap = merge_snapshots(snaps)
        except FileNotFoundError as exc:
            print(f"no such snapshot: {exc.filename}", file=sys.stderr)
            return 1
        except json.JSONDecodeError as exc:
            # A producer may be mid-rewrite in --follow mode; report and
            # (when following) retry on the next tick.
            print(f"unreadable snapshot: {exc}", file=sys.stderr)
            if not args.follow:
                return 1
            time.sleep(args.interval)
            continue

        if args.prom:
            sys.stdout.write(prometheus_text(snap))
        else:
            print(render_snapshot(snap, traces=args.traces))
        if not args.follow:
            return 0
        sys.stdout.flush()
        time.sleep(args.interval)
        print()


def main() -> int:  # pragma: no cover - console entry
    try:
        return run()
    except BrokenPipeError:
        return 0
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
