"""Closed-loop learning harness: traffic → journal → train → gate → swap.

Drives seeded synthetic traffic through a serving plane with the
experience tap enabled, then runs
:class:`~repro.learning.LearningController` cycles over the journaled
experience: fine-tune from the pinned base checkpoint, gate each
candidate on a fixed holdout suite + differential fuzz canary, and
hot-swap winners into the live registry.

``--inject-regression`` additionally proves the gate's rejection paths:
a deliberately regressed candidate (the worst constant-action policy on
the holdout) and a corrupted checkpoint file must both be rejected —
the run exits non-zero if either slips through. This is the CI
``learning-smoke`` mode.

Examples::

    python -m repro.tools.learn --suite mibench --requests 24 --cycles 2
    python -m repro.tools.learn --suite mibench --checkpoint model.npz \\
        --requests 48 --cycles 3 --train-steps 64 --journal-dir /tmp/j
    python -m repro.tools.learn --suite mibench --requests 24 --cycles 1 \\
        --inject-regression --fail-on-no-promotion \\
        --metrics-out learning-metrics.json       # CI smoke mode
    python -m repro.tools.learn --suite mibench --shards 2 --requests 32
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import List, Optional

from ..codegen.target import TARGETS
from ..core.agent_api import PosetRL
from ..core.environment import DEFAULT_EPISODE_LENGTH
from ..ir.printer import print_module
from ..learning import (
    EvaluationGate,
    ExperienceJournal,
    ExperienceTap,
    LearningController,
    OnlineTrainer,
)
from ..observability import enable as enable_observability, export_snapshot
from ..rl.network import QNetwork
from ..serving import (
    OptimizationService,
    ShardedGateway,
    request_pool,
    run_load,
)
from ..workloads.suites import load_suite


def build_argparser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-learn", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--suite", default="mibench",
                        help="workload suite for traffic and the holdout "
                        "(default mibench)")
    parser.add_argument("--checkpoint",
                        help="base checkpoint to fine-tune from (default: "
                        "a freshly-initialized policy, saved next to the "
                        "journal)")
    parser.add_argument("--action-space", choices=("odg", "manual"),
                        default=None)
    parser.add_argument("--target", default="x86-64",
                        choices=sorted(set(TARGETS)))
    parser.add_argument("--requests", type=int, default=24,
                        help="traffic requests to drive (default 24)")
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--cycles", type=int, default=2,
                        help="learning cycles to run (default 2)")
    parser.add_argument("--train-steps", type=int, default=48,
                        help="gradient updates per cycle (default 48)")
    parser.add_argument("--holdout", type=int, default=3,
                        help="holdout suite size: the first N suite modules "
                        "(default 3)")
    parser.add_argument("--canary-seeds", type=int, default=2,
                        help="fuzz programs in the canary (default 2)")
    parser.add_argument("--canary-segments", type=int, default=3)
    parser.add_argument("--size-tolerance", type=float, default=0.25,
                        help="holdout size-reduction tolerance in percentage "
                        "points (default 0.25)")
    parser.add_argument("--throughput-tolerance", type=float, default=0.25)
    parser.add_argument("--rollback-threshold", type=float, default=0.5,
                        help="post-promotion guard-trip rate that triggers "
                        "rollback (default 0.5)")
    parser.add_argument("--journal-dir",
                        help="experience journal directory (default: a "
                        "fresh temp dir)")
    parser.add_argument("--segment-size", type=int, default=8,
                        help="journal trajectories per segment (default 8; "
                        "small so short runs still flush)")
    parser.add_argument("--replay-capacity", type=int, default=4096)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--min-buffer", type=int, default=32,
                        help="replay rows required before training "
                        "(default 32)")
    parser.add_argument("--shards", type=int, default=0,
                        help="serve traffic through a ShardedGateway with "
                        "this many workers (default 0: in-process service)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip post-optimization verification in serving "
                        "(faster smoke runs)")
    parser.add_argument("--inject-regression", action="store_true",
                        help="also prove the gate rejects a deliberately "
                        "regressed candidate and a corrupted checkpoint "
                        "(exit non-zero if either is accepted)")
    parser.add_argument("--fail-on-no-promotion", action="store_true",
                        help="exit non-zero unless at least one candidate "
                        "was promoted (CI gate)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", dest="json_path",
                        help="write the run report as JSON to this path")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="enable observability and write a metrics "
                        "snapshot to this JSON file")
    return parser


def run(argv: Optional[List[str]] = None) -> int:
    args = build_argparser().parse_args(argv)

    if args.metrics_out:
        enable_observability()

    try:
        suite = load_suite(args.suite)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 1
    corpus = [(name, print_module(module)) for name, module in suite]
    holdout = [module for _, module in suite[: max(1, args.holdout)]]

    journal_dir = args.journal_dir or tempfile.mkdtemp(prefix="repro-journal-")
    os.makedirs(journal_dir, exist_ok=True)

    base_checkpoint = args.checkpoint
    if base_checkpoint is None:
        seed_agent = PosetRL(
            action_space=args.action_space or "odg",
            target=args.target, seed=args.seed,
        )
        base_checkpoint = os.path.join(journal_dir, "base.npz")
        seed_agent.save(base_checkpoint)
    metadata = QNetwork.load_metadata(base_checkpoint)
    action_space = args.action_space or str(metadata.get("action_space", "odg"))
    episode_length = int(
        metadata.get("episode_length", DEFAULT_EPISODE_LENGTH)
    )

    serve_kwargs = dict(
        result_cache_size=None,  # every request must produce a rollout
        include_ir=False,
        verify=not args.no_verify,
        batch_window_s=0.002,
    )
    if args.shards > 0:
        target = ShardedGateway.from_checkpoint(
            base_checkpoint, args.shards,
            action_space=action_space,
            target=args.target,
            journal_dir=journal_dir,
            journal_segment_size=args.segment_size,
            **serve_kwargs,
        )
        journal_dirs = [
            os.path.join(journal_dir, f"shard{i}") for i in range(args.shards)
        ]
    else:
        service_journal = os.path.join(journal_dir, "service")
        tap = ExperienceTap(ExperienceJournal(
            service_journal, segment_size=args.segment_size
        ))
        target = OptimizationService.from_checkpoint(
            base_checkpoint,
            action_space=action_space,
            target=args.target,
            experience_tap=tap,
            **serve_kwargs,
        )
        journal_dirs = [service_journal]

    print(f"learning run: suite={args.suite} base={base_checkpoint} "
          f"action_space={action_space} shards={args.shards} "
          f"journal={journal_dir}")

    exit_code = 0
    payload = {
        "suite": args.suite,
        "base_checkpoint": base_checkpoint,
        "shards": args.shards,
        "journal_dir": journal_dir,
        "cycles": [],
    }
    with target:
        load_report = run_load(
            target,
            request_pool(corpus, args.requests),
            concurrency=args.concurrency,
        )
        print(f"  traffic: {load_report.requests} requests "
              f"statuses={load_report.status_counts} "
              f"({load_report.throughput_rps:.1f} req/s)")
        payload["traffic"] = load_report.as_dict()

        # Make sure buffered trajectories hit disk before the trainer
        # reads (worker journals also flush on segment boundaries).
        if args.shards <= 0:
            target.experience_tap.flush()

        trainer = OnlineTrainer(
            base_checkpoint,
            journal_dirs,
            replay_capacity=args.replay_capacity,
            batch_size=args.batch_size,
            steps_per_cycle=args.train_steps,
            min_buffer=args.min_buffer,
            seed=args.seed,
        )
        gate = EvaluationGate(
            holdout,
            target=args.target,
            action_space=action_space,
            episode_length=episode_length,
            size_tolerance_pct=args.size_tolerance,
            throughput_tolerance_pct=args.throughput_tolerance,
            canary_seeds=tuple(
                1801 + i for i in range(max(1, args.canary_seeds))
            ),
            canary_segments=args.canary_segments,
        )
        controller = LearningController(
            target, trainer, gate,
            rollback_threshold=args.rollback_threshold,
        )

        for cycle in range(args.cycles):
            report = controller.run_cycle()
            controller.check_rollback()
            line = (f"  cycle {cycle + 1}: ingested={report.ingested} "
                    f"updates={report.train_updates}")
            if report.candidate_version:
                verdict = report.verdict
                line += (f" candidate={report.candidate_version} "
                         f"gate={'pass' if verdict.passed else 'fail'}"
                         f"{'' if verdict.passed else ' ' + '; '.join(verdict.reasons)}"
                         f" promoted={report.promoted}")
            elif report.details.get("skipped"):
                line += f" skipped ({report.details['skipped']})"
            print(line)
            payload["cycles"].append({
                "ingested": report.ingested,
                "train_updates": report.train_updates,
                "candidate": report.candidate_version,
                "verdict": (
                    report.verdict.describe() if report.verdict else None
                ),
                "promoted": report.promoted,
            })

        injection = None
        if args.inject_regression:
            injection = {}
            bad_net, bad_action = gate.worst_constant_candidate(
                trainer.base_network
            )
            verdict, promoted = controller.consider(bad_net, "injected-bad")
            rejected = (not promoted) and (not verdict.passed)
            injection["regressed_candidate"] = {
                "constant_action": bad_action,
                "rejected": rejected,
                "reasons": verdict.reasons,
            }
            print(f"  injected regression (constant action {bad_action}): "
                  f"{'rejected' if rejected else 'ACCEPTED (bug!)'}")
            if not rejected:
                exit_code = 1

            corrupt_path = os.path.join(journal_dir, "corrupt.npz")
            with open(corrupt_path, "wb") as fh:
                fh.write(b"not a checkpoint at all")
            corrupt_verdict = gate.evaluate_checkpoint(
                corrupt_path, trainer.base_network
            )
            corrupt_rejected = not corrupt_verdict.passed
            injection["corrupted_checkpoint"] = {
                "rejected": corrupt_rejected,
                "reasons": corrupt_verdict.reasons,
            }
            print(f"  corrupted checkpoint: "
                  f"{'rejected' if corrupt_rejected else 'ACCEPTED (bug!)'}")
            if not corrupt_rejected:
                exit_code = 1
        payload["injection"] = injection

    print(f"  learning: promotions={controller.promotions} "
          f"rollbacks={controller.rollbacks} "
          f"fine_tune_steps={trainer.fine_tune_steps} "
          f"ingested={trainer.counters['ingested_transitions']}")
    payload["learning"] = {
        "promotions": controller.promotions,
        "rollbacks": controller.rollbacks,
        "fine_tune_steps": trainer.fine_tune_steps,
        "ingested_transitions": trainer.counters["ingested_transitions"],
        "candidates": trainer.candidates_emitted,
    }

    if args.fail_on_no_promotion and controller.promotions == 0:
        print("FAIL: no candidate was promoted", file=sys.stderr)
        exit_code = 1

    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
    if args.metrics_out:
        export_snapshot(args.metrics_out)
        print(f"  metrics snapshot -> {args.metrics_out}")
    return exit_code


def main() -> int:  # pragma: no cover - console entry
    try:
        return run()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
