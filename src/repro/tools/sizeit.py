"""`llvm-size`-style object-size report.

Examples::

    python -m repro.tools.sizeit input.ll
    python -m repro.tools.sizeit --target aarch64 --per-function input.ll
    python -m repro.tools.sizeit -Oz input.ll        # size after a pipeline
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..codegen.objfile import object_size
from ..codegen.target import TARGETS
from ..ir.parser import parse_module
from ..passes.pipelines import OPT_LEVELS, build_pipeline


def run(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-size", description=__doc__)
    parser.add_argument("--target", default="x86-64",
                        choices=sorted(set(TARGETS)))
    parser.add_argument("--per-function", action="store_true")
    for level in OPT_LEVELS:
        parser.add_argument(
            f"-{level}", dest="level", action="store_const", const=level,
            help=f"optimize with {level} before measuring",
        )
    parser.add_argument("input", help="textual IR file (- for stdin)")
    args = parser.parse_args(argv)

    text = sys.stdin.read() if args.input == "-" else open(args.input).read()
    module = parse_module(text)
    if args.level:
        build_pipeline(args.level).run(module)

    report = object_size(module, args.target)
    print(f"target: {report.target}")
    print(f"{'text':>10} {'data':>10} {'bss':>10} {'symtab':>10} "
          f"{'overhead':>10} {'total':>10}")
    print(f"{report.text_bytes:>10} {report.data_bytes:>10} "
          f"{report.bss_bytes:>10} {report.symbol_bytes:>10} "
          f"{report.overhead_bytes:>10} {report.total_bytes:>10}")

    if args.per_function:
        print(f"\n{'function':<30} {'text':>8} {'mops':>6} {'spills':>7}")
        for fr in report.functions:
            print(f"{fr.name:<30} {fr.text_bytes:>8} {fr.machine_ops:>6} "
                  f"{fr.spill_pairs:>7}")
    return 0


def main() -> int:  # pragma: no cover - console entry
    try:
        return run()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
