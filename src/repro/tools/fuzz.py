"""Differential fuzzing campaigns against the pass pipeline.

Generates seeded random programs, runs them through pass sequences, and
compares interpreter behaviour before and after (see
:mod:`repro.testing`). Failures can be delta-debugged to minimal repros
and written to a corpus directory as permanent regression cases.

Examples::

    python -m repro.tools.fuzz --seeds 200 --sequences odg
    python -m repro.tools.fuzz --seeds 50 --sequences all --reduce \\
        --corpus tests/testing/corpus
    python -m repro.tools.fuzz --seeds 1000 --time-budget 60 \\
        --fail-on-miscompile          # the CI smoke job
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..testing.campaign import FuzzConfig, run_campaign
from ..testing.oracle import SEQUENCE_MODES


def build_argparser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seeds", type=int, default=50,
                        help="number of random programs (default 50)")
    parser.add_argument("--start-seed", type=int, default=0,
                        help="first seed (campaigns are seed-deterministic)")
    parser.add_argument("--sequences", choices=SEQUENCE_MODES, default="odg",
                        help="pass-sequence source per module (default odg)")
    parser.add_argument("--episodes", type=int, default=1,
                        help="agent-style episodes per module "
                        "(manual/odg/random modes)")
    parser.add_argument("--episode-length", type=int, default=10,
                        help="actions per episode (default 10)")
    parser.add_argument("--segments", type=int, default=6,
                        help="program size knob (default 6)")
    parser.add_argument("--time-budget", type=float, default=None, metavar="S",
                        help="stop starting new seeds after S seconds")
    parser.add_argument("--reduce", action="store_true",
                        help="delta-debug each failure to a minimal repro")
    parser.add_argument("--corpus", type=str, default=None, metavar="DIR",
                        help="write failing cases to this corpus directory")
    parser.add_argument("--verify-each", action="store_true",
                        help="verify IR after every pass (pinpoints the "
                        "breaking pass; slower)")
    parser.add_argument("--fail-on-miscompile", action="store_true",
                        help="exit nonzero if any failure is found (CI mode)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="enable per-pass observability and write a "
                        "metrics/trace snapshot to this JSON file (render "
                        "it with python -m repro.tools.stats)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the report as JSON on stdout")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress progress output")
    return parser


def run(argv: Optional[List[str]] = None) -> int:
    parser = build_argparser()
    args = parser.parse_args(argv)

    config = FuzzConfig(
        seeds=args.seeds,
        start_seed=args.start_seed,
        sequences=args.sequences,
        episodes=args.episodes,
        episode_length=args.episode_length,
        segments=args.segments,
        time_budget_s=args.time_budget,
        reduce=args.reduce,
        corpus_dir=args.corpus,
        verify_each=args.verify_each,
        snapshot_path=args.metrics_out,
    )
    log = None if args.quiet else (lambda msg: sys.stderr.write(msg + "\n"))
    report = run_campaign(config, log=log)

    if args.as_json:
        json.dump(report.to_dict(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        sys.stdout.write(report.summary() + "\n")
        for failure in report.failures:
            sys.stdout.write(
                f"  seed {failure.seed}: {failure.kind} "
                f"[{' '.join(failure.reduced_passes or failure.passes)}] "
                f"{failure.detail}\n"
            )

    if args.fail_on_miscompile and report.failures:
        return 1
    return 0


def main() -> int:  # pragma: no cover - console entry
    try:
        return run()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
