"""Target descriptors: x86-64 and AArch64 cost models.

Each descriptor gives per-machine-op encoding sizes (bytes) and the
structural overheads (prologue/epilogue, call sequences, alignment). x86-64
has variable-length encodings; AArch64 is fixed 4-byte with extra
instructions for large immediates — the two targets therefore rank the
same IR differently, which is exactly why the paper reports both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

# Machine-op classes produced by instruction selection.
#   alu      integer add/sub/logic/shift/compare
#   imul     integer multiply
#   idiv     integer divide/remainder
#   lea      address arithmetic
#   load     memory read
#   store    memory write
#   fpalu    scalar float add/sub/convert
#   fpmul    scalar float multiply
#   fpdiv    scalar float divide
#   valu     vector integer op
#   vfp      vector float op
#   vload    vector load
#   vstore   vector store
#   mov      register move (phi resolution, arg setup)
#   movimm   materialize immediate
#   branch   conditional/unconditional jump
#   call     call instruction
#   cmov     conditional move / select
#   ret      return
#   trap     ud2 / brk


@dataclass(frozen=True)
class TargetDescriptor:
    """Static size/layout properties of a code generation target."""

    name: str
    fixed_width: bool
    op_bytes: Dict[str, int]
    prologue_bytes: int
    epilogue_bytes: int
    frame_setup_bytes: int  # extra prologue cost when the frame is used
    function_alignment: int
    max_short_imm: int  # immediates beyond this need extra materialization
    num_gp_registers: int
    spill_bytes: int  # bytes per spill/reload pair
    pointer_bytes: int = 8

    def bytes_for(self, op: str) -> int:
        return self.op_bytes[op]


X86_64 = TargetDescriptor(
    name="x86-64",
    fixed_width=False,
    op_bytes={
        "alu": 3,
        "imul": 4,
        "idiv": 3,
        "lea": 4,
        "load": 4,
        "store": 4,
        "fpalu": 4,
        "fpmul": 4,
        "fpdiv": 4,
        "valu": 5,
        "vfp": 5,
        "vload": 5,
        "vstore": 5,
        "mov": 3,
        "movimm": 5,
        "branch": 2,
        "call": 5,
        "cmov": 4,
        "ret": 1,
        "trap": 2,
    },
    prologue_bytes=4,
    epilogue_bytes=2,
    frame_setup_bytes=7,
    function_alignment=16,
    max_short_imm=127,
    num_gp_registers=14,
    spill_bytes=9,
)

AARCH64 = TargetDescriptor(
    name="aarch64",
    fixed_width=True,
    op_bytes={
        "alu": 4,
        "imul": 4,
        "idiv": 4,
        "lea": 4,
        "load": 4,
        "store": 4,
        "fpalu": 4,
        "fpmul": 4,
        "fpdiv": 4,
        "valu": 4,
        "vfp": 4,
        "vload": 4,
        "vstore": 4,
        "mov": 4,
        "movimm": 4,
        "branch": 4,
        "call": 4,
        "cmov": 4,
        "ret": 4,
        "trap": 4,
    },
    prologue_bytes=8,
    epilogue_bytes=8,
    frame_setup_bytes=8,
    function_alignment=8,
    max_short_imm=4095,
    num_gp_registers=28,
    spill_bytes=8,
)

TARGETS: Dict[str, TargetDescriptor] = {
    "x86-64": X86_64,
    "x86": X86_64,
    "aarch64": AARCH64,
    "arm64": AARCH64,
}


def get_target(name: str) -> TargetDescriptor:
    try:
        return TARGETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown target {name!r}; available: {sorted(set(TARGETS))}"
        ) from None
