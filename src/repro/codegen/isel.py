"""Instruction selection: lower IR instructions to machine-op lists.

This is a *cost-model* lowering: it produces the machine-op classes (with
no operands) that a real ISel would, so that the object-size and MCA
models see a realistic instruction stream — compare+branch fusion, GEPs
folded into addressing modes, immediate materialization, phi-resolution
copies, argument setup, etc.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    ExtractElement,
    FCmp,
    GetElementPtr,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from ..ir.module import BasicBlock, Function
from ..ir.types import FloatType, IntType, VectorType
from ..ir.values import ConstantInt, ConstantVector, Value
from .target import TargetDescriptor

_INT_OP_CLASS = {
    "add": "alu", "sub": "alu", "and": "alu", "or": "alu", "xor": "alu",
    "shl": "alu", "lshr": "alu", "ashr": "alu",
    "mul": "imul",
    "sdiv": "idiv", "udiv": "idiv", "srem": "idiv", "urem": "idiv",
}
_FLOAT_OP_CLASS = {
    "fadd": "fpalu", "fsub": "fpalu",
    "fmul": "fpmul",
    "fdiv": "fpdiv", "frem": "fpdiv",
}


def _is_addressing_foldable(gep: GetElementPtr) -> bool:
    """GEPs whose every use is a load/store address fold into the
    addressing mode (base + index*scale + disp) and cost nothing."""
    if len(gep.indices) > 2:
        return False
    for use in gep.uses:
        user = use.user
        if isinstance(user, Load) and user.pointer is gep:
            continue
        if isinstance(user, Store) and user.pointer is gep and user.value is not gep:
            continue
        return False
    return bool(gep.uses)


def _fused_with_branch(icmp: Instruction) -> bool:
    """A compare only consumed by one branch fuses into cmp+jcc."""
    users = list(icmp.users())
    return (
        len(users) == 1
        and isinstance(users[0], Branch)
        and users[0].parent is icmp.parent
    )


def _needs_imm_materialization(target: TargetDescriptor, value: Value) -> bool:
    return (
        isinstance(value, ConstantInt)
        and abs(value.value) > target.max_short_imm
    )


def lower_instruction(
    inst: Instruction, target: TargetDescriptor
) -> List[str]:
    """Machine-op classes for one IR instruction."""
    ops: List[str] = []

    def imm_cost(operands) -> None:
        for op in operands:
            if _needs_imm_materialization(target, op):
                ops.append("movimm")

    if isinstance(inst, BinaryOp):
        imm_cost(inst.operands)
        if isinstance(inst.type, VectorType):
            ops.append("vfp" if inst.type.element.is_float else "valu")
            if inst.opcode in ("sdiv", "udiv", "srem", "urem", "fdiv"):
                ops.append("vfp")  # divides decompose
        elif isinstance(inst.type, FloatType):
            ops.append(_FLOAT_OP_CLASS[inst.opcode])
        else:
            cls = _INT_OP_CLASS[inst.opcode]
            ops.append(cls)
            if cls == "idiv" and not target.fixed_width:
                ops.append("alu")  # cdq/cqo sign-extension companion
        return ops

    if isinstance(inst, (ICmp, FCmp)):
        imm_cost(inst.operands)
        ops.append("fpalu" if isinstance(inst, FCmp) else "alu")  # cmp
        if not _fused_with_branch(inst):
            users = list(inst.users())
            if not all(isinstance(u, (Select, Branch)) for u in users):
                ops.append("alu")  # setcc / cset materialization
        return ops

    if isinstance(inst, Alloca):
        return []  # folded into frame layout; see objfile accounting

    if isinstance(inst, Load):
        if isinstance(inst.type, VectorType):
            return ["vload"]
        return ["load"]

    if isinstance(inst, Store):
        imm_cost([inst.value])
        if isinstance(inst.value.type, VectorType):
            return ops + ["vstore"]
        return ops + ["store"]

    if isinstance(inst, GetElementPtr):
        if _is_addressing_foldable(inst):
            return []
        if inst.has_all_constant_indices:
            return ["lea"]
        return ["lea"] + (["alu"] if len(inst.indices) > 1 else [])

    if isinstance(inst, Phi):
        # Phis cost a move per incoming edge (resolved in predecessors);
        # attribute them to the phi so block sizes stay well-defined.
        return ["mov"] * inst.num_incoming

    if isinstance(inst, Select):
        imm_cost([inst.true_value, inst.false_value])
        return ops + ["cmov"]

    if isinstance(inst, Cast):
        if inst.opcode in ("bitcast", "inttoptr", "ptrtoint", "trunc"):
            return []  # register reinterpretation
        if inst.opcode in ("zext", "sext"):
            return ["alu"]
        return ["fpalu"]  # fp<->int conversions

    if isinstance(inst, (ExtractElement, InsertElement)):
        return ["valu"]

    if isinstance(inst, Call):
        callee = inst.called_function
        n_args = len(inst.args)
        if callee is not None and callee.name.startswith("llvm.memset"):
            return ["mov"] * 3 + ["call"]
        if callee is not None and callee.name.startswith("llvm.memcpy"):
            return ["mov"] * 3 + ["call"]
        if callee is not None and callee.name.startswith("llvm."):
            return ["alu"]  # residual intrinsics lower to an op or nothing
        ops.extend(["mov"] * min(n_args, 6))
        ops.extend(["store"] * max(0, n_args - 6))  # stack-passed args
        ops.append("call")
        return ops

    if isinstance(inst, Branch):
        if inst.is_conditional:
            cond = inst.condition
            fused = isinstance(cond, (ICmp, FCmp)) and _fused_with_branch(cond)
            if fused:
                return ["branch"]
            return ["alu", "branch"]  # test + jcc
        return ["branch"]

    if isinstance(inst, Switch):
        # Compare-and-branch chain (small switches; Oz avoids jump tables).
        return ["alu", "branch"] * max(1, inst.num_cases) + ["branch"]

    if isinstance(inst, Ret):
        return ["ret"]

    if isinstance(inst, Unreachable):
        return ["trap"]

    raise TypeError(f"cannot lower {inst!r}")  # pragma: no cover


def lower_block(block: BasicBlock, target: TargetDescriptor) -> List[str]:
    ops: List[str] = []
    for inst in block.instructions:
        ops.extend(lower_instruction(inst, target))
    return ops


def lower_function(fn: Function, target: TargetDescriptor) -> Dict[int, List[str]]:
    """Machine ops per block (keyed by id(block))."""
    return {id(b): lower_block(b, target) for b in fn.blocks}
