"""Object-file size model.

Computes the byte size of the relocatable object a real backend would
emit: per-function text (lowered machine ops + prologue/epilogue + spill
code + alignment padding), initialized data (zero-initialized globals live
in .bss and cost no file bytes, as with real ELF objects), and symbol-table
overhead. This is the quantity the POSET-RL reward's BinSize terms measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..analysis.liveness import Liveness
from ..caching import LRUCache
from ..ir.fingerprint import function_fingerprint
from ..ir.flat import FlatFunction, byte_row
from ..ir.instructions import Alloca
from ..ir.module import Function, Module
from ..ir.values import ConstantString, GlobalVariable
from .isel import lower_function
from .target import TargetDescriptor, get_target

ELF_HEADER_BYTES = 64
SECTION_OVERHEAD_BYTES = 3 * 40  # .text/.data/.symtab section headers
SYMBOL_ENTRY_BYTES = 24


@dataclass
class FunctionSizeReport:
    name: str
    text_bytes: int
    machine_ops: int
    spill_pairs: int


@dataclass
class SizeReport:
    """Breakdown of an object file's size."""

    target: str
    text_bytes: int = 0
    data_bytes: int = 0
    bss_bytes: int = 0  # occupies memory, not file bytes
    symbol_bytes: int = 0
    overhead_bytes: int = ELF_HEADER_BYTES + SECTION_OVERHEAD_BYTES
    functions: List[FunctionSizeReport] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """File size of the object (bss excluded, as in a real .o)."""
        return (
            self.text_bytes
            + self.data_bytes
            + self.symbol_bytes
            + self.overhead_bytes
        )


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def function_text_size(fn: Function, target: TargetDescriptor) -> FunctionSizeReport:
    ops_by_block = lower_function(fn, target)
    body = 0
    op_count = 0
    for ops in ops_by_block.values():
        op_count += len(ops)
        for op in ops:
            body += target.bytes_for(op)

    text = target.prologue_bytes + body + target.epilogue_bytes
    if any(isinstance(i, Alloca) for i in fn.instructions()):
        text += target.frame_setup_bytes

    # Register-pressure spill model: every live value beyond the register
    # file costs a spill/reload pair somewhere.
    pressure = Liveness(fn).max_pressure()
    spills = max(0, pressure - target.num_gp_registers)
    text += spills * target.spill_bytes

    return FunctionSizeReport(
        name=fn.name,
        text_bytes=_align(text, target.function_alignment),
        machine_ops=op_count,
        spill_pairs=spills,
    )


def flat_function_text_size(
    ff: FlatFunction, target: TargetDescriptor
) -> FunctionSizeReport:
    """:func:`function_text_size` over a flat view: one dot product of the
    machine-op count vector with the target's byte-cost row."""
    row = byte_row(target)
    body = int(row @ ff.fn_mop_counts)
    op_count = int(ff.fn_mop_counts.sum())

    text = target.prologue_bytes + body + target.epilogue_bytes
    if ff.has_alloca:
        text += target.frame_setup_bytes

    spills = max(0, ff.max_pressure - target.num_gp_registers)
    text += spills * target.spill_bytes

    return FunctionSizeReport(
        name=ff.name,
        text_bytes=_align(text, target.function_alignment),
        machine_ops=op_count,
        spill_pairs=spills,
    )


def _global_data_bytes(gv: GlobalVariable) -> int:
    init = gv.initializer
    size = max(gv.value_type.size, 1)
    if init is None or init.is_zero():
        return 0  # .bss
    return size


def object_size(
    module: Module,
    target="x86-64",
    cache: Optional[LRUCache] = None,
    fingerprints: Optional[Mapping[str, str]] = None,
    flat=None,
) -> SizeReport:
    """Size of the object file produced from ``module`` for ``target``.

    With ``cache`` (an :class:`~repro.caching.LRUCache`), per-function text
    sizes are memoized on the function's structural fingerprint: a module
    where only one of N functions changed re-lowers only that function.

    ``fingerprints`` (name → digest) supplies fingerprints already computed
    this step so each function is hashed at most once. ``flat`` (a
    :class:`~repro.ir.flat.FlatCore` for the same target) sizes functions
    from their flat machine-op counts instead of re-lowering.
    """
    if isinstance(target, str):
        target = get_target(target)
    if flat is not None and flat.descriptor.name != target.name:
        flat = None
    report = SizeReport(target=target.name)

    for fn in module.functions:
        if fn.is_declaration:
            if fn.has_uses:  # undefined symbol referenced -> symtab entry
                report.symbol_bytes += SYMBOL_ENTRY_BYTES
            continue
        if cache is not None or flat is not None:
            fp = fingerprints.get(fn.name) if fingerprints is not None else None
            if fp is None:
                fp = function_fingerprint(fn)
        if cache is not None:
            key = (fp, target.name)
            fr = cache.get(key)
            if fr is None:
                if flat is not None:
                    fr = flat_function_text_size(flat.get(fn, fp), target)
                else:
                    fr = function_text_size(fn, target)
                cache.put(key, fr)
        elif flat is not None:
            fr = flat_function_text_size(flat.get(fn, fp), target)
        else:
            fr = function_text_size(fn, target)
        report.functions.append(fr)
        report.text_bytes += fr.text_bytes
        report.symbol_bytes += SYMBOL_ENTRY_BYTES

    for gv in module.globals:
        data = _global_data_bytes(gv)
        if data:
            report.data_bytes += _align(data, gv.alignment)
        else:
            report.bss_bytes += max(gv.value_type.size, 1)
        report.symbol_bytes += SYMBOL_ENTRY_BYTES

    return report
