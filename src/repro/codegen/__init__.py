"""Code generation cost models: instruction selection and object size."""

from .isel import lower_block, lower_function, lower_instruction
from .objfile import (
    FunctionSizeReport,
    SizeReport,
    function_text_size,
    object_size,
)
from .target import AARCH64, TARGETS, TargetDescriptor, X86_64, get_target

__all__ = [
    "AARCH64",
    "FunctionSizeReport",
    "SizeReport",
    "TARGETS",
    "TargetDescriptor",
    "X86_64",
    "function_text_size",
    "get_target",
    "lower_block",
    "lower_function",
    "lower_instruction",
    "object_size",
]
