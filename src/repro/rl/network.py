"""A small fully-connected Q-network in pure numpy.

Architecture: configurable hidden layers with ReLU, linear output head
(one Q-value per action). Training uses Adam and Huber loss on the
selected action's Q-value — the standard DQN regression setup. Weights
can be copied wholesale (online → target network synchronization) and
serialized to ``.npz`` for checkpointing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np


class DenseLayer:
    """One affine layer with optional ReLU."""

    def __init__(self, rng: np.random.RandomState, fan_in: int, fan_out: int,
                 relu: bool):
        scale = np.sqrt(2.0 / fan_in)
        self.weight = rng.standard_normal((fan_in, fan_out)) * scale
        self.bias = np.zeros(fan_out)
        self.relu = relu
        # Adam state
        self.m_w = np.zeros_like(self.weight)
        self.v_w = np.zeros_like(self.weight)
        self.m_b = np.zeros_like(self.bias)
        self.v_b = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        pre = x @ self.weight + self.bias
        out = np.maximum(pre, 0.0) if self.relu else pre
        return pre, out

    def backward(
        self, x: np.ndarray, pre: np.ndarray, grad_out: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self.relu:
            grad_out = grad_out * (pre > 0.0)
        grad_w = x.T @ grad_out
        grad_b = grad_out.sum(axis=0)
        grad_x = grad_out @ self.weight.T
        return grad_x, grad_w, grad_b


def adam_step(
    layer: DenseLayer, grad_w: np.ndarray, grad_b: np.ndarray, t: int,
    learning_rate: float,
    beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8,
) -> None:
    """One Adam update of a layer's weight/bias from their gradients.

    Shared by :class:`QNetwork` and the PPO policy/value network — the
    optimizer state lives on the layer, the timestep on the caller.
    """
    for grad, m, v, param in (
        (grad_w, layer.m_w, layer.v_w, layer.weight),
        (grad_b, layer.m_b, layer.v_b, layer.bias),
    ):
        m *= beta1
        m += (1 - beta1) * grad
        v *= beta2
        v += (1 - beta2) * grad**2
        m_hat = m / (1 - beta1**t)
        v_hat = v / (1 - beta2**t)
        param -= learning_rate * m_hat / (np.sqrt(v_hat) + eps)


class QNetwork:
    """MLP mapping state vectors to per-action Q-values."""

    def __init__(
        self,
        state_dim: int,
        num_actions: int,
        hidden: Sequence[int] = (128, 64),
        learning_rate: float = 1e-4,
        seed: int = 0,
    ):
        self.state_dim = state_dim
        self.num_actions = num_actions
        self.learning_rate = learning_rate
        rng = np.random.RandomState(seed)
        dims = [state_dim, *hidden, num_actions]
        self.layers: List[DenseLayer] = [
            DenseLayer(rng, dims[i], dims[i + 1], relu=(i + 1 < len(dims) - 1))
            for i in range(len(dims) - 1)
        ]
        self._adam_t = 0

    # -- inference ----------------------------------------------------------
    def predict(self, states: np.ndarray) -> np.ndarray:
        """Q-values for a batch (or single) state.

        ``np.asarray`` keeps already-float64 inputs as views — the act
        path hands states straight from the environment every step, so
        the cast must be a no-op for them.
        """
        x = np.asarray(states, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[np.newaxis, :]
        for layer in self.layers:
            _, x = layer.forward(x)
        return x[0] if squeeze else x

    # -- training -------------------------------------------------------------
    def train_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        targets: np.ndarray,
        huber_delta: float = 1.0,
        sample_weights: Optional[np.ndarray] = None,
        return_td_errors: bool = False,
    ) -> Any:
        """One Adam step fitting Q(s, a) toward ``targets``; returns loss.

        ``sample_weights`` scales each row's loss and gradient — the
        importance-sampling correction of prioritized replay. With
        ``return_td_errors`` the per-row signed TD errors (pre-clip,
        pre-weight) come back alongside the loss so the caller can feed
        new priorities to the buffer.
        """
        x = np.atleast_2d(np.asarray(states, dtype=np.float64))
        batch = x.shape[0]
        activations: List[np.ndarray] = [x]
        pres: List[np.ndarray] = []
        h = x
        for layer in self.layers:
            pre, h = layer.forward(h)
            pres.append(pre)
            activations.append(h)
        q = activations[-1]

        picked = q[np.arange(batch), actions]
        error = picked - targets
        row_weights = (
            np.ones(batch)
            if sample_weights is None
            else np.asarray(sample_weights, dtype=np.float64).ravel()
        )
        # Huber loss gradient (clipped error).
        grad_picked = row_weights * np.clip(error, -huber_delta, huber_delta) / batch
        loss = float(
            np.mean(
                row_weights
                * np.where(
                    np.abs(error) <= huber_delta,
                    0.5 * error**2,
                    huber_delta * (np.abs(error) - 0.5 * huber_delta),
                )
            )
        )

        grad_q = np.zeros_like(q)
        grad_q[np.arange(batch), actions] = grad_picked

        self._adam_t += 1
        grad = grad_q
        for i in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[i]
            grad, grad_w, grad_b = layer.backward(activations[i], pres[i], grad)
            self._adam_step(layer, grad_w, grad_b)
        if return_td_errors:
            return loss, error
        return loss

    def _adam_step(
        self, layer: DenseLayer, grad_w: np.ndarray, grad_b: np.ndarray,
        beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8,
    ) -> None:
        adam_step(
            layer, grad_w, grad_b, self._adam_t, self.learning_rate,
            beta1=beta1, beta2=beta2, eps=eps,
        )

    # -- weight management ------------------------------------------------------
    def get_weights(self) -> List[np.ndarray]:
        out: List[np.ndarray] = []
        for layer in self.layers:
            out.append(layer.weight.copy())
            out.append(layer.bias.copy())
        return out

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        assert len(weights) == 2 * len(self.layers)
        for i, layer in enumerate(self.layers):
            layer.weight[...] = weights[2 * i]
            layer.bias[...] = weights[2 * i + 1]

    def copy_from(self, other: "QNetwork") -> None:
        self.set_weights(other.get_weights())

    @property
    def hidden(self) -> Tuple[int, ...]:
        """Hidden-layer widths (every layer output except the head's)."""
        return tuple(layer.weight.shape[1] for layer in self.layers[:-1])

    def save(self, path: str, metadata: Optional[Dict[str, Any]] = None) -> None:
        arrays = {f"p{i}": w for i, w in enumerate(self.get_weights())}
        # ``meta`` carries the architecture: without the hidden widths a
        # checkpoint from a non-default network silently mis-shaped (or
        # crashed) on load.
        arrays["meta"] = np.array(
            [self.state_dim, self.num_actions, self.learning_rate]
        )
        arrays["hidden"] = np.array(self.hidden, dtype=np.int64)
        if metadata:
            # Free-form provenance (action-space name, training stats, …)
            # consumed by the serving model registry. JSON keeps the
            # checkpoint a single self-describing file.
            arrays["metadata_json"] = np.array(json.dumps(metadata))
        np.savez(path, **arrays)

    @staticmethod
    def load_metadata(path: str) -> Dict[str, Any]:
        """Provenance metadata embedded in a checkpoint (``{}`` if none)."""
        data = np.load(path)
        if "metadata_json" in data.files:
            return json.loads(data["metadata_json"].item())
        return {}

    @classmethod
    def load(cls, path: str, hidden: Optional[Sequence[int]] = None) -> "QNetwork":
        """Restore a checkpoint.

        The architecture is read from the file itself: the ``hidden``
        array when present, otherwise (legacy checkpoints) inferred from
        the stored weight-matrix shapes. An explicit ``hidden`` argument
        is validated against the file rather than trusted.
        """
        data = np.load(path)
        meta = data["meta"]
        if "hidden" in data.files:
            stored: Tuple[int, ...] = tuple(int(h) for h in data["hidden"])
        else:
            param_keys = [k for k in data.files if k.startswith("p")]
            n_layers = len(param_keys) // 2
            stored = tuple(
                int(data[f"p{2 * i}"].shape[1]) for i in range(n_layers - 1)
            )
        if hidden is not None and tuple(hidden) != stored:
            raise ValueError(
                f"checkpoint {path!r} has hidden layers {stored}, "
                f"not {tuple(hidden)}"
            )
        net = cls(int(meta[0]), int(meta[1]), stored, float(meta[2]))
        weights = [data[f"p{i}"] for i in range(2 * len(net.layers))]
        net.set_weights(weights)
        return net
