"""PPO agent: clipped-surrogate policy optimization over the phase ODG.

The AutoPhase papers (PAPERS.md: Huang et al. 2019, 2020) use PPO for
exactly this phase-ordering problem and report it beats DQN variants, so
the repo carries it as a second algorithm behind the same training
facade. :class:`PPOAgent` exposes the acting/remembering interface
:class:`~repro.core.agent_api.PosetRL` drives (``act`` / ``act_batch`` /
``remember`` / ``remember_batch``) plus a bulk :meth:`PPOAgent.
ingest_rollout` entry for the distributed actor-learner path, which
ships per-transition log-probabilities and value estimates computed
against the actor's pinned snapshot.

Architecture: a shared trunk of :class:`~repro.rl.network.DenseLayer`
stacks (the same layers the Q-network uses) feeding two linear heads —
action logits and a scalar state value. Updates are standard PPO:
generalized advantage estimation over per-lane contiguous trajectories,
advantage normalization, then ``epochs`` passes of shuffled minibatches
through the clipped surrogate + value + entropy loss.

All gradients are computed analytically in
:func:`ppo_loss_and_grads` — a pure function of (network, batch) so the
test suite can check it against finite differences.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..observability import get_registry
from .network import DenseLayer, adam_step


@dataclass
class PPOConfig:
    """PPO hyper-parameters (standard AutoPhase-style choices)."""

    state_dim: int = 300
    num_actions: int = 34
    hidden: Sequence[int] = (128, 64)
    learning_rate: float = 3e-4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_ratio: float = 0.2
    epochs: int = 4
    minibatch_size: int = 64
    #: Transitions accumulated (across all lanes) before an update runs.
    horizon: int = 256
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    #: Same reward conditioning as the DQN path (AgentConfig.reward_scale).
    reward_scale: float = 0.1
    seed: int = 0


class PolicyValueNetwork:
    """Shared-trunk MLP with a policy (logits) head and a value head."""

    def __init__(
        self,
        state_dim: int,
        num_actions: int,
        hidden: Sequence[int] = (128, 64),
        learning_rate: float = 3e-4,
        seed: int = 0,
    ):
        self.state_dim = state_dim
        self.num_actions = num_actions
        self.learning_rate = learning_rate
        rng = np.random.RandomState(seed)
        dims = [state_dim, *hidden]
        self.trunk: List[DenseLayer] = [
            DenseLayer(rng, dims[i], dims[i + 1], relu=True)
            for i in range(len(dims) - 1)
        ]
        self.policy_head = DenseLayer(rng, dims[-1], num_actions, relu=False)
        self.value_head = DenseLayer(rng, dims[-1], 1, relu=False)
        self._adam_t = 0

    @property
    def hidden(self) -> Tuple[int, ...]:
        return tuple(layer.weight.shape[1] for layer in self.trunk)

    @property
    def layers(self) -> List[DenseLayer]:
        """All layers in canonical (trunk..., policy, value) order."""
        return [*self.trunk, self.policy_head, self.value_head]

    # -- inference -----------------------------------------------------------
    def forward(
        self, states: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray], List[np.ndarray]]:
        """(logits, values, trunk activations, trunk pre-activations)."""
        x = np.atleast_2d(np.asarray(states, dtype=np.float64))
        activations = [x]
        pres: List[np.ndarray] = []
        h = x
        for layer in self.trunk:
            pre, h = layer.forward(h)
            pres.append(pre)
            activations.append(h)
        _, logits = self.policy_head.forward(h)
        _, values = self.value_head.forward(h)
        return logits, values[:, 0], activations, pres

    def predict(self, states: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(logits, values) for a batch or a single state row."""
        x = np.asarray(states, dtype=np.float64)
        squeeze = x.ndim == 1
        logits, values, _, _ = self.forward(x)
        if squeeze:
            return logits[0], float(values[0])
        return logits, values

    def apply_gradients(self, grads: Sequence[Tuple[np.ndarray, np.ndarray]]) -> None:
        """One Adam step from per-layer (grad_w, grad_b) in layer order."""
        self._adam_t += 1
        for layer, (grad_w, grad_b) in zip(self.layers, grads):
            adam_step(layer, grad_w, grad_b, self._adam_t, self.learning_rate)

    # -- weight management ----------------------------------------------------
    def get_weights(self) -> List[np.ndarray]:
        out: List[np.ndarray] = []
        for layer in self.layers:
            out.append(layer.weight.copy())
            out.append(layer.bias.copy())
        return out

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        assert len(weights) == 2 * len(self.layers)
        for i, layer in enumerate(self.layers):
            layer.weight[...] = weights[2 * i]
            layer.bias[...] = weights[2 * i + 1]

    def copy_from(self, other: "PolicyValueNetwork") -> None:
        self.set_weights(other.get_weights())

    # -- persistence -----------------------------------------------------------
    def save(self, path: str, metadata: Optional[Dict[str, Any]] = None) -> None:
        arrays = {f"p{i}": w for i, w in enumerate(self.get_weights())}
        arrays["meta"] = np.array(
            [self.state_dim, self.num_actions, self.learning_rate]
        )
        arrays["hidden"] = np.array(self.hidden, dtype=np.int64)
        arrays["kind"] = np.array("policy_value")
        if metadata:
            arrays["metadata_json"] = np.array(json.dumps(metadata))
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path: str) -> "PolicyValueNetwork":
        data = np.load(path)
        if "kind" not in data.files or str(data["kind"]) != "policy_value":
            raise ValueError(
                f"{path!r} is not a policy/value checkpoint"
            )
        meta = data["meta"]
        hidden = tuple(int(h) for h in data["hidden"])
        net = cls(int(meta[0]), int(meta[1]), hidden, float(meta[2]))
        weights = [data[f"p{i}"] for i in range(2 * len(net.layers))]
        net.set_weights(weights)
        return net


def log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def ppo_loss_and_grads(
    net: PolicyValueNetwork,
    states: np.ndarray,
    actions: np.ndarray,
    old_logprobs: np.ndarray,
    advantages: np.ndarray,
    returns: np.ndarray,
    *,
    clip_ratio: float = 0.2,
    value_coef: float = 0.5,
    entropy_coef: float = 0.01,
) -> Tuple[float, Dict[str, float], List[Tuple[np.ndarray, np.ndarray]]]:
    """Clipped-surrogate PPO loss and its analytic parameter gradients.

    Loss = -E[min(r·A, clip(r, 1±ε)·A)] + c_v·½E[(V-R)²] - c_e·E[H(π)].

    Returns ``(loss, stats, grads)`` where ``grads`` is a per-layer list
    of ``(grad_w, grad_b)`` in :attr:`PolicyValueNetwork.layers` order —
    ready for :meth:`PolicyValueNetwork.apply_gradients`, and pure
    enough for a finite-difference check (no optimizer state touched).
    """
    states = np.atleast_2d(np.asarray(states, dtype=np.float64))
    actions = np.asarray(actions, dtype=np.int64).ravel()
    old_logprobs = np.asarray(old_logprobs, dtype=np.float64).ravel()
    advantages = np.asarray(advantages, dtype=np.float64).ravel()
    returns = np.asarray(returns, dtype=np.float64).ravel()
    batch = states.shape[0]
    rows = np.arange(batch)

    logits, values, activations, pres = net.forward(states)
    logp = log_softmax(logits)
    probs = np.exp(logp)
    logp_a = logp[rows, actions]

    ratio = np.exp(logp_a - old_logprobs)
    unclipped = ratio * advantages
    clipped = np.clip(ratio, 1.0 - clip_ratio, 1.0 + clip_ratio) * advantages
    surrogate = np.minimum(unclipped, clipped)
    policy_loss = -float(surrogate.mean())

    value_error = values - returns
    value_loss = 0.5 * float(np.mean(value_error**2))

    entropy_rows = -(probs * logp).sum(axis=1)
    entropy = float(entropy_rows.mean())

    loss = policy_loss + value_coef * value_loss - entropy_coef * entropy

    # -- gradients w.r.t. logits and values ---------------------------------
    # d surrogate / d logp_a: the min picks the unclipped branch (or the
    # clipped one while the ratio is still inside the clip band, where the
    # two coincide); a selected clipped branch outside the band is flat.
    in_band = (ratio >= 1.0 - clip_ratio) & (ratio <= 1.0 + clip_ratio)
    active = (unclipped <= clipped) | in_band
    d_logp_a = np.where(active, ratio * advantages, 0.0) / batch
    # logp_a = z_a - logsumexp(z):  d logp_a / d z_j = 1[j=a] - p_j.
    grad_logits = -d_logp_a[:, None] * (
        (actions[:, None] == np.arange(net.num_actions)[None, :]) - probs
    )
    # Entropy: dH/dz_j = -p_j (logp_j + H).
    d_entropy = -probs * (logp + entropy_rows[:, None])
    grad_logits -= entropy_coef * d_entropy / batch
    grad_values = value_coef * value_error / batch

    # -- backprop: heads, then shared trunk ---------------------------------
    trunk_out = activations[-1]
    grads: List[Optional[Tuple[np.ndarray, np.ndarray]]]
    grads = [None] * (len(net.trunk) + 2)
    grad_trunk_p, gw, gb = net.policy_head.backward(
        trunk_out, logits, grad_logits
    )
    grads[len(net.trunk)] = (gw, gb)
    grad_trunk_v, gw, gb = net.value_head.backward(
        trunk_out, grad_values[:, None], grad_values[:, None]
    )
    grads[len(net.trunk) + 1] = (gw, gb)
    grad = grad_trunk_p + grad_trunk_v
    for i in range(len(net.trunk) - 1, -1, -1):
        layer = net.trunk[i]
        grad, gw, gb = layer.backward(activations[i], pres[i], grad)
        grads[i] = (gw, gb)

    stats = {
        "policy_loss": policy_loss,
        "value_loss": value_loss,
        "entropy": entropy,
        "mean_ratio": float(ratio.mean()),
    }
    return loss, stats, grads  # type: ignore[return-value]


class _LaneBuffer:
    """Contiguous on-policy trajectory fragment for one env slot/actor."""

    __slots__ = (
        "states", "actions", "rewards", "next_states",
        "dones", "logprobs", "values",
    )

    def __init__(self) -> None:
        self.states: List[np.ndarray] = []
        self.actions: List[int] = []
        self.rewards: List[float] = []
        self.next_states: List[np.ndarray] = []
        self.dones: List[bool] = []
        self.logprobs: List[float] = []
        self.values: List[float] = []

    def __len__(self) -> int:
        return len(self.actions)


class PPOAgent:
    """On-policy PPO behind the DQN-compatible acting interface.

    Transitions accumulate in per-lane buffers (lane = vector-env slot
    or distributed actor id) so GAE runs over contiguous trajectories;
    once ``config.horizon`` transitions are stored across all lanes, one
    PPO update (``epochs`` × shuffled minibatches) consumes and clears
    them.
    """

    double = False

    def __init__(self, config: Optional[PPOConfig] = None):
        self.config = config or PPOConfig()
        c = self.config
        self.net = PolicyValueNetwork(
            c.state_dim, c.num_actions, c.hidden, c.learning_rate, seed=c.seed
        )
        self._rng = np.random.RandomState(c.seed + 7)
        self._lanes: Dict[int, _LaneBuffer] = {}
        self._pending: Dict[int, Tuple[float, float]] = {}
        self._stored = 0
        self.steps = 0
        self.train_steps = 0
        self.updates = 0
        self.last_loss: Optional[float] = None
        self.last_stats: Dict[str, float] = {}

    # -- facade compatibility -------------------------------------------------
    @property
    def epsilon(self) -> float:
        """PPO explores through its stochastic policy; no ε schedule."""
        return 0.0

    # -- acting ----------------------------------------------------------------
    def policy(self, state: np.ndarray) -> np.ndarray:
        """Action probabilities for one state."""
        logits, _ = self.net.predict(np.asarray(state, dtype=np.float64))
        logp = log_softmax(logits[None, :])[0]
        return np.exp(logp)

    def _sample_row(
        self, logits: np.ndarray, value: float, greedy: bool, lane: int
    ) -> int:
        logp = log_softmax(logits[None, :])[0]
        if greedy:
            return int(np.argmax(logp))
        probs = np.exp(logp)
        u = self._rng.random_sample()
        action = int(
            min(np.searchsorted(np.cumsum(probs), u), len(probs) - 1)
        )
        self._pending[lane] = (float(logp[action]), float(value))
        return action

    def act(self, state: np.ndarray, greedy: bool = False) -> int:
        logits, value = self.net.predict(
            np.asarray(state, dtype=np.float64)
        )
        return self._sample_row(logits, value, greedy, lane=0)

    def act_batch(self, states: np.ndarray, greedy: bool = False) -> np.ndarray:
        states = np.asarray(states, dtype=np.float64)
        if states.ndim != 2:
            raise ValueError(f"expected (n, state_dim) batch, got {states.shape}")
        logits, values = self.net.predict(states)
        return np.array(
            [
                self._sample_row(logits[i], float(values[i]), greedy, lane=i)
                for i in range(states.shape[0])
            ],
            dtype=np.int64,
        )

    # -- remembering -------------------------------------------------------------
    def _lane(self, lane: int) -> _LaneBuffer:
        buf = self._lanes.get(lane)
        if buf is None:
            buf = self._lanes[lane] = _LaneBuffer()
        return buf

    def _store(
        self,
        lane: int,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        logprob: Optional[float] = None,
        value: Optional[float] = None,
    ) -> None:
        if logprob is None or value is None:
            cached = self._pending.pop(lane, None)
            if cached is None:
                # Off-policy ingest (e.g. journaled traffic): score the
                # transition under the current policy.
                logits, v = self.net.predict(
                    np.asarray(state, dtype=np.float64)
                )
                logp = log_softmax(logits[None, :])[0]
                cached = (float(logp[int(action)]), float(v))
            logprob, value = cached
        else:
            self._pending.pop(lane, None)
        buf = self._lane(lane)
        buf.states.append(np.asarray(state, dtype=np.float64).ravel().copy())
        buf.actions.append(int(action))
        buf.rewards.append(float(reward) * self.config.reward_scale)
        buf.next_states.append(
            np.asarray(next_state, dtype=np.float64).ravel().copy()
        )
        buf.dones.append(bool(done))
        buf.logprobs.append(float(logprob))
        buf.values.append(float(value))
        self._stored += 1
        self.steps += 1

    def remember(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
    ) -> None:
        self._store(0, state, action, reward, next_state, done)
        self._maybe_update()

    def remember_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
    ) -> None:
        states = np.atleast_2d(np.asarray(states))
        next_states = np.atleast_2d(np.asarray(next_states))
        for i in range(len(actions)):
            self._store(
                i, states[i], int(actions[i]), float(rewards[i]),
                next_states[i], bool(dones[i]),
            )
        self._maybe_update()

    def ingest_rollout(
        self,
        lane: int,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        logprobs: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Bulk-append an actor's contiguous rollout chunk (with the
        log-probs/values it computed against its pinned snapshot)."""
        states = np.atleast_2d(np.asarray(states))
        next_states = np.atleast_2d(np.asarray(next_states))
        for i in range(len(actions)):
            self._store(
                lane, states[i], int(actions[i]), float(rewards[i]),
                next_states[i], bool(dones[i]),
                logprob=float(logprobs[i]), value=float(values[i]),
            )
        self._maybe_update()

    # -- updates -------------------------------------------------------------
    def _maybe_update(self) -> None:
        if self._stored >= self.config.horizon:
            self.update()

    def flush(self) -> Optional[float]:
        """Run a final update on the residual sub-horizon buffer.

        Training loops call this when a budget ends so short runs (fewer
        than ``horizon`` transitions) still learn from what they gathered.
        No-op when nothing is buffered.
        """
        if self._stored == 0:
            return None
        return self.update()

    def _lane_advantages(
        self, buf: _LaneBuffer
    ) -> Tuple[np.ndarray, np.ndarray]:
        """GAE advantages and returns for one contiguous lane fragment."""
        c = self.config
        T = len(buf)
        rewards = np.asarray(buf.rewards, dtype=np.float64)
        values = np.asarray(buf.values, dtype=np.float64)
        dones = np.asarray(buf.dones, dtype=bool)
        next_values = np.empty(T, dtype=np.float64)
        # V(s_{t+1}) is the stored value of the next row (lanes are
        # contiguous); episode ends bootstrap 0, the fragment tail
        # bootstraps from the current network.
        next_values[:-1] = values[1:]
        if dones[-1]:
            next_values[-1] = 0.0
        else:
            _, tail = self.net.predict(
                np.asarray(buf.next_states[-1], dtype=np.float64)
            )
            next_values[-1] = tail
        next_values[dones] = 0.0
        deltas = rewards + c.gamma * next_values - values
        advantages = np.empty(T, dtype=np.float64)
        running = 0.0
        for t in range(T - 1, -1, -1):
            if dones[t]:
                running = 0.0
            running = deltas[t] + c.gamma * c.gae_lambda * running
            advantages[t] = running
        return advantages, advantages + values

    def update(self) -> Optional[float]:
        """Run one PPO update over everything stored; returns mean loss."""
        c = self.config
        lanes = [
            (lane, buf) for lane, buf in sorted(self._lanes.items()) if len(buf)
        ]
        if not lanes:
            return None
        states, actions, logprobs = [], [], []
        advantages, returns = [], []
        for _, buf in lanes:
            adv, ret = self._lane_advantages(buf)
            states.append(np.stack(buf.states))
            actions.append(np.asarray(buf.actions, dtype=np.int64))
            logprobs.append(np.asarray(buf.logprobs, dtype=np.float64))
            advantages.append(adv)
            returns.append(ret)
        all_states = np.concatenate(states)
        all_actions = np.concatenate(actions)
        all_logprobs = np.concatenate(logprobs)
        all_adv = np.concatenate(advantages)
        all_ret = np.concatenate(returns)
        std = all_adv.std()
        all_adv = (all_adv - all_adv.mean()) / (std + 1e-8)

        n = len(all_actions)
        batch_size = min(c.minibatch_size, n)
        losses: List[float] = []
        for _ in range(c.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, batch_size):
                rows = order[start:start + batch_size]
                loss, stats, grads = ppo_loss_and_grads(
                    self.net,
                    all_states[rows],
                    all_actions[rows],
                    all_logprobs[rows],
                    all_adv[rows],
                    all_ret[rows],
                    clip_ratio=c.clip_ratio,
                    value_coef=c.value_coef,
                    entropy_coef=c.entropy_coef,
                )
                self.net.apply_gradients(grads)
                self.train_steps += 1
                losses.append(loss)
                self.last_stats = stats
        self._lanes.clear()
        self._pending.clear()
        self._stored = 0
        self.updates += 1
        self.last_loss = float(np.mean(losses)) if losses else None
        registry = get_registry()
        if registry.enabled and self.last_loss is not None:
            registry.counter(
                "repro_train_updates_total", "gradient updates"
            ).inc(len(losses))
            registry.gauge(
                "repro_train_loss", "loss of the most recent update"
            ).set(self.last_loss)
            registry.gauge(
                "repro_train_ppo_entropy", "policy entropy at the last update"
            ).set(self.last_stats.get("entropy", 0.0))
        return self.last_loss

    # -- persistence ------------------------------------------------------------
    def save(self, path: str, metadata: Optional[dict] = None) -> None:
        self.net.save(path, metadata=metadata)

    def load(self, path: str) -> None:
        self.net.copy_from(PolicyValueNetwork.load(path))

    # -- facade hooks the DQN agent also provides --------------------------------
    @property
    def memory(self):  # pragma: no cover - interface parity
        return None

    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Action preferences (logits) — argmax matches greedy acting."""
        logits, _ = self.net.predict(state)
        return logits
