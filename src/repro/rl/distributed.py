"""Asynchronous actor-learner training (Ape-X style, deterministic).

Topology: ``n_actors`` child processes each own a private set of
:class:`~repro.core.environment.PhaseOrderingEnv` instances over the
training corpus (modules cross the pipe once as printed IR text — the
``vector_env`` worker idiom) and roll out ε-greedy (DQN) or
policy-sampled (PPO) episodes against a **pinned network snapshot**.
The parent process is the learner: it ingests rollout chunks into the
agent's replay ring (optionally sum-tree prioritized) or PPO lane
buffers, trains, and periodically broadcasts fresh weights by writing a
``.npz`` checkpoint — the same format ``QNetwork.save`` produces — and
sending its path to the actors.

Scheduling is *pipelined but deterministic*: each actor always has at
most one outstanding rollout request, requests are issued round-robin,
and the learner ingests replies strictly in issue order. Actors
therefore generate experience concurrently with learner ingestion and
with each other, while the learner-side event sequence — and with it the
trained weights — is a pure function of the seed. Two runs of the same
configuration produce identical learner weights.

Serial equivalence: with ``actors=1``, ``chunk_size=1`` and
``broadcast_every=1`` (broadcast after every ingested transition) the
actor always acts on the learner's current weights, its exploration and
corpus-sampling RNG streams are seeded exactly as the in-process agent's
(``seed+7`` / ``seed+13``), and the learner stores transitions through
the same ``remember_batch`` path — the whole run is bit-identical to
``PosetRL.train_vectorized(n_envs=1)``. The test suite pins this.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import shutil
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..observability import get_registry
from .schedule import LinearSchedule

#: Seed stride between actors: actor ``i`` offsets every stream by
#: ``ACTOR_SEED_STRIDE * i`` so actor 0 matches the in-process streams.
ACTOR_SEED_STRIDE = 7919

#: Histogram buckets for broadcast latency (seconds).
BROADCAST_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)


@dataclass
class ActorSpec:
    """Picklable recipe for one actor process."""

    corpus: List[Tuple[str, str]]  # (benchmark name, printed IR text)
    action_space_kind: str = "odg"
    target: str = "x86-64"
    weights: Any = None  # RewardWeights (picklable dataclass)
    episode_length: int = 15
    cache: bool = True
    algo: str = "ddqn"  # acting mode: ddqn/dqn/prioritized-ddqn vs ppo
    num_actions: int = 34
    epsilon_start: float = 1.0
    epsilon_end: float = 0.01
    epsilon_steps: int = 20_000
    seed: int = 0
    actor_id: int = 0


@dataclass
class ActorChunk:
    """One rollout chunk returned by an actor."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray
    #: PPO only: per-transition log-prob/value under the pinned snapshot.
    logprobs: Optional[np.ndarray]
    values: Optional[np.ndarray]
    #: (module, total_reward, final_size, actions) per finished episode.
    episodes: List[Tuple[str, float, int, List[int]]]
    snapshot_version: int
    wall_seconds: float


@dataclass
class ActorFinalStats:
    """Actor-side end state returned at drain (for the determinism tests)."""

    actor_id: int
    steps: int
    episodes: int
    explore_rng_state: Tuple
    sample_rng_state: Tuple
    snapshot_version: int


@dataclass
class DistributedReport:
    """Wall-clock + pipeline health summary of one distributed run."""

    n_actors: int
    algo: str
    total_steps: int
    episodes: int
    wall_seconds: float
    train_updates: int
    broadcasts: int
    chunk_size: int
    broadcast_every: int
    broadcast_latency_s: List[float] = field(default_factory=list)
    staleness_steps: List[int] = field(default_factory=list)
    actor_steps_per_second: Dict[int, float] = field(default_factory=dict)
    clean_drain: bool = False
    priority_stats: Optional[Dict[str, float]] = None
    final_actor_stats: List[ActorFinalStats] = field(default_factory=list)

    @property
    def steps_per_second(self) -> float:
        return self.total_steps / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def mean_staleness(self) -> float:
        return (
            float(np.mean(self.staleness_steps))
            if self.staleness_steps else 0.0
        )

    @property
    def max_staleness(self) -> int:
        return max(self.staleness_steps) if self.staleness_steps else 0

    @property
    def mean_broadcast_latency_s(self) -> float:
        return (
            float(np.mean(self.broadcast_latency_s))
            if self.broadcast_latency_s else 0.0
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "n_actors": self.n_actors,
            "algo": self.algo,
            "total_steps": self.total_steps,
            "episodes": self.episodes,
            "wall_seconds": round(self.wall_seconds, 4),
            "steps_per_second": round(self.steps_per_second, 2),
            "train_updates": self.train_updates,
            "broadcasts": self.broadcasts,
            "chunk_size": self.chunk_size,
            "broadcast_every": self.broadcast_every,
            "mean_broadcast_latency_ms": round(
                1e3 * self.mean_broadcast_latency_s, 3
            ),
            "mean_staleness_steps": round(self.mean_staleness, 2),
            "max_staleness_steps": self.max_staleness,
            "actor_steps_per_second": {
                str(k): round(v, 2)
                for k, v in self.actor_steps_per_second.items()
            },
            "clean_drain": self.clean_drain,
            "priority_stats": self.priority_stats,
        }


def _actor_worker(conn, spec: ActorSpec) -> None:
    """Child-process loop: act against the pinned snapshot on command.

    Protocol (request/response; the parent never has more than one
    outstanding request per actor):

    * ``("load", path, version, global_steps)`` → ``("ok", version)``.
      Loads the ``.npz`` snapshot, pins it, and re-bases the ε schedule
      on the learner's global step count.
    * ``("rollout", n)`` → :class:`ActorChunk` of exactly ``n``
      transitions (episodes auto-reset; corpus resampled lazily exactly
      where the serial loop would draw).
    * ``("drain",)`` → :class:`ActorFinalStats`.
    * ``("close",)`` → exit.
    """
    # Imports kept inside the worker: the module must import cheaply in
    # the parent even when actors are never spawned.
    from ..core.environment import PhaseOrderingEnv, make_action_space
    from ..core.metrics import MetricsEngine
    from ..ir.parser import parse_module
    from .network import QNetwork
    from .ppo import PolicyValueNetwork, log_softmax

    action_space = make_action_space(spec.action_space_kind)
    engine = MetricsEngine(target=spec.target, enabled=spec.cache)
    modules = [(name, parse_module(text)) for name, text in spec.corpus]
    envs: Dict[str, PhaseOrderingEnv] = {}
    offset = ACTOR_SEED_STRIDE * spec.actor_id
    explore_rng = np.random.RandomState(spec.seed + 7 + offset)
    sample_rng = np.random.RandomState(spec.seed + 13 + offset)
    schedule = LinearSchedule(
        spec.epsilon_start, spec.epsilon_end, spec.epsilon_steps
    )
    is_ppo = spec.algo == "ppo"

    net = None
    version = -1
    eps_base = 0  # learner global steps at the pinned snapshot
    steps_since_load = 0
    local_steps = 0
    episodes_done = 0

    env: Optional[PhaseOrderingEnv] = None
    state: Optional[np.ndarray] = None
    need_reset = True
    ep_name = ""
    ep_reward = 0.0
    ep_actions: List[int] = []

    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "load":
                _, path, version, global_steps = msg
                net = (
                    PolicyValueNetwork.load(path)
                    if is_ppo
                    else QNetwork.load(path)
                )
                eps_base = int(global_steps)
                steps_since_load = 0
                conn.send(("ok", version))
            elif cmd == "rollout":
                n = int(msg[1])
                assert net is not None, "rollout before first weight load"
                t0 = time.perf_counter()
                states, acts, rewards = [], [], []
                next_states, dones = [], []
                logprobs: List[float] = []
                values: List[float] = []
                episodes: List[Tuple[str, float, int, List[int]]] = []
                for _ in range(n):
                    if need_reset:
                        ep_name, module = modules[
                            int(sample_rng.randint(len(modules)))
                        ]
                        env = envs.get(ep_name)
                        if env is None:
                            env = PhaseOrderingEnv(
                                module,
                                action_space,
                                target=spec.target,
                                weights=spec.weights,
                                episode_length=spec.episode_length,
                                metrics=engine,
                            )
                            envs[ep_name] = env
                        state = env.reset()
                        ep_reward = 0.0
                        ep_actions = []
                        need_reset = False
                    assert env is not None and state is not None
                    if is_ppo:
                        logits, value = net.predict(
                            np.asarray(state, dtype=np.float64)
                        )
                        logp = log_softmax(logits[None, :])[0]
                        probs = np.exp(logp)
                        u = explore_rng.random_sample()
                        action = int(
                            min(
                                np.searchsorted(np.cumsum(probs), u),
                                len(probs) - 1,
                            )
                        )
                        logprobs.append(float(logp[action]))
                        values.append(float(value))
                    else:
                        # Exactly the DQNAgent.act stream: one uniform
                        # draw, then a randint only when exploring.
                        eps = schedule.value(eps_base + steps_since_load)
                        if explore_rng.random_sample() < eps:
                            action = int(
                                explore_rng.randint(spec.num_actions)
                            )
                        else:
                            q = net.predict(state)
                            action = int(np.argmax(q))
                    next_state, reward, done, _info = env.step(action)
                    states.append(np.asarray(state, dtype=np.float64))
                    acts.append(action)
                    rewards.append(float(reward))
                    next_states.append(
                        np.asarray(next_state, dtype=np.float64)
                    )
                    dones.append(bool(done))
                    ep_reward += reward
                    ep_actions.append(action)
                    steps_since_load += 1
                    local_steps += 1
                    if done:
                        episodes.append(
                            (ep_name, ep_reward, env.last_size,
                             list(ep_actions))
                        )
                        episodes_done += 1
                        need_reset = True
                    else:
                        state = next_state
                conn.send(
                    ActorChunk(
                        states=np.stack(states),
                        actions=np.asarray(acts, dtype=np.int64),
                        rewards=np.asarray(rewards, dtype=np.float64),
                        next_states=np.stack(next_states),
                        dones=np.asarray(dones, dtype=bool),
                        logprobs=(
                            np.asarray(logprobs) if is_ppo else None
                        ),
                        values=np.asarray(values) if is_ppo else None,
                        episodes=episodes,
                        snapshot_version=version,
                        wall_seconds=time.perf_counter() - t0,
                    )
                )
            elif cmd == "drain":
                conn.send(
                    ActorFinalStats(
                        actor_id=spec.actor_id,
                        steps=local_steps,
                        episodes=episodes_done,
                        explore_rng_state=explore_rng.get_state(),
                        sample_rng_state=sample_rng.get_state(),
                        snapshot_version=version,
                    )
                )
            elif cmd == "close":
                return
    except (EOFError, KeyboardInterrupt):  # parent died / interrupted
        return
    finally:
        conn.close()


class ActorPool:
    """Owns the actor processes and their request/response pipes."""

    def __init__(self, specs: Sequence[ActorSpec]):
        ctx = mp.get_context()
        self._conns = []
        self._procs = []
        for spec in specs:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_actor_worker, args=(child_conn, spec), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self.n_actors = len(specs)
        self._closed = False

    def send_load(self, actor: int, path: str, version: int,
                  global_steps: int) -> None:
        self._conns[actor].send(("load", path, version, global_steps))
        reply = self._conns[actor].recv()
        if reply != ("ok", version):  # pragma: no cover - protocol guard
            raise RuntimeError(f"actor {actor} bad load ack: {reply!r}")

    def request_rollout(self, actor: int, n: int) -> None:
        self._conns[actor].send(("rollout", n))

    def recv_chunk(self, actor: int) -> ActorChunk:
        chunk = self._conns[actor].recv()
        if not isinstance(chunk, ActorChunk):  # pragma: no cover
            raise RuntimeError(f"actor {actor} bad chunk: {type(chunk)}")
        return chunk

    def drain(self) -> List[ActorFinalStats]:
        stats = []
        for conn in self._conns:
            conn.send(("drain",))
        for conn in self._conns:
            stats.append(conn.recv())
        return stats

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()

    def __enter__(self) -> "ActorPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SnapshotBroadcaster:
    """Writes versioned ``.npz`` weight snapshots and sends them to actors.

    Snapshots are written lazily: one file per learner version, shared by
    every actor that needs that version. ``save_fn(path)`` is whatever
    the agent uses to checkpoint (``QNetwork.save`` /
    ``PolicyValueNetwork.save``) — the broadcast rides the existing
    checkpoint format.
    """

    def __init__(self, pool: ActorPool, save_fn, directory: str):
        self._pool = pool
        self._save = save_fn
        self._dir = directory
        self.version = -1
        self._version_steps: Dict[int, int] = {}
        self._saved_for: Optional[int] = None
        self._path = ""
        self.broadcasts = 0
        self.latencies: List[float] = []

    def steps_at(self, version: int) -> int:
        return self._version_steps.get(version, 0)

    def _ensure_snapshot(self, global_steps: int) -> None:
        if self._saved_for == global_steps:
            return
        self.version += 1
        self._path = os.path.join(
            self._dir, f"snapshot-{self.version:06d}.npz"
        )
        self._save(self._path)
        self._version_steps[self.version] = global_steps
        self._saved_for = global_steps

    def broadcast(self, actor: int, global_steps: int) -> float:
        """Ship current weights to one actor; returns wall latency."""
        t0 = time.perf_counter()
        self._ensure_snapshot(global_steps)
        self._pool.send_load(actor, self._path, self.version, global_steps)
        latency = time.perf_counter() - t0
        self.broadcasts += 1
        self.latencies.append(latency)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_learner_broadcasts_total",
                "weight snapshots shipped to actors",
            ).inc()
            registry.histogram(
                "repro_learner_broadcast_latency_seconds",
                "save+send+ack latency of one weight broadcast",
                buckets=BROADCAST_LATENCY_BUCKETS,
            ).observe(latency)
        return latency


def run_actor_learner(
    agent,
    specs: Sequence[ActorSpec],
    total_steps: int,
    *,
    chunk_size: int,
    broadcast_every: int,
    algo: str,
    save_fn,
    on_episode=None,
    snapshot_dir: Optional[str] = None,
) -> DistributedReport:
    """Drive the actor pool until ``total_steps`` transitions are ingested.

    ``agent`` is the learner-side agent (DQN family or PPO); ``save_fn``
    checkpoints its current weights to a path. ``on_episode`` receives
    each finished ``(module, total_reward, final_size, actions)`` tuple
    in deterministic ingestion order.
    """
    if total_steps <= 0:
        raise ValueError("total_steps must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if broadcast_every <= 0:
        raise ValueError("broadcast_every must be positive")

    registry = get_registry()
    owns_dir = snapshot_dir is None
    directory = snapshot_dir or tempfile.mkdtemp(prefix="repro-actors-")
    report = DistributedReport(
        n_actors=len(specs),
        algo=algo,
        total_steps=0,
        episodes=0,
        wall_seconds=0.0,
        train_updates=0,
        broadcasts=0,
        chunk_size=chunk_size,
        broadcast_every=broadcast_every,
    )
    train_updates_before = agent.train_steps
    start = time.perf_counter()
    pool = ActorPool(specs)
    try:
        caster = SnapshotBroadcaster(pool, save_fn, directory)
        # Initial broadcast: every actor pins the starting weights.
        for actor in range(pool.n_actors):
            caster.broadcast(actor, global_steps=0)

        ingested = 0
        issued = 0
        chunks_since_broadcast = [0] * pool.n_actors
        outstanding: deque = deque()
        for actor in range(pool.n_actors):
            if issued < total_steps:
                pool.request_rollout(actor, chunk_size)
                outstanding.append(actor)
                issued += chunk_size

        while outstanding:
            actor = outstanding.popleft()
            chunk = pool.recv_chunk(actor)
            n = len(chunk.actions)
            staleness = ingested - caster.steps_at(chunk.snapshot_version)
            report.staleness_steps.append(staleness)
            if chunk.wall_seconds > 0:
                report.actor_steps_per_second[actor] = (
                    n / chunk.wall_seconds
                )
            if algo == "ppo":
                agent.ingest_rollout(
                    actor,
                    chunk.states, chunk.actions, chunk.rewards,
                    chunk.next_states, chunk.dones,
                    chunk.logprobs, chunk.values,
                )
            else:
                agent.remember_batch(
                    chunk.states, chunk.actions, chunk.rewards,
                    chunk.next_states, chunk.dones,
                )
            ingested += n
            if registry.enabled:
                registry.counter(
                    "repro_learner_ingested_transitions_total",
                    "actor transitions ingested by the learner",
                ).inc(n)
                registry.gauge(
                    "repro_learner_snapshot_staleness_steps",
                    "learner steps ingested since the snapshot the last "
                    "chunk was generated with",
                ).set(staleness)
                registry.gauge(
                    "repro_actor_steps_per_second",
                    "environment steps per second inside one actor",
                    labels={"actor": str(actor)},
                ).set(n / chunk.wall_seconds if chunk.wall_seconds else 0.0)
                registry.counter(
                    "repro_actor_chunks_total",
                    "rollout chunks received per actor",
                    labels={"actor": str(actor)},
                ).inc()
            for episode in chunk.episodes:
                report.episodes += 1
                if on_episode is not None:
                    on_episode(episode)
            chunks_since_broadcast[actor] += 1
            if chunks_since_broadcast[actor] >= broadcast_every:
                caster.broadcast(actor, global_steps=ingested)
                chunks_since_broadcast[actor] = 0
            if issued < total_steps:
                pool.request_rollout(actor, chunk_size)
                outstanding.append(actor)
                issued += chunk_size

        finals = pool.drain()
        report.clean_drain = len(finals) == len(specs) and all(
            isinstance(f, ActorFinalStats) for f in finals
        )
        report.final_actor_stats = finals
        report.total_steps = ingested
        report.broadcasts = caster.broadcasts
        report.broadcast_latency_s = caster.latencies
    finally:
        pool.close()
        if owns_dir:
            shutil.rmtree(directory, ignore_errors=True)
    report.wall_seconds = time.perf_counter() - start
    report.train_updates = agent.train_steps - train_updates_before
    memory = getattr(agent, "memory", None)
    if memory is not None and hasattr(memory, "priority_stats"):
        report.priority_stats = memory.priority_stats()
    if registry.enabled:
        registry.gauge(
            "repro_learner_steps_per_second",
            "ingested transitions per wall second of the last "
            "distributed run",
        ).set(report.steps_per_second)
    return report
