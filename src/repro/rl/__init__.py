"""Reinforcement-learning machinery: Q-networks, replay, DQN/PPO agents,
prioritized replay, and the distributed actor-learner pipeline."""

from .distributed import (
    ActorSpec,
    DistributedReport,
    run_actor_learner,
)
from .dqn import AgentConfig, DQNAgent, DoubleDQNAgent
from .network import DenseLayer, QNetwork, adam_step
from .ppo import PPOAgent, PPOConfig, PolicyValueNetwork, ppo_loss_and_grads
from .priority import PrioritizedReplayMemory, SumTree
from .replay import ReplayMemory, Transition
from .schedule import ExponentialSchedule, LinearSchedule, paper_epsilon_schedule

__all__ = [
    "ActorSpec",
    "AgentConfig",
    "DQNAgent",
    "DenseLayer",
    "DistributedReport",
    "DoubleDQNAgent",
    "ExponentialSchedule",
    "LinearSchedule",
    "PPOAgent",
    "PPOConfig",
    "PolicyValueNetwork",
    "PrioritizedReplayMemory",
    "QNetwork",
    "ReplayMemory",
    "SumTree",
    "Transition",
    "adam_step",
    "paper_epsilon_schedule",
    "ppo_loss_and_grads",
    "run_actor_learner",
]
