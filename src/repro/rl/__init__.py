"""Reinforcement-learning machinery: Q-networks, replay, DQN agents."""

from .dqn import AgentConfig, DQNAgent, DoubleDQNAgent
from .network import DenseLayer, QNetwork
from .replay import ReplayMemory, Transition
from .schedule import ExponentialSchedule, LinearSchedule, paper_epsilon_schedule

__all__ = [
    "AgentConfig",
    "DQNAgent",
    "DenseLayer",
    "DoubleDQNAgent",
    "ExponentialSchedule",
    "LinearSchedule",
    "QNetwork",
    "ReplayMemory",
    "Transition",
    "paper_epsilon_schedule",
]
