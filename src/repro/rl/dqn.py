"""DQN and Double DQN agents.

The paper uses Double DQN (Section II-B): the online network selects the
best next action, the target network evaluates it — curbing the Q-value
overestimation of vanilla DQN. Plain DQN is also provided for the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..observability import get_registry
from .network import QNetwork
from .priority import PrioritizedReplayMemory
from .replay import ReplayMemory
from .schedule import LinearSchedule, paper_epsilon_schedule


@dataclass
class AgentConfig:
    """Hyper-parameters (defaults follow the paper where it states them:
    lr 1e-4, ε 1.0→0.01 over 20k steps; the rest are standard choices)."""

    state_dim: int = 300
    num_actions: int = 34
    hidden: Sequence[int] = (128, 64)
    learning_rate: float = 1e-4
    gamma: float = 0.99
    batch_size: int = 32
    replay_capacity: int = 10_000
    min_replay: int = 64
    train_every: int = 4      # the paper's µ: train every µ steps
    target_sync_every: int = 256
    epsilon_start: float = 1.0
    epsilon_end: float = 0.01
    epsilon_steps: int = 20_000
    #: Rewards are scaled by this factor before entering the TD target —
    #: raw POSET-RL rewards reach ±10 (α=10 on size fractions), which would
    #: keep the Huber loss in its linear (slow) regime.
    reward_scale: float = 0.1
    #: Prioritized (sum-tree proportional) replay instead of uniform.
    #: Sampling follows |TD error|^alpha; importance-sampling weights use
    #: beta annealed beta_start → 1 over ``priority_beta_steps`` agent steps.
    prioritized_replay: bool = False
    priority_alpha: float = 0.6
    priority_beta_start: float = 0.4
    priority_beta_steps: int = 20_000
    seed: int = 0


class DQNAgent:
    """Vanilla DQN: the target network both selects and evaluates."""

    double = False

    def __init__(self, config: Optional[AgentConfig] = None):
        self.config = config or AgentConfig()
        c = self.config
        self.online = QNetwork(
            c.state_dim, c.num_actions, c.hidden, c.learning_rate, seed=c.seed
        )
        self.target = QNetwork(
            c.state_dim, c.num_actions, c.hidden, c.learning_rate, seed=c.seed + 1
        )
        self.target.copy_from(self.online)
        if c.prioritized_replay:
            self.memory: ReplayMemory = PrioritizedReplayMemory(
                c.replay_capacity,
                seed=c.seed,
                alpha=c.priority_alpha,
                beta=c.priority_beta_start,
            )
        else:
            self.memory = ReplayMemory(c.replay_capacity, seed=c.seed)
        self.epsilon_schedule = LinearSchedule(
            c.epsilon_start, c.epsilon_end, c.epsilon_steps
        )
        self.steps = 0
        self.train_steps = 0
        self.last_loss: Optional[float] = None
        self._rng = np.random.RandomState(c.seed + 7)

    # -- acting ---------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        return self.epsilon_schedule.value(self.steps)

    def act(self, state: np.ndarray, greedy: bool = False) -> int:
        """ε-greedy action (or pure greedy for evaluation)."""
        if not greedy and self._rng.random_sample() < self.epsilon:
            return int(self._rng.randint(self.config.num_actions))
        # ``predict`` normalizes dtype at its own boundary; no extra copy.
        q = self.online.predict(state)
        return int(np.argmax(q))

    def act_batch(self, states: np.ndarray, greedy: bool = False) -> np.ndarray:
        """ε-greedy actions for a whole ``(n, state_dim)`` batch.

        One ``QNetwork.predict`` forward serves every row. The per-row
        exploration draws happen in row order with exactly the calls
        :meth:`act` makes, so with ``n == 1`` the RNG stream — and
        therefore the chosen action sequence — is identical to calling
        :meth:`act` once per step.
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim != 2:
            raise ValueError(f"expected (n, state_dim) batch, got {states.shape}")
        n = states.shape[0]
        actions = np.empty(n, dtype=np.int64)
        explore = np.zeros(n, dtype=bool)
        if not greedy:
            eps = self.epsilon
            for i in range(n):
                if self._rng.random_sample() < eps:
                    explore[i] = True
                    actions[i] = int(self._rng.randint(self.config.num_actions))
        exploit = ~explore
        if exploit.any():
            q = self.online.predict(states)
            actions[exploit] = q.argmax(axis=1)[exploit]
        return actions

    def q_values(self, state: np.ndarray) -> np.ndarray:
        return self.online.predict(state)

    # -- learning ----------------------------------------------------------------
    def remember(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
    ) -> None:
        self.memory.push(
            state, action, reward * self.config.reward_scale, next_state, done
        )
        self._after_push()

    def remember_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
    ) -> None:
        """Store ``n`` transitions (rows), preserving serial semantics.

        Step counting, the ``train_every`` training cadence and target
        synchronization all remain *per transition*: a training update
        that serial :meth:`remember` would have run between two pushes
        still runs between them here, so ``n == 1`` batches reproduce
        the serial trajectory bit-for-bit and larger batches change
        nothing about when (or on what) the network trains.

        Insertion is still vectorized: updates and target syncs can only
        fire at ``train_every`` / ``target_sync_every`` step boundaries,
        so transitions are bulk-written with ``push_batch`` in chunks
        that end exactly on those boundaries — identical observable
        behavior, far fewer per-row Python round-trips.
        """
        c = self.config
        states = np.atleast_2d(np.asarray(states))
        next_states = np.atleast_2d(np.asarray(next_states))
        actions = np.asarray(actions)
        dones = np.asarray(dones)
        scaled = np.asarray(rewards, dtype=np.float64) * c.reward_scale
        n = len(actions)
        i = 0
        while i < n:
            remaining = n - i
            if len(self.memory) + remaining < c.min_replay:
                # No update can fire inside this batch; only sync
                # boundaries limit the chunk.
                to_train = remaining
            else:
                to_train = c.train_every - (self.steps % c.train_every)
            to_sync = c.target_sync_every - (self.steps % c.target_sync_every)
            chunk = min(remaining, to_train, to_sync)
            end = i + chunk
            self.memory.push_batch(
                states[i:end],
                actions[i:end],
                scaled[i:end],
                next_states[i:end],
                dones[i:end],
            )
            self.steps += chunk
            i = end
            if (
                len(self.memory) >= c.min_replay
                and self.steps % c.train_every == 0
            ):
                self.last_loss = self._train_step()
            if self.steps % c.target_sync_every == 0:
                self.target.copy_from(self.online)

    def _after_push(self) -> None:
        self.steps += 1
        c = self.config
        if len(self.memory) >= c.min_replay and self.steps % c.train_every == 0:
            self.last_loss = self._train_step()
        if self.steps % c.target_sync_every == 0:
            self.target.copy_from(self.online)

    def _next_q(self, next_states: np.ndarray) -> np.ndarray:
        target_q = self.target.predict(next_states)
        return target_q.max(axis=1)

    @property
    def priority_beta(self) -> float:
        """IS-correction exponent, annealed beta_start → 1 over training."""
        c = self.config
        frac = min(1.0, self.steps / max(1, c.priority_beta_steps))
        return c.priority_beta_start + (1.0 - c.priority_beta_start) * frac

    def _train_step(self) -> float:
        c = self.config
        if isinstance(self.memory, PrioritizedReplayMemory):
            batch, indices, weights = self.memory.sample_prioritized(
                c.batch_size, beta=self.priority_beta
            )
            states, actions, rewards, next_states, dones = batch
            next_value = self._next_q(next_states)
            targets = rewards + c.gamma * next_value * (~dones)
            self.train_steps += 1
            loss, td_errors = self.online.train_batch(
                states, actions, targets,
                sample_weights=weights, return_td_errors=True,
            )
            self.memory.update_priorities(indices, np.abs(td_errors))
        else:
            states, actions, rewards, next_states, dones = self.memory.sample(
                c.batch_size
            )
            next_value = self._next_q(next_states)
            targets = rewards + c.gamma * next_value * (~dones)
            self.train_steps += 1
            loss = self.online.train_batch(states, actions, targets)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_train_updates_total", "gradient updates"
            ).inc()
            registry.gauge(
                "repro_train_loss", "loss of the most recent update"
            ).set(loss)
            registry.gauge(
                "repro_train_epsilon", "current exploration rate"
            ).set(self.epsilon)
            registry.gauge(
                "repro_train_replay_size", "transitions in replay memory"
            ).set(len(self.memory))
            if isinstance(self.memory, PrioritizedReplayMemory):
                stats = self.memory.priority_stats()
                registry.gauge(
                    "repro_learner_replay_priority_mean",
                    "mean live replay priority mass",
                ).set(stats["mean"])
                registry.gauge(
                    "repro_learner_replay_priority_max",
                    "max live replay priority mass",
                ).set(stats["max"])
        return loss

    def train_from_replay(self, updates: int) -> List[float]:
        """Run up to ``updates`` gradient steps from the stored replay only.

        This is the offline fine-tune entry point: no environment steps,
        no exploration — just repeated sampling of whatever experience
        has been pushed into :attr:`memory` (e.g. journaled traffic
        trajectories). The target network is synchronized every
        ``target_sync_every / train_every`` updates so the sync-per-update
        ratio matches online training. Returns the losses of the updates
        actually run — empty when the buffer is below ``min_replay`` /
        ``batch_size``.
        """
        c = self.config
        needed = max(c.batch_size, c.min_replay)
        losses: List[float] = []
        if updates <= 0 or len(self.memory) < needed:
            return losses
        sync_every = max(1, c.target_sync_every // max(1, c.train_every))
        for i in range(updates):
            loss = self._train_step()
            self.last_loss = loss
            losses.append(loss)
            if (i + 1) % sync_every == 0:
                self.target.copy_from(self.online)
        return losses

    # -- persistence ------------------------------------------------------------
    def save(self, path: str, metadata: Optional[dict] = None) -> None:
        self.online.save(path, metadata=metadata)

    def load(self, path: str) -> None:
        net = QNetwork.load(path, self.config.hidden)
        self.online.copy_from(net)
        self.target.copy_from(net)


class DoubleDQNAgent(DQNAgent):
    """Double DQN: online net picks argmax, target net scores it."""

    double = True

    def _next_q(self, next_states: np.ndarray) -> np.ndarray:
        online_q = self.online.predict(next_states)
        best = online_q.argmax(axis=1)
        target_q = self.target.predict(next_states)
        return target_q[np.arange(len(best)), best]
