"""DQN and Double DQN agents.

The paper uses Double DQN (Section II-B): the online network selects the
best next action, the target network evaluates it — curbing the Q-value
overestimation of vanilla DQN. Plain DQN is also provided for the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .network import QNetwork
from .replay import ReplayMemory
from .schedule import LinearSchedule, paper_epsilon_schedule


@dataclass
class AgentConfig:
    """Hyper-parameters (defaults follow the paper where it states them:
    lr 1e-4, ε 1.0→0.01 over 20k steps; the rest are standard choices)."""

    state_dim: int = 300
    num_actions: int = 34
    hidden: Sequence[int] = (128, 64)
    learning_rate: float = 1e-4
    gamma: float = 0.99
    batch_size: int = 32
    replay_capacity: int = 10_000
    min_replay: int = 64
    train_every: int = 4      # the paper's µ: train every µ steps
    target_sync_every: int = 256
    epsilon_start: float = 1.0
    epsilon_end: float = 0.01
    epsilon_steps: int = 20_000
    #: Rewards are scaled by this factor before entering the TD target —
    #: raw POSET-RL rewards reach ±10 (α=10 on size fractions), which would
    #: keep the Huber loss in its linear (slow) regime.
    reward_scale: float = 0.1
    seed: int = 0


class DQNAgent:
    """Vanilla DQN: the target network both selects and evaluates."""

    double = False

    def __init__(self, config: Optional[AgentConfig] = None):
        self.config = config or AgentConfig()
        c = self.config
        self.online = QNetwork(
            c.state_dim, c.num_actions, c.hidden, c.learning_rate, seed=c.seed
        )
        self.target = QNetwork(
            c.state_dim, c.num_actions, c.hidden, c.learning_rate, seed=c.seed + 1
        )
        self.target.copy_from(self.online)
        self.memory = ReplayMemory(c.replay_capacity, seed=c.seed)
        self.epsilon_schedule = LinearSchedule(
            c.epsilon_start, c.epsilon_end, c.epsilon_steps
        )
        self.steps = 0
        self.train_steps = 0
        self.last_loss: Optional[float] = None
        self._rng = np.random.RandomState(c.seed + 7)

    # -- acting ---------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        return self.epsilon_schedule.value(self.steps)

    def act(self, state: np.ndarray, greedy: bool = False) -> int:
        """ε-greedy action (or pure greedy for evaluation)."""
        if not greedy and self._rng.random_sample() < self.epsilon:
            return int(self._rng.randint(self.config.num_actions))
        q = self.online.predict(np.asarray(state, dtype=np.float64))
        return int(np.argmax(q))

    def q_values(self, state: np.ndarray) -> np.ndarray:
        return self.online.predict(np.asarray(state, dtype=np.float64))

    # -- learning ----------------------------------------------------------------
    def remember(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
    ) -> None:
        self.memory.push(
            state, action, reward * self.config.reward_scale, next_state, done
        )
        self.steps += 1
        c = self.config
        if len(self.memory) >= c.min_replay and self.steps % c.train_every == 0:
            self.last_loss = self._train_step()
        if self.steps % c.target_sync_every == 0:
            self.target.copy_from(self.online)

    def _next_q(self, next_states: np.ndarray) -> np.ndarray:
        target_q = self.target.predict(next_states)
        return target_q.max(axis=1)

    def _train_step(self) -> float:
        c = self.config
        states, actions, rewards, next_states, dones = self.memory.sample(
            c.batch_size
        )
        next_value = self._next_q(next_states)
        targets = rewards + c.gamma * next_value * (~dones)
        self.train_steps += 1
        return self.online.train_batch(states, actions, targets)

    # -- persistence ------------------------------------------------------------
    def save(self, path: str) -> None:
        self.online.save(path)

    def load(self, path: str) -> None:
        net = QNetwork.load(path, self.config.hidden)
        self.online.copy_from(net)
        self.target.copy_from(net)


class DoubleDQNAgent(DQNAgent):
    """Double DQN: online net picks argmax, target net scores it."""

    double = True

    def _next_q(self, next_states: np.ndarray) -> np.ndarray:
        online_q = self.online.predict(next_states)
        best = online_q.argmax(axis=1)
        target_q = self.target.predict(next_states)
        return target_q[np.arange(len(best)), best]
