"""Experience replay memory.

Storage is a set of preallocated numpy ring arrays (states, actions,
rewards, next-states, done flags) rather than a Python list of
per-transition objects: pushes write rows in place, batches gather with
one fancy-index per array, and whole trajectories can be inserted at
once with :meth:`ReplayMemory.push_batch`. The public API — ``push`` /
``sample`` / ``len`` — and the uniform-sampling RNG stream are unchanged
from the original list-backed implementation, so a fixed seed draws the
same indices (and therefore bit-identical batches) as before.

:class:`Transition` is kept as a compatibility view type:
``memory[i]`` materializes the ``i``-th oldest stored transition.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class Transition:
    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool


class ReplayMemory:
    """Fixed-capacity ring buffer of transitions with uniform sampling.

    Arrays are allocated lazily on the first push (the state dimension is
    not known earlier); every later transition must share that shape.
    """

    def __init__(self, capacity: int = 10_000, seed: int = 0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._write = 0
        self._size = 0
        self._rng = np.random.RandomState(seed)
        self._states: Optional[np.ndarray] = None
        self._actions: Optional[np.ndarray] = None
        self._rewards: Optional[np.ndarray] = None
        self._next_states: Optional[np.ndarray] = None
        self._dones: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self._size

    @property
    def state_dim(self) -> Optional[int]:
        """Flattened state width, or ``None`` before the first push."""
        return None if self._states is None else self._states.shape[1]

    def _allocate(self, state: np.ndarray) -> None:
        width = int(np.asarray(state).size)
        self._states = np.zeros((self.capacity, width), dtype=np.float32)
        self._next_states = np.zeros((self.capacity, width), dtype=np.float32)
        self._actions = np.zeros(self.capacity, dtype=np.int64)
        self._rewards = np.zeros(self.capacity, dtype=np.float64)
        self._dones = np.zeros(self.capacity, dtype=bool)

    def push(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
    ) -> None:
        if self._states is None:
            self._allocate(np.asarray(state))
        assert self._states is not None
        i = self._write
        self._states[i] = np.asarray(state, dtype=np.float32).ravel()
        self._actions[i] = int(action)
        self._rewards[i] = float(reward)
        self._next_states[i] = np.asarray(next_state, dtype=np.float32).ravel()
        self._dones[i] = bool(done)
        self._write = (self._write + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def push_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
    ) -> None:
        """Insert ``n`` transitions at once (rows of the given arrays).

        Equivalent to ``n`` sequential pushes — including ring wraparound
        order — but writes each array with at most two slice assignments.
        """
        states = np.asarray(states, dtype=np.float32)
        n = states.shape[0]
        if n == 0:
            return
        if n > self.capacity:
            # Only the last ``capacity`` transitions survive n pushes.
            self.push_batch(
                states[-self.capacity:],
                np.asarray(actions)[-self.capacity:],
                np.asarray(rewards)[-self.capacity:],
                np.asarray(next_states)[-self.capacity:],
                np.asarray(dones)[-self.capacity:],
            )
            return
        if self._states is None:
            self._allocate(states[0])
        assert self._states is not None
        next_states = np.asarray(next_states, dtype=np.float32)
        actions = np.asarray(actions, dtype=np.int64).ravel()
        rewards = np.asarray(rewards, dtype=np.float64).ravel()
        dones = np.asarray(dones, dtype=bool).ravel()

        first = min(n, self.capacity - self._write)
        rest = n - first
        dest = slice(self._write, self._write + first)
        self._states[dest] = states[:first].reshape(first, -1)
        self._next_states[dest] = next_states[:first].reshape(first, -1)
        self._actions[dest] = actions[:first]
        self._rewards[dest] = rewards[:first]
        self._dones[dest] = dones[:first]
        if rest:
            self._states[:rest] = states[first:].reshape(rest, -1)
            self._next_states[:rest] = next_states[first:].reshape(rest, -1)
            self._actions[:rest] = actions[first:]
            self._rewards[:rest] = rewards[first:]
            self._dones[:rest] = dones[first:]
        self._write = (self._write + n) % self.capacity
        self._size = min(self._size + n, self.capacity)

    def sample(
        self, batch_size: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Uniform batch as stacked arrays (s, a, r, s', done).

        Every invalid request — non-positive ``batch_size``, an empty
        buffer, or more rows than are stored — raises *before* the
        sampling RNG is touched: a failed call never advances the index
        stream, so retrying after more pushes draws exactly what an
        error-free run would have drawn (the bit-identical training
        guarantee depends on this alignment).
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if batch_size > self._size:
            raise ValueError("not enough transitions to sample")
        assert self._states is not None
        indices = self._rng.randint(0, self._size, size=batch_size)
        return (
            self._states[indices],
            self._actions[indices],
            self._rewards[indices],
            self._next_states[indices],
            self._dones[indices],
        )

    def save(self, path: str) -> None:
        """Snapshot the full ring (arrays, indices, RNG state) to ``path``.

        The snapshot is written atomically (tmp file + rename) so a crash
        mid-save never leaves a truncated ``.npz`` behind. An empty,
        not-yet-allocated memory is also saveable.
        """
        rng_kind, rng_keys, rng_pos, rng_has_gauss, rng_cached = (
            self._rng.get_state()
        )
        payload = {
            "meta": np.array([self.capacity, self._write, self._size], dtype=np.int64),
            "rng_kind": np.array(rng_kind),
            "rng_keys": np.asarray(rng_keys),
            "rng_pos": np.array(rng_pos, dtype=np.int64),
            "rng_has_gauss": np.array(rng_has_gauss, dtype=np.int64),
            "rng_cached": np.array(rng_cached, dtype=np.float64),
        }
        if self._states is not None:
            payload.update(
                states=self._states,
                actions=self._actions,
                rewards=self._rewards,
                next_states=self._next_states,
                dones=self._dones,
            )
        payload.update(self._extra_payload())
        tmp = f"{path}.tmp-{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str) -> "ReplayMemory":
        """Restore a memory saved by :meth:`save`.

        The restored instance continues the exact RNG stream of the saved
        one: a ``sample`` after load draws the same indices the original
        would have drawn next.
        """
        with np.load(path, allow_pickle=False) as data:
            capacity, write, size = (int(v) for v in data["meta"])
            memory = cls(capacity=capacity)
            memory._write = write
            memory._size = size
            memory._rng.set_state(
                (
                    str(data["rng_kind"]),
                    data["rng_keys"].copy(),
                    int(data["rng_pos"]),
                    int(data["rng_has_gauss"]),
                    float(data["rng_cached"]),
                )
            )
            if "states" in data:
                memory._states = data["states"].astype(np.float32, copy=True)
                memory._next_states = data["next_states"].astype(
                    np.float32, copy=True
                )
                memory._actions = data["actions"].astype(np.int64, copy=True)
                memory._rewards = data["rewards"].astype(np.float64, copy=True)
                memory._dones = data["dones"].astype(bool, copy=True)
            memory._restore_extra(data)
        return memory

    def _extra_payload(self) -> dict:
        """Subclass hook: extra arrays to embed in :meth:`save` snapshots."""
        return {}

    def _restore_extra(self, data) -> None:
        """Subclass hook: restore :meth:`_extra_payload` state on load."""

    def __getitem__(self, index: int) -> Transition:
        """The ``index``-th oldest transition as a :class:`Transition`."""
        if not (0 <= index < self._size):
            raise IndexError(f"transition {index} out of range")
        assert self._states is not None
        i = (self._write - self._size + index) % self.capacity
        return Transition(
            state=self._states[i].copy(),
            action=int(self._actions[i]),
            reward=float(self._rewards[i]),
            next_state=self._next_states[i].copy(),
            done=bool(self._dones[i]),
        )
