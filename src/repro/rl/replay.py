"""Experience replay memory."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class Transition:
    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool


class ReplayMemory:
    """Fixed-capacity ring buffer of transitions with uniform sampling."""

    def __init__(self, capacity: int = 10_000, seed: int = 0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: List[Optional[Transition]] = [None] * capacity
        self._write = 0
        self._size = 0
        self._rng = np.random.RandomState(seed)

    def __len__(self) -> int:
        return self._size

    def push(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
    ) -> None:
        self._items[self._write] = Transition(
            np.asarray(state, dtype=np.float32),
            int(action),
            float(reward),
            np.asarray(next_state, dtype=np.float32),
            bool(done),
        )
        self._write = (self._write + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(
        self, batch_size: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Uniform batch as stacked arrays (s, a, r, s', done)."""
        if batch_size > self._size:
            raise ValueError("not enough transitions to sample")
        indices = self._rng.randint(0, self._size, size=batch_size)
        batch = [self._items[i] for i in indices]
        states = np.stack([t.state for t in batch])  # type: ignore[union-attr]
        actions = np.array([t.action for t in batch], dtype=np.int64)  # type: ignore[union-attr]
        rewards = np.array([t.reward for t in batch], dtype=np.float64)  # type: ignore[union-attr]
        next_states = np.stack([t.next_state for t in batch])  # type: ignore[union-attr]
        dones = np.array([t.done for t in batch], dtype=bool)  # type: ignore[union-attr]
        return states, actions, rewards, next_states, dones
