"""Exploration schedules.

The paper anneals epsilon from 1.0 to 0.01 over 20 000 timesteps
(Section V-A); :data:`PAPER_EPSILON` is that schedule.
"""

from __future__ import annotations


class LinearSchedule:
    """Linearly interpolate from ``start`` to ``end`` over ``steps``."""

    def __init__(self, start: float, end: float, steps: int):
        if steps <= 0:
            raise ValueError("steps must be positive")
        self.start = start
        self.end = end
        self.steps = steps

    def value(self, step: int) -> float:
        if step <= 0:
            return self.start
        if step >= self.steps:
            return self.end
        frac = step / self.steps
        return self.start + frac * (self.end - self.start)


class ExponentialSchedule:
    """Multiplicative decay with a floor."""

    def __init__(self, start: float, end: float, decay: float):
        if not (0.0 < decay < 1.0):
            raise ValueError("decay must be in (0, 1)")
        self.start = start
        self.end = end
        self.decay = decay

    def value(self, step: int) -> float:
        return max(self.end, self.start * (self.decay ** max(step, 0)))


def paper_epsilon_schedule() -> LinearSchedule:
    """ε: 1.0 → 0.01 over 20 000 timesteps, as in the paper."""
    return LinearSchedule(1.0, 0.01, 20_000)
