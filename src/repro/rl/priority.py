"""Prioritized experience replay: a sum-tree index over the replay ring.

:class:`SumTree` is a flat-array binary indexed tree holding one
priority per replay slot; internal nodes cache subtree sums so both
priority updates and prefix-sum (categorical) sampling are
``O(log capacity)``. :class:`PrioritizedReplayMemory` extends the
preallocated numpy :class:`~repro.rl.replay.ReplayMemory` ring with that
index, implementing proportional prioritized sampling (Schaul et al.):
new transitions enter at the current maximum priority, batches are drawn
by stratified prefix-sum descent, importance-sampling weights correct
the induced bias, and TD errors feed back via
:meth:`PrioritizedReplayMemory.update_priorities`.

Priorities are clamped to a strictly positive floor before the
``alpha`` exponent is applied — a zero TD error therefore never makes a
transition unsampleable, and the tree total never collapses to zero
while transitions are stored.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .replay import ReplayMemory


class SumTree:
    """Fixed-capacity sum tree over leaf values ``0..capacity-1``.

    Leaves live in one contiguous block of a ``2 * pow2(capacity)``
    array (1-indexed heap layout); every internal node stores the sum of
    its two children, so ``tree[1]`` is the total mass and a prefix-sum
    query descends one level per iteration.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        size = 1
        while size < capacity:
            size *= 2
        self._leaf_base = size
        self._tree = np.zeros(2 * size, dtype=np.float64)

    @property
    def total(self) -> float:
        return float(self._tree[1])

    def value(self, indices) -> np.ndarray:
        """Leaf values at ``indices`` (vectorized)."""
        return self._tree[self._leaf_base + np.asarray(indices, dtype=np.int64)]

    @property
    def values(self) -> np.ndarray:
        """Read-only view of all leaf values (length ``capacity``)."""
        out = self._tree[self._leaf_base:self._leaf_base + self.capacity]
        out = out.view()
        out.flags.writeable = False
        return out

    def set(self, indices, values) -> None:
        """Assign leaf values and repair every affected ancestor sum.

        Duplicate indices keep the *last* value, matching sequential
        assignment semantics.
        """
        indices = np.asarray(indices, dtype=np.int64).ravel()
        values = np.broadcast_to(
            np.asarray(values, dtype=np.float64).ravel(), indices.shape
        )
        if indices.size == 0:
            return
        if indices.min() < 0 or indices.max() >= self.capacity:
            raise IndexError("leaf index out of range")
        nodes = self._leaf_base + indices
        self._tree[nodes] = values
        parents = np.unique(nodes // 2)
        while parents[0] >= 1:
            self._tree[parents] = (
                self._tree[2 * parents] + self._tree[2 * parents + 1]
            )
            if parents[0] == 1:
                break
            parents = np.unique(parents // 2)

    def find_prefix(self, masses) -> np.ndarray:
        """Leaf indices whose cumulative-sum interval contains ``masses``.

        Equivalent to ``searchsorted(cumsum(values), mass, side='right')``
        for masses in ``[0, total)``, computed by descending the tree.
        """
        masses = np.array(masses, dtype=np.float64).ravel()
        nodes = np.ones(masses.shape, dtype=np.int64)
        while nodes[0] < self._leaf_base:
            left = 2 * nodes
            left_sum = self._tree[left]
            go_right = masses >= left_sum
            masses = np.where(go_right, masses - left_sum, masses)
            nodes = np.where(go_right, left + 1, left)
        return np.minimum(nodes - self._leaf_base, self.capacity - 1)

    # -- persistence --------------------------------------------------------
    def state(self) -> np.ndarray:
        """The leaf array — sufficient to rebuild the tree exactly."""
        return self._tree[self._leaf_base:self._leaf_base + self.capacity].copy()

    def restore(self, leaves: np.ndarray) -> None:
        leaves = np.asarray(leaves, dtype=np.float64)
        if leaves.shape != (self.capacity,):
            raise ValueError(
                f"expected {self.capacity} leaves, got {leaves.shape}"
            )
        self.set(np.arange(self.capacity), leaves)


class PrioritizedReplayMemory(ReplayMemory):
    """Replay ring with proportional prioritized sampling.

    The uniform :meth:`~repro.rl.replay.ReplayMemory.sample` API is
    inherited unchanged (and keeps its own RNG stream semantics);
    prioritized consumers call :meth:`sample_prioritized`, which returns
    the batch together with the sampled ring indices and normalized
    importance-sampling weights, then report TD errors back through
    :meth:`update_priorities`.
    """

    def __init__(
        self,
        capacity: int = 10_000,
        seed: int = 0,
        *,
        alpha: float = 0.6,
        beta: float = 0.4,
        min_priority: float = 1e-3,
    ):
        super().__init__(capacity, seed=seed)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if min_priority <= 0.0:
            raise ValueError("min_priority must be strictly positive")
        self.alpha = alpha
        self.beta = beta
        self.min_priority = min_priority
        self.tree = SumTree(capacity)
        self._max_priority = 1.0

    # -- writes -------------------------------------------------------------
    def _clamped_mass(self, priorities) -> np.ndarray:
        clamped = np.maximum(
            np.asarray(priorities, dtype=np.float64), self.min_priority
        )
        return clamped ** self.alpha

    def push(self, state, action, reward, next_state, done) -> None:
        slot = self._write
        super().push(state, action, reward, next_state, done)
        self.tree.set([slot], self._clamped_mass([self._max_priority]))

    def push_batch(self, states, actions, rewards, next_states, dones) -> None:
        states = np.asarray(states, dtype=np.float32)
        n = states.shape[0]
        if n == 0:
            return
        if n > self.capacity:
            # Mirror the base truncation before touching the tree so the
            # recursive call sees an insertable batch.
            super().push_batch(states, actions, rewards, next_states, dones)
            self.tree.set(
                np.arange(self.capacity),
                self._clamped_mass(
                    np.full(self.capacity, self._max_priority)
                ),
            )
            return
        slots = (self._write + np.arange(n)) % self.capacity
        super().push_batch(states, actions, rewards, next_states, dones)
        self.tree.set(slots, self._clamped_mass(np.full(n, self._max_priority)))

    # -- prioritized reads ----------------------------------------------------
    def sample_prioritized(
        self, batch_size: int, beta: Optional[float] = None
    ) -> Tuple[
        Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        np.ndarray,
        np.ndarray,
    ]:
        """Stratified proportional batch: ``(batch, indices, is_weights)``.

        One uniform draw per batch row (a single vectorized RNG call)
        positions each sample inside its equal-mass segment of the total
        priority, so high-priority transitions are drawn proportionally
        often while coverage stays spread over the mass. Weights are
        ``(N * P(i))^-beta`` normalized by the batch maximum.

        The empty/underfull guard runs *before* the RNG is touched — a
        failed call never advances the sampling stream (the bit-identical
        serial-equivalence guarantee depends on this).
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if batch_size > self._size:
            raise ValueError("not enough transitions to sample")
        assert self._states is not None
        beta = self.beta if beta is None else beta
        total = self.tree.total
        segment = total / batch_size
        offsets = self._rng.random_sample(batch_size)
        masses = (np.arange(batch_size) + offsets) * segment
        indices = self.tree.find_prefix(masses)
        # Float descent can only land on an unwritten (zero-mass) slot at
        # the very edge of the distribution; clamp into the stored region.
        indices = np.minimum(indices, self._size - 1)
        probs = self.tree.value(indices) / total
        weights = (self._size * probs) ** (-beta)
        weights = weights / weights.max()
        batch = (
            self._states[indices],
            self._actions[indices],
            self._rewards[indices],
            self._next_states[indices],
            self._dones[indices],
        )
        return batch, indices, weights

    def update_priorities(self, indices, priorities) -> None:
        """Set new (TD-error magnitude) priorities for sampled slots."""
        priorities = np.abs(np.asarray(priorities, dtype=np.float64)).ravel()
        if priorities.size:
            self._max_priority = max(
                self._max_priority, float(priorities.max())
            )
        self.tree.set(indices, self._clamped_mass(priorities))

    def priority_stats(self) -> dict:
        """Summary of the live priority mass (for observability export)."""
        if self._size == 0:
            return {"total": 0.0, "mean": 0.0, "max": 0.0}
        live = self.tree.values[: self._size] if self._size < self.capacity \
            else self.tree.values
        return {
            "total": float(self.tree.total),
            "mean": float(live.mean()),
            "max": float(live.max()),
        }

    # -- persistence ----------------------------------------------------------
    def _extra_payload(self) -> dict:
        return {
            "priorities": self.tree.state(),
            "priority_meta": np.array(
                [self.alpha, self.beta, self.min_priority, self._max_priority],
                dtype=np.float64,
            ),
        }

    def _restore_extra(self, data) -> None:
        if "priority_meta" in getattr(data, "files", data):
            alpha, beta, min_priority, max_priority = (
                float(v) for v in data["priority_meta"]
            )
            self.alpha = alpha
            self.beta = beta
            self.min_priority = min_priority
            self._max_priority = max_priority
            self.tree.restore(data["priorities"])
        elif self._size:
            # Snapshot written by a plain ReplayMemory: every stored
            # transition re-enters at the (default) max priority.
            slots = np.arange(min(self._size, self.capacity))
            self.tree.set(
                slots, self._clamped_mass(np.full(len(slots), self._max_priority))
            )
