"""PPO agent: analytic gradients vs finite differences, GAE shape,
agent behavior behind the DQN-compatible facade interface."""

import numpy as np
import pytest

from repro.rl import PPOAgent, PPOConfig, PolicyValueNetwork, ppo_loss_and_grads
from repro.rl.ppo import log_softmax


def _small_net(seed=0):
    return PolicyValueNetwork(6, 4, hidden=(8, 5), seed=seed)


def _batch(net, n=12, seed=1):
    rng = np.random.RandomState(seed)
    states = rng.standard_normal((n, net.state_dim))
    actions = rng.randint(net.num_actions, size=n)
    logits, _ = net.predict(states)
    logp = log_softmax(logits)
    # Perturb old logprobs so ratios leave 1.0 and both clip branches
    # appear in the batch.
    old_logprobs = logp[np.arange(n), actions] + rng.uniform(-0.4, 0.4, n)
    advantages = rng.standard_normal(n)
    returns = rng.standard_normal(n)
    return states, actions, old_logprobs, advantages, returns


class TestLossGradients:
    def test_matches_finite_differences(self):
        """Analytic (grad_w, grad_b) match central finite differences of
        the scalar loss at sampled coordinates of every layer."""
        net = _small_net()
        data = _batch(net)
        kwargs = dict(clip_ratio=0.2, value_coef=0.5, entropy_coef=0.01)

        def loss_only():
            loss, _, _ = ppo_loss_and_grads(net, *data, **kwargs)
            return loss

        _, _, grads = ppo_loss_and_grads(net, *data, **kwargs)
        rng = np.random.RandomState(7)
        eps = 1e-6
        for layer, (grad_w, grad_b) in zip(net.layers, grads):
            for param, grad in ((layer.weight, grad_w), (layer.bias, grad_b)):
                flat = param.ravel()
                for idx in rng.choice(flat.size, size=min(6, flat.size),
                                      replace=False):
                    orig = flat[idx]
                    flat[idx] = orig + eps
                    up = loss_only()
                    flat[idx] = orig - eps
                    down = loss_only()
                    flat[idx] = orig
                    numeric = (up - down) / (2 * eps)
                    assert grad.ravel()[idx] == pytest.approx(
                        numeric, rel=1e-4, abs=1e-7
                    )

    def test_loss_is_pure(self):
        """Two calls on the same inputs return identical loss and grads
        and leave the network weights untouched."""
        net = _small_net()
        before = net.get_weights()
        data = _batch(net)
        l1, s1, g1 = ppo_loss_and_grads(net, *data)
        l2, _, g2 = ppo_loss_and_grads(net, *data)
        assert l1 == l2
        for (wa, ba), (wb, bb) in zip(g1, g2):
            assert np.array_equal(wa, wb) and np.array_equal(ba, bb)
        for a, b in zip(before, net.get_weights()):
            assert np.array_equal(a, b)
        assert set(s1) >= {"policy_loss", "value_loss", "entropy"}

    def test_clipping_flattens_out_of_band_gradient(self):
        """A positive-advantage row pushed far above 1+ε contributes no
        policy gradient (the min selects the flat clipped branch)."""
        net = _small_net()
        n = 1
        rng = np.random.RandomState(3)
        states = rng.standard_normal((n, net.state_dim))
        actions = np.array([2])
        logits, _ = net.predict(states)
        logp = log_softmax(logits)
        # old_logprob far below the current logprob → ratio >> 1+ε.
        old_logprobs = logp[np.arange(n), actions] - 2.0
        advantages = np.array([1.5])
        returns = np.zeros(n)
        _, stats, grads = ppo_loss_and_grads(
            net, states, actions, old_logprobs, advantages, returns,
            value_coef=0.0, entropy_coef=0.0,
        )
        assert stats["mean_ratio"] > 1.2
        for grad_w, grad_b in grads:
            assert np.allclose(grad_w, 0.0) and np.allclose(grad_b, 0.0)


class TestPolicyValueNetwork:
    def test_save_load_roundtrip(self, tmp_path):
        net = _small_net(seed=4)
        path = str(tmp_path / "pv.npz")
        net.save(path, metadata={"algo": "ppo"})
        restored = PolicyValueNetwork.load(path)
        for a, b in zip(net.get_weights(), restored.get_weights()):
            assert np.array_equal(a, b)
        states = np.random.RandomState(0).standard_normal((3, net.state_dim))
        la, va = net.predict(states)
        lb, vb = restored.predict(states)
        assert np.array_equal(la, lb) and np.array_equal(va, vb)

    def test_rejects_qnetwork_checkpoint(self, tmp_path):
        from repro.rl import QNetwork

        path = str(tmp_path / "q.npz")
        QNetwork(6, 4, (8,), 1e-3, seed=0).save(path)
        with pytest.raises(ValueError):
            PolicyValueNetwork.load(path)


class TestPPOAgent:
    def _agent(self, horizon=32, seed=0):
        return PPOAgent(PPOConfig(
            state_dim=6, num_actions=4, hidden=(8, 5), horizon=horizon,
            minibatch_size=8, epochs=2, seed=seed,
        ))

    def _roll(self, agent, steps, lane_width=2, seed=5, episode_len=4):
        rng = np.random.RandomState(seed)
        states = rng.standard_normal((lane_width, 6))
        t = 0
        while t < steps:
            actions = agent.act_batch(states)
            next_states = rng.standard_normal((lane_width, 6))
            rewards = rng.standard_normal(lane_width)
            dones = np.array(
                [(t // lane_width) % episode_len == episode_len - 1]
                * lane_width
            )
            agent.remember_batch(states, actions, rewards, next_states, dones)
            states = next_states
            t += lane_width

    def test_update_fires_at_horizon_and_clears_buffers(self):
        agent = self._agent(horizon=16)
        self._roll(agent, 16)
        assert agent.updates == 1
        assert agent.train_steps > 0
        assert agent._stored == 0
        assert agent.last_loss is not None

    def test_flush_trains_on_subhorizon_tail(self):
        agent = self._agent(horizon=1000)
        self._roll(agent, 12)
        assert agent.updates == 0
        loss = agent.flush()
        assert loss is not None and agent.updates == 1
        assert agent.flush() is None  # nothing buffered → no-op

    def test_deterministic_for_fixed_seed(self):
        runs = []
        for _ in range(2):
            agent = self._agent(horizon=16, seed=9)
            self._roll(agent, 32, seed=2)
            runs.append(agent.net.get_weights())
        for a, b in zip(*runs):
            assert np.array_equal(a, b)

    def test_greedy_act_is_argmax_and_draws_no_rng(self):
        agent = self._agent()
        state = np.random.RandomState(1).standard_normal(6)
        before = agent._rng.get_state()
        action = agent.act(state, greedy=True)
        after = agent._rng.get_state()
        assert np.array_equal(before[1], after[1]) and before[2] == after[2]
        assert action == int(np.argmax(agent.q_values(state)))

    def test_ingest_rollout_matches_online_storage(self):
        """Distributed ingest with explicit (logprob, value) stores the
        same rows the online remember path would."""
        agent = self._agent(horizon=1000)
        rng = np.random.RandomState(8)
        states = rng.standard_normal((5, 6))
        next_states = rng.standard_normal((5, 6))
        actions = rng.randint(4, size=5)
        rewards = rng.standard_normal(5)
        dones = np.zeros(5, dtype=bool)
        logprobs = rng.uniform(-2, -0.1, 5)
        values = rng.standard_normal(5)
        agent.ingest_rollout(3, states, actions, rewards, next_states,
                             dones, logprobs, values)
        buf = agent._lanes[3]
        assert len(buf) == 5
        assert np.allclose(buf.logprobs, logprobs)
        assert np.allclose(buf.values, values)
        assert agent._stored == 5

    def test_epsilon_is_zero(self):
        assert self._agent().epsilon == 0.0
