"""Array-backed replay memory vs the original list-of-objects design.

The reference implementation below is the seed repo's list-backed ring
buffer, kept verbatim so the tests can assert that the numpy rewrite
reproduces it exactly: same sampling RNG stream (hence bit-identical
batches for a fixed seed), same wraparound semantics, same dtypes.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.rl import ReplayMemory, Transition


@dataclass
class _RefTransition:
    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool


class _ListReplayMemory:
    """The pre-vectorization implementation, used as the oracle."""

    def __init__(self, capacity=10_000, seed=0):
        self.capacity = capacity
        self._items = [None] * capacity
        self._write = 0
        self._size = 0
        self._rng = np.random.RandomState(seed)

    def __len__(self):
        return self._size

    def push(self, state, action, reward, next_state, done):
        self._items[self._write] = _RefTransition(
            np.asarray(state, dtype=np.float32),
            int(action),
            float(reward),
            np.asarray(next_state, dtype=np.float32),
            bool(done),
        )
        self._write = (self._write + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size):
        indices = self._rng.randint(0, self._size, size=batch_size)
        batch = [self._items[i] for i in indices]
        return (
            np.stack([t.state for t in batch]),
            np.array([t.action for t in batch], dtype=np.int64),
            np.array([t.reward for t in batch], dtype=np.float64),
            np.stack([t.next_state for t in batch]),
            np.array([t.done for t in batch], dtype=bool),
        )


def _random_transitions(n, dim=6, seed=0):
    rng = np.random.RandomState(seed)
    for i in range(n):
        yield (
            rng.standard_normal(dim),
            int(rng.randint(0, 5)),
            float(rng.standard_normal()),
            rng.standard_normal(dim),
            bool(rng.randint(0, 2)),
        )


class TestArrayReplayMatchesReference:
    @pytest.mark.parametrize("pushes", [10, 32, 50])
    def test_sampling_bit_identical(self, pushes):
        """Same seed, same pushes → byte-identical sample batches,
        including after the ring has wrapped (capacity 32)."""
        new = ReplayMemory(capacity=32, seed=9)
        ref = _ListReplayMemory(capacity=32, seed=9)
        for t in _random_transitions(pushes, seed=3):
            new.push(*t)
            ref.push(*t)
        assert len(new) == len(ref)
        for _ in range(5):
            got = new.sample(8)
            want = ref.sample(8)
            for g, w in zip(got, want):
                assert g.dtype == w.dtype
                assert np.array_equal(g, w)

    def test_wraparound_keeps_last_capacity(self):
        mem = ReplayMemory(capacity=4)
        for i in range(10):
            mem.push(np.full(2, i), i % 2, float(i), np.ones(2), False)
        assert len(mem) == 4
        survivors = sorted(mem[i].reward for i in range(4))
        assert survivors == [6.0, 7.0, 8.0, 9.0]

    def test_sampling_distribution_uniform(self):
        """Every stored slot is sampled at the uniform rate (χ² check on
        a large draw, same tolerance the old implementation satisfied)."""
        mem = ReplayMemory(capacity=16, seed=123)
        for i in range(16):
            mem.push(np.full(1, i), 0, float(i), np.zeros(1), False)
        rounds, batch = 1000, 16
        counts = np.zeros(16, dtype=np.int64)
        for _ in range(rounds):
            _, _, rewards, _, _ = mem.sample(batch)
            counts += np.bincount(rewards.astype(int), minlength=16)
        draws = rounds * batch
        expected = draws / 16
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 15 dof: P(chi2 > 37.7) ≈ 0.001
        assert chi2 < 37.7, counts


class TestPushBatch:
    def test_equivalent_to_sequential_pushes(self):
        batch_mem = ReplayMemory(capacity=32, seed=1)
        seq_mem = ReplayMemory(capacity=32, seed=1)
        data = list(_random_transitions(20, seed=7))
        for t in data:
            seq_mem.push(*t)
        states, actions, rewards, next_states, dones = map(
            np.array, zip(*data)
        )
        batch_mem.push_batch(states, actions, rewards, next_states, dones)
        assert len(batch_mem) == len(seq_mem)
        got = batch_mem.sample(16)
        want = seq_mem.sample(16)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_wraparound_split_write(self):
        """A batch crossing the ring boundary lands like n pushes."""
        batch_mem = ReplayMemory(capacity=8, seed=2)
        seq_mem = ReplayMemory(capacity=8, seed=2)
        first = list(_random_transitions(6, seed=11))
        second = list(_random_transitions(5, seed=12))
        for t in first:
            batch_mem.push(*t)
            seq_mem.push(*t)
        for t in second:
            seq_mem.push(*t)
        states, actions, rewards, next_states, dones = map(
            np.array, zip(*second)
        )
        batch_mem.push_batch(states, actions, rewards, next_states, dones)
        for i in range(len(seq_mem)):
            assert np.array_equal(batch_mem[i].state, seq_mem[i].state)
            assert batch_mem[i].reward == seq_mem[i].reward

    def test_oversized_batch_keeps_tail(self):
        mem = ReplayMemory(capacity=4)
        n = 11
        states = np.arange(n, dtype=np.float64).reshape(n, 1)
        mem.push_batch(
            states,
            np.zeros(n, dtype=np.int64),
            np.arange(n, dtype=np.float64),
            states,
            np.zeros(n, dtype=bool),
        )
        assert len(mem) == 4
        assert sorted(mem[i].reward for i in range(4)) == [7.0, 8.0, 9.0, 10.0]

    def test_empty_batch_is_noop(self):
        mem = ReplayMemory(capacity=4)
        mem.push_batch(
            np.zeros((0, 3)), np.zeros(0), np.zeros(0), np.zeros((0, 3)),
            np.zeros(0, dtype=bool),
        )
        assert len(mem) == 0


class TestCompatibilityView:
    def test_getitem_returns_transition(self):
        mem = ReplayMemory(capacity=8)
        mem.push(np.arange(3), 2, 1.5, np.arange(3) + 1, True)
        t = mem[0]
        assert isinstance(t, Transition)
        assert t.action == 2 and t.reward == 1.5 and t.done is True
        assert np.array_equal(t.state, np.arange(3, dtype=np.float32))
        assert np.array_equal(t.next_state, np.arange(1, 4, dtype=np.float32))

    def test_getitem_oldest_first_after_wrap(self):
        mem = ReplayMemory(capacity=3)
        for i in range(5):
            mem.push(np.zeros(1), 0, float(i), np.zeros(1), False)
        assert [mem[i].reward for i in range(3)] == [2.0, 3.0, 4.0]

    def test_getitem_out_of_range(self):
        mem = ReplayMemory(capacity=3)
        mem.push(np.zeros(1), 0, 0.0, np.zeros(1), False)
        with pytest.raises(IndexError):
            mem[1]
        with pytest.raises(IndexError):
            mem[-1]

    def test_state_dim_property(self):
        mem = ReplayMemory(capacity=3)
        assert mem.state_dim is None
        mem.push(np.zeros(7), 0, 0.0, np.zeros(7), False)
        assert mem.state_dim == 7


class TestErrorPathsPreserveRngStream:
    """A failed ``sample`` must not consume RNG state: retrying after the
    buffer fills has to draw the same indices a fresh never-failed memory
    would — otherwise restarts and distributed learners that probe an
    underfull ring desync from the serial trajectory."""

    def _assert_same_stream(self, a: ReplayMemory, b: ReplayMemory) -> None:
        sa, sb = a._rng.get_state(), b._rng.get_state()
        assert np.array_equal(sa[1], sb[1]) and sa[2] == sb[2]

    def test_underfull_sample_does_not_touch_rng(self):
        probed = ReplayMemory(capacity=8, seed=5)
        clean = ReplayMemory(capacity=8, seed=5)
        probed.push(np.zeros(3), 0, 0.0, np.zeros(3), False)
        clean.push(np.zeros(3), 0, 0.0, np.zeros(3), False)
        for _ in range(4):
            with pytest.raises(ValueError):
                probed.sample(4)
        self._assert_same_stream(probed, clean)
        for t in _random_transitions(5, dim=3, seed=1):
            probed.push(*t)
            clean.push(*t)
        for g, w in zip(probed.sample(4), clean.sample(4)):
            assert np.array_equal(g, w)

    def test_empty_sample_does_not_touch_rng(self):
        probed = ReplayMemory(capacity=8, seed=5)
        clean = ReplayMemory(capacity=8, seed=5)
        with pytest.raises(ValueError):
            probed.sample(1)
        self._assert_same_stream(probed, clean)

    def test_nonpositive_batch_rejected_before_rng(self):
        probed = ReplayMemory(capacity=8, seed=5)
        clean = ReplayMemory(capacity=8, seed=5)
        for t in _random_transitions(8, dim=3, seed=2):
            probed.push(*t)
            clean.push(*t)
        for bad in (0, -3):
            with pytest.raises(ValueError):
                probed.sample(bad)
        self._assert_same_stream(probed, clean)


class TestSaveLoad:
    def _filled(self, n, capacity=16, seed=3):
        mem = ReplayMemory(capacity=capacity, seed=seed)
        rng = np.random.RandomState(seed)
        for i in range(n):
            mem.push(
                rng.standard_normal(5), i % 4, float(i),
                rng.standard_normal(5), i % 3 == 0,
            )
        return mem

    def test_roundtrip_preserves_contents(self, tmp_path):
        mem = self._filled(10)
        path = str(tmp_path / "replay.npz")
        mem.save(path)
        restored = ReplayMemory.load(path)
        assert len(restored) == 10
        assert restored.capacity == mem.capacity
        assert restored.state_dim == 5
        for i in range(10):
            assert np.array_equal(restored[i].state, mem[i].state)
            assert restored[i].action == mem[i].action
            assert restored[i].reward == mem[i].reward
            assert restored[i].done == mem[i].done

    def test_roundtrip_preserves_wraparound(self, tmp_path):
        mem = self._filled(23, capacity=8)  # wrapped nearly three times
        path = str(tmp_path / "replay.npz")
        mem.save(path)
        restored = ReplayMemory.load(path)
        assert len(restored) == 8
        assert [restored[i].reward for i in range(8)] == [
            mem[i].reward for i in range(8)
        ]
        # Writes continue at the same ring position.
        restored.push(np.zeros(5), 0, 99.0, np.zeros(5), False)
        mem.push(np.zeros(5), 0, 99.0, np.zeros(5), False)
        assert [restored[i].reward for i in range(8)] == [
            mem[i].reward for i in range(8)
        ]

    def test_resume_determinism_of_sampling(self, tmp_path):
        """A restored memory continues the exact sampling RNG stream."""
        mem = self._filled(12)
        mem.sample(4)  # advance the stream before snapshotting
        path = str(tmp_path / "replay.npz")
        mem.save(path)
        restored = ReplayMemory.load(path)
        for _ in range(3):
            expected = mem.sample(4)
            got = restored.sample(4)
            for a, b in zip(expected, got):
                assert np.array_equal(a, b)

    def test_empty_memory_roundtrip(self, tmp_path):
        mem = ReplayMemory(capacity=6, seed=1)
        path = str(tmp_path / "empty.npz")
        mem.save(path)
        restored = ReplayMemory.load(path)
        assert len(restored) == 0
        assert restored.state_dim is None
        restored.push(np.zeros(3), 0, 1.0, np.zeros(3), True)
        assert len(restored) == 1

    def test_save_overwrites_atomically(self, tmp_path):
        mem = self._filled(4)
        path = str(tmp_path / "replay.npz")
        mem.save(path)
        mem.push(np.zeros(5), 1, 42.0, np.zeros(5), False)
        mem.save(path)
        restored = ReplayMemory.load(path)
        assert len(restored) == 5
        assert restored[4].reward == 42.0
        # No tmp droppings left behind.
        leftovers = [p for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []
