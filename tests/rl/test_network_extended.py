"""Additional Q-network properties."""

import numpy as np
import pytest

from repro.rl import QNetwork


def test_relu_hidden_linear_output():
    """Negative pre-activations are clipped in hidden layers only."""
    net = QNetwork(4, 3, hidden=(8,), seed=0)
    # Zero all weights: output must be exactly the output bias.
    for layer in net.layers:
        layer.weight[...] = 0.0
        layer.bias[...] = 0.0
    net.layers[-1].bias[...] = np.array([-5.0, 0.0, 5.0])
    q = net.predict(np.ones(4))
    assert np.allclose(q, [-5.0, 0.0, 5.0])  # output layer is linear


def test_batch_and_single_predictions_agree():
    net = QNetwork(6, 4, hidden=(16, 8), seed=2)
    rng = np.random.RandomState(0)
    states = rng.standard_normal((5, 6))
    batch = net.predict(states)
    singles = np.stack([net.predict(s) for s in states])
    assert np.allclose(batch, singles)


def test_huber_loss_clips_large_errors():
    net = QNetwork(3, 2, hidden=(4,), learning_rate=0.0, seed=1)
    states = np.zeros((2, 3))
    actions = np.array([0, 1])
    q = net.predict(states)
    big_targets = q[np.arange(2), actions] + 1000.0
    loss = net.train_batch(states, actions, big_targets)
    # Huber(1000) = 1000 - 0.5; quadratic would be 500000.
    assert loss == pytest.approx(999.5, rel=1e-3)


def test_training_only_touches_selected_action():
    """One gradient step on action 0 must leave other actions' output-layer
    weights unchanged."""
    net = QNetwork(3, 4, hidden=(5,), learning_rate=1e-2, seed=3)
    before = net.layers[-1].weight.copy()
    states = np.ones((4, 3))
    actions = np.zeros(4, dtype=np.int64)
    targets = np.full(4, 10.0)
    net.train_batch(states, actions, targets)
    after = net.layers[-1].weight
    changed = np.abs(after - before).sum(axis=0)
    assert changed[0] > 0
    assert np.allclose(changed[1:], 0.0)


def test_adam_state_advances():
    net = QNetwork(3, 2, hidden=(4,), learning_rate=1e-3, seed=4)
    assert net._adam_t == 0
    states = np.zeros((2, 3))
    net.train_batch(states, np.array([0, 1]), np.array([1.0, -1.0]))
    assert net._adam_t == 1


def test_set_weights_validates_length():
    net = QNetwork(3, 2, hidden=(4,), seed=5)
    with pytest.raises(AssertionError):
        net.set_weights([np.zeros((3, 4))])
