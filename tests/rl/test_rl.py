"""RL machinery: network (with numerical gradient check), replay,
schedules, DQN/Double-DQN agents."""

import numpy as np
import pytest

from repro.rl import (
    AgentConfig,
    DQNAgent,
    DoubleDQNAgent,
    ExponentialSchedule,
    LinearSchedule,
    QNetwork,
    ReplayMemory,
    paper_epsilon_schedule,
)


class TestQNetwork:
    def test_shapes(self):
        net = QNetwork(state_dim=10, num_actions=4, hidden=(16,))
        single = net.predict(np.zeros(10))
        batch = net.predict(np.zeros((3, 10)))
        assert single.shape == (4,)
        assert batch.shape == (3, 4)

    def test_training_reduces_loss(self):
        rng = np.random.RandomState(0)
        net = QNetwork(8, 3, hidden=(32,), learning_rate=5e-3, seed=1)
        states = rng.standard_normal((64, 8))
        actions = rng.randint(0, 3, size=64)
        targets = states[:, 0] * 2.0 + actions
        first = net.train_batch(states, actions, targets)
        for _ in range(300):
            last = net.train_batch(states, actions, targets)
        assert last < first * 0.5

    def test_gradient_matches_numerical(self):
        """Backprop gradient vs central finite differences."""
        net = QNetwork(5, 2, hidden=(7,), learning_rate=0.0, seed=3)
        rng = np.random.RandomState(4)
        states = rng.standard_normal((4, 5))
        actions = np.array([0, 1, 1, 0])
        targets = rng.standard_normal(4)

        def loss():
            q = net.predict(states)
            picked = q[np.arange(4), actions]
            err = picked - targets
            # huber with delta=1
            return float(
                np.mean(
                    np.where(np.abs(err) <= 1, 0.5 * err**2, np.abs(err) - 0.5)
                )
            )

        # Analytic gradient via a hacked train step: record weight delta with
        # lr=1 and plain SGD is not exposed, so check via Adam direction is
        # unreliable — instead, recompute the gradient manually using the
        # internals.
        layer = net.layers[0]
        eps = 1e-6
        # numerical grad for one weight entry
        i, j = 2, 3
        original = layer.weight[i, j]
        layer.weight[i, j] = original + eps
        up = loss()
        layer.weight[i, j] = original - eps
        down = loss()
        layer.weight[i, j] = original
        numerical = (up - down) / (2 * eps)

        # Analytic: replicate the backward pass.
        x = states
        activations = [x]
        pres = []
        h = x
        for l in net.layers:
            pre, h = l.forward(h)
            pres.append(pre)
            activations.append(h)
        q = activations[-1]
        picked = q[np.arange(4), actions]
        err = picked - targets
        grad_q = np.zeros_like(q)
        grad_q[np.arange(4), actions] = np.clip(err, -1, 1) / 4
        grad = grad_q
        grads_w = [None] * len(net.layers)
        for k in range(len(net.layers) - 1, -1, -1):
            grad, gw, gb = net.layers[k].backward(activations[k], pres[k], grad)
            grads_w[k] = gw
        assert grads_w[0][i, j] == pytest.approx(numerical, rel=1e-4, abs=1e-7)

    def test_weight_copy(self):
        a = QNetwork(6, 3, hidden=(8,), seed=1)
        b = QNetwork(6, 3, hidden=(8,), seed=2)
        state = np.ones(6)
        assert not np.allclose(a.predict(state), b.predict(state))
        b.copy_from(a)
        assert np.allclose(a.predict(state), b.predict(state))

    def test_save_load_roundtrip(self, tmp_path):
        net = QNetwork(6, 3, hidden=(128, 64), seed=5)
        path = str(tmp_path / "model.npz")
        net.save(path)
        loaded = QNetwork.load(path)
        state = np.linspace(-1, 1, 6)
        assert np.allclose(net.predict(state), loaded.predict(state))

    def test_save_load_nondefault_hidden(self, tmp_path):
        """Regression: checkpoints must carry their hidden-layer sizes.
        A (64, 32) network used to come back mis-shaped because ``load``
        assumed the default (128, 64) architecture."""
        net = QNetwork(6, 3, hidden=(64, 32), seed=5)
        path = str(tmp_path / "model.npz")
        net.save(path)
        loaded = QNetwork.load(path)
        assert loaded.hidden == (64, 32)
        state = np.linspace(-1, 1, 6)
        assert np.allclose(net.predict(state), loaded.predict(state))

    def test_load_infers_hidden_from_legacy_checkpoint(self, tmp_path):
        """Checkpoints written before the ``hidden`` field still load:
        the architecture is inferred from the weight-matrix shapes."""
        net = QNetwork(6, 3, hidden=(48, 24, 12), seed=2)
        path = str(tmp_path / "legacy.npz")
        arrays = {f"p{i}": w for i, w in enumerate(net.get_weights())}
        arrays["meta"] = np.array([6, 3, net.learning_rate])
        np.savez(path, **arrays)  # no "hidden" entry, like old saves
        loaded = QNetwork.load(path)
        assert loaded.hidden == (48, 24, 12)
        state = np.linspace(-1, 1, 6)
        assert np.allclose(net.predict(state), loaded.predict(state))

    def test_load_rejects_mismatched_hidden(self, tmp_path):
        net = QNetwork(6, 3, hidden=(64, 32), seed=5)
        path = str(tmp_path / "model.npz")
        net.save(path)
        with pytest.raises(ValueError, match="hidden layers"):
            QNetwork.load(path, hidden=(128, 64))

    def test_predict_no_copy_for_float64(self):
        """The act-path boundary cast is a no-op for float64 inputs."""
        net = QNetwork(4, 2, hidden=(8,))
        state = np.ones(4, dtype=np.float64)
        assert np.asarray(state, dtype=np.float64) is state
        assert net.predict(state).shape == (2,)


class TestReplay:
    def test_push_and_len(self):
        mem = ReplayMemory(capacity=4)
        for i in range(3):
            mem.push(np.zeros(2), i, float(i), np.ones(2), False)
        assert len(mem) == 3

    def test_ring_overwrite(self):
        mem = ReplayMemory(capacity=4)
        for i in range(10):
            mem.push(np.full(2, i), i % 2, float(i), np.ones(2), False)
        assert len(mem) == 4
        states, actions, rewards, next_states, dones = mem.sample(4)
        assert rewards.min() >= 6  # only the last four survive

    def test_sample_shapes_and_types(self):
        mem = ReplayMemory(capacity=16, seed=1)
        for i in range(16):
            mem.push(np.zeros(3), 1, 0.5, np.zeros(3), i % 2 == 0)
        s, a, r, ns, d = mem.sample(8)
        assert s.shape == (8, 3) and ns.shape == (8, 3)
        assert a.dtype == np.int64 and d.dtype == bool

    def test_sample_too_many_raises(self):
        mem = ReplayMemory(capacity=8)
        mem.push(np.zeros(1), 0, 0.0, np.zeros(1), False)
        with pytest.raises(ValueError):
            mem.sample(2)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReplayMemory(capacity=0)


class TestSchedules:
    def test_linear_endpoints(self):
        s = LinearSchedule(1.0, 0.01, 100)
        assert s.value(0) == 1.0
        assert s.value(100) == pytest.approx(0.01)
        assert s.value(1000) == pytest.approx(0.01)
        assert s.value(50) == pytest.approx(0.505)

    def test_paper_schedule(self):
        s = paper_epsilon_schedule()
        assert s.value(0) == 1.0
        assert s.value(20_000) == pytest.approx(0.01)
        assert s.steps == 20_000

    def test_exponential(self):
        s = ExponentialSchedule(1.0, 0.1, 0.9)
        assert s.value(0) == 1.0
        assert s.value(100) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            ExponentialSchedule(1.0, 0.1, 1.5)


class TestAgents:
    def _config(self, **kw):
        defaults = dict(
            state_dim=6,
            num_actions=4,
            hidden=(16,),
            min_replay=8,
            batch_size=4,
            train_every=2,
            target_sync_every=16,
            epsilon_steps=50,
            seed=0,
        )
        defaults.update(kw)
        return AgentConfig(**defaults)

    def test_epsilon_anneals_with_steps(self):
        agent = DoubleDQNAgent(self._config())
        assert agent.epsilon == 1.0
        for _ in range(60):
            agent.remember(np.zeros(6), 0, 0.0, np.zeros(6), False)
        assert agent.epsilon == pytest.approx(0.01)

    def test_greedy_act_is_argmax(self):
        agent = DoubleDQNAgent(self._config())
        state = np.ones(6)
        action = agent.act(state, greedy=True)
        assert action == int(np.argmax(agent.q_values(state)))

    def test_exploration_uses_all_actions(self):
        agent = DoubleDQNAgent(self._config(epsilon_steps=10_000))
        actions = {agent.act(np.zeros(6)) for _ in range(200)}
        assert actions == {0, 1, 2, 3}

    def test_training_happens(self):
        agent = DoubleDQNAgent(self._config())
        rng = np.random.RandomState(0)
        for _ in range(50):
            agent.remember(
                rng.standard_normal(6), int(rng.randint(4)),
                float(rng.standard_normal()), rng.standard_normal(6), False,
            )
        assert agent.train_steps > 0
        assert agent.last_loss is not None

    def test_double_dqn_differs_from_vanilla_in_target(self):
        config = self._config()
        vanilla = DQNAgent(config)
        double = DoubleDQNAgent(config)
        assert not vanilla.double and double.double
        # Force divergent online/target nets, compare bootstrapped values.
        rng = np.random.RandomState(1)
        for agent in (vanilla, double):
            for layer in agent.online.layers:
                layer.weight += rng.standard_normal(layer.weight.shape) * 0.5
        states = rng.standard_normal((5, 6))
        assert not np.allclose(vanilla._next_q(states), double._next_q(states))

    def test_agent_learns_trivial_bandit(self):
        """One state, action 2 always pays: its Q-value should win."""
        agent = DoubleDQNAgent(
            self._config(epsilon_steps=150, target_sync_every=8)
        )
        agent.online.learning_rate = 5e-3
        state = np.ones(6)
        rng = np.random.RandomState(2)
        for _ in range(400):
            action = agent.act(state)
            reward = 1.0 if action == 2 else -0.2
            agent.remember(state, action, reward, state, True)
        assert agent.act(state, greedy=True) == 2

    def test_save_load(self, tmp_path):
        agent = DoubleDQNAgent(self._config(hidden=(128, 64)))
        path = str(tmp_path / "agent.npz")
        agent.save(path)
        other = DoubleDQNAgent(self._config(hidden=(128, 64), seed=9))
        other.load(path)
        state = np.linspace(0, 1, 6)
        assert np.allclose(agent.q_values(state), other.q_values(state))

    def test_save_load_nondefault_hidden_agent(self, tmp_path):
        """Regression: an agent with hidden=(64, 32) round-trips."""
        agent = DoubleDQNAgent(self._config(hidden=(64, 32)))
        path = str(tmp_path / "agent.npz")
        agent.save(path)
        other = DoubleDQNAgent(self._config(hidden=(64, 32), seed=9))
        other.load(path)
        state = np.linspace(0, 1, 6)
        assert np.allclose(agent.q_values(state), other.q_values(state))
        assert np.allclose(
            agent.q_values(state), other.target.predict(state)
        )


class TestActBatch:
    def _config(self, **kw):
        defaults = dict(
            state_dim=6, num_actions=4, hidden=(16,), min_replay=8,
            batch_size=4, train_every=2, target_sync_every=16,
            epsilon_steps=50, seed=0,
        )
        defaults.update(kw)
        return AgentConfig(**defaults)

    def test_single_row_matches_act_rng_stream(self):
        """act_batch on (1, d) consumes the exploration RNG exactly like
        act, so interleaved usage stays on the serial trajectory."""
        a = DoubleDQNAgent(self._config())
        b = DoubleDQNAgent(self._config())
        rng = np.random.RandomState(5)
        for _ in range(60):
            state = rng.standard_normal(6)
            serial_action = a.act(state)
            (batch_action,) = b.act_batch(state[np.newaxis, :])
            assert serial_action == batch_action
            # keep both agents' step counts (hence ε) in lockstep
            a.remember(state, serial_action, 0.0, state, False)
            b.remember_batch(
                state[np.newaxis, :], np.array([batch_action]),
                np.zeros(1), state[np.newaxis, :], np.zeros(1, dtype=bool),
            )
        assert np.array_equal(
            a._rng.get_state()[1], b._rng.get_state()[1]
        )

    def test_greedy_batch_is_rowwise_argmax(self):
        agent = DoubleDQNAgent(self._config())
        states = np.random.RandomState(3).standard_normal((5, 6))
        actions = agent.act_batch(states, greedy=True)
        q = agent.online.predict(states)
        assert np.array_equal(actions, q.argmax(axis=1))

    def test_exploration_covers_actions(self):
        agent = DoubleDQNAgent(self._config(epsilon_steps=10_000))
        states = np.zeros((8, 6))
        seen = set()
        for _ in range(40):
            seen.update(agent.act_batch(states).tolist())
        assert seen == {0, 1, 2, 3}

    def test_rejects_non_batch_shapes(self):
        agent = DoubleDQNAgent(self._config())
        with pytest.raises(ValueError):
            agent.act_batch(np.zeros(6))

    def test_remember_batch_matches_serial_remember(self):
        """Same transitions via remember_batch or n remember calls give
        the same replay contents, step counts and training updates."""
        a = DoubleDQNAgent(self._config())
        b = DoubleDQNAgent(self._config())
        rng = np.random.RandomState(11)
        for _ in range(10):
            states = rng.standard_normal((4, 6))
            actions = rng.randint(0, 4, size=4)
            rewards = rng.standard_normal(4)
            next_states = rng.standard_normal((4, 6))
            dones = rng.randint(0, 2, size=4).astype(bool)
            for i in range(4):
                a.remember(
                    states[i], int(actions[i]), float(rewards[i]),
                    next_states[i], bool(dones[i]),
                )
            b.remember_batch(states, actions, rewards, next_states, dones)
        assert a.steps == b.steps == 40
        assert a.train_steps == b.train_steps > 0
        assert a.last_loss == b.last_loss
        for wa, wb in zip(a.online.get_weights(), b.online.get_weights()):
            assert np.array_equal(wa, wb)
        got = a.memory.sample(16)
        want = b.memory.sample(16)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)
