"""Property tests for the sum-tree prioritized replay index.

The sum tree is the determinism-critical piece of the distributed
learner: sampling must match a brute-force categorical draw over the
leaf masses exactly (not just statistically), ancestor sums must stay
consistent through ring wraparound overwrites, zero TD errors must not
make slots unsampleable, and a snapshot/restore must continue the exact
sampling RNG stream.
"""

import numpy as np
import pytest

from repro.rl import PrioritizedReplayMemory, SumTree


def _brute_force_find(leaves: np.ndarray, masses: np.ndarray) -> np.ndarray:
    """Oracle: searchsorted over the explicit cumulative mass."""
    cum = np.cumsum(leaves)
    idx = np.searchsorted(cum, masses, side="right")
    return np.minimum(idx, len(leaves) - 1)


def _fill(mem: PrioritizedReplayMemory, n: int, dim: int = 4, seed: int = 0):
    rng = np.random.RandomState(seed)
    for i in range(n):
        mem.push(
            rng.standard_normal(dim), int(rng.randint(3)),
            float(rng.standard_normal()), rng.standard_normal(dim),
            bool(rng.randint(2)),
        )


class TestSumTreeMatchesBruteForce:
    @pytest.mark.parametrize("capacity", [1, 2, 5, 16, 37, 100])
    def test_prefix_descent_equals_searchsorted(self, capacity):
        """Tree descent and the O(n) cumsum oracle pick the same leaf
        for a dense sweep of query masses, under random priorities."""
        rng = np.random.RandomState(capacity)
        tree = SumTree(capacity)
        leaves = rng.random_sample(capacity) + 1e-6
        tree.set(np.arange(capacity), leaves)
        assert tree.total == pytest.approx(leaves.sum())
        masses = np.linspace(0.0, tree.total, 257, endpoint=False)
        got = tree.find_prefix(masses)
        want = _brute_force_find(leaves, masses)
        assert np.array_equal(got, want)

    def test_categorical_draw_distribution(self):
        """Sampling by uniform masses through the tree reproduces the
        categorical distribution over the leaves (χ² on a large draw)."""
        capacity = 8
        tree = SumTree(capacity)
        leaves = np.array([1.0, 2.0, 4.0, 8.0, 1.0, 2.0, 4.0, 8.0])
        tree.set(np.arange(capacity), leaves)
        rng = np.random.RandomState(7)
        draws = 30_000
        idx = tree.find_prefix(rng.random_sample(draws) * tree.total)
        counts = np.bincount(idx, minlength=capacity)
        expected = draws * leaves / leaves.sum()
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 7 dof: P(chi2 > 24.3) ≈ 0.001
        assert chi2 < 24.3, counts

    def test_duplicate_indices_keep_last_value(self):
        tree = SumTree(4)
        tree.set([0, 1, 1, 2], [1.0, 5.0, 2.0, 3.0])
        assert np.array_equal(tree.values, [1.0, 2.0, 3.0, 0.0])
        assert tree.total == pytest.approx(6.0)

    def test_out_of_range_leaf_rejected(self):
        tree = SumTree(4)
        with pytest.raises(IndexError):
            tree.set([4], [1.0])
        with pytest.raises(IndexError):
            tree.set([-1], [1.0])


class TestWraparoundSumConsistency:
    def test_node_sums_after_ring_overwrites(self):
        """Pushing far past capacity overwrites leaves in ring order; the
        root total and every leaf must match a from-scratch rebuild."""
        capacity = 6
        mem = PrioritizedReplayMemory(capacity, seed=1, alpha=0.7)
        _fill(mem, 23, seed=5)  # wraps nearly four times
        # Scatter TD-error updates between overwrites too.
        mem.update_priorities([0, 3, 5], [0.25, 4.0, 0.5])
        _fill(mem, 4, seed=6)
        fresh = SumTree(capacity)
        fresh.set(np.arange(capacity), mem.tree.values)
        assert mem.tree.total == pytest.approx(fresh.total, rel=1e-12)
        internal = mem.tree._tree[1:mem.tree._leaf_base]
        rebuilt = fresh._tree[1:fresh._leaf_base]
        assert np.allclose(internal, rebuilt, rtol=1e-12, atol=0.0)

    def test_overwritten_slot_resets_to_max_priority(self):
        mem = PrioritizedReplayMemory(4, seed=2)
        _fill(mem, 4, seed=0)
        mem.update_priorities([0], [9.0])  # raises the running max
        high = mem.tree.value([0])[0]
        _fill(mem, 4, seed=1)  # full lap: every slot rewritten
        assert np.allclose(mem.tree.values, high)

    def test_oversized_batch_sets_every_leaf(self):
        mem = PrioritizedReplayMemory(4, seed=3)
        n = 11
        states = np.zeros((n, 2))
        mem.push_batch(
            states, np.zeros(n, dtype=np.int64), np.arange(n, dtype=float),
            states, np.zeros(n, dtype=bool),
        )
        assert len(mem) == 4
        assert np.all(mem.tree.values > 0)
        assert mem.tree.total == pytest.approx(mem.tree.values.sum())


class TestPriorityClamping:
    def test_zero_td_error_stays_sampleable(self):
        mem = PrioritizedReplayMemory(8, seed=4, min_priority=1e-3, alpha=0.5)
        _fill(mem, 8, seed=2)
        mem.update_priorities(np.arange(8), np.zeros(8))
        floor = mem.min_priority ** mem.alpha
        assert np.allclose(mem.tree.values, floor)
        assert mem.tree.total > 0
        batch, indices, weights = mem.sample_prioritized(4)
        assert len(indices) == 4
        # Uniform mass → every IS weight normalizes to 1.
        assert np.allclose(weights, 1.0)

    def test_sub_floor_priorities_clamped_up(self):
        mem = PrioritizedReplayMemory(4, seed=4, min_priority=1e-2, alpha=1.0)
        _fill(mem, 4, seed=3)
        mem.update_priorities(np.arange(4), [1e-9, 0.0, 5e-3, 0.5])
        values = mem.tree.values
        assert values[0] == pytest.approx(1e-2)
        assert values[1] == pytest.approx(1e-2)
        assert values[2] == pytest.approx(1e-2)
        assert values[3] == pytest.approx(0.5)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PrioritizedReplayMemory(4, alpha=1.5)
        with pytest.raises(ValueError):
            PrioritizedReplayMemory(4, min_priority=0.0)
        with pytest.raises(ValueError):
            SumTree(0)

    def test_guards_run_before_rng(self):
        """A failed prioritized sample must not consume the RNG stream
        (mirrors the uniform-path contract)."""
        probed = PrioritizedReplayMemory(8, seed=6)
        clean = PrioritizedReplayMemory(8, seed=6)
        _fill(probed, 3, seed=1)
        _fill(clean, 3, seed=1)
        with pytest.raises(ValueError):
            probed.sample_prioritized(4)
        with pytest.raises(ValueError):
            probed.sample_prioritized(0)
        _, pi, _ = probed.sample_prioritized(2)
        _, ci, _ = clean.sample_prioritized(2)
        assert np.array_equal(pi, ci)


class TestSaveLoadRoundTrip:
    def test_priorities_and_rng_stream_survive(self, tmp_path):
        mem = PrioritizedReplayMemory(16, seed=9, alpha=0.8, beta=0.5)
        _fill(mem, 12, seed=4)
        _, indices, _ = mem.sample_prioritized(4)
        mem.update_priorities(indices, np.linspace(0.1, 2.0, 4))
        path = str(tmp_path / "prioritized.npz")
        mem.save(path)
        restored = PrioritizedReplayMemory.load(path)
        assert isinstance(restored, PrioritizedReplayMemory)
        assert restored.alpha == mem.alpha
        assert restored.beta == mem.beta
        assert restored.min_priority == mem.min_priority
        assert restored._max_priority == mem._max_priority
        assert np.array_equal(restored.tree.values, mem.tree.values)
        assert restored.tree.total == pytest.approx(mem.tree.total)
        # The restored memory continues the exact sampling stream.
        for _ in range(3):
            wb, wi, ww = mem.sample_prioritized(4)
            gb, gi, gw = restored.sample_prioritized(4)
            assert np.array_equal(wi, gi)
            assert np.array_equal(ww, gw)
            for a, b in zip(wb, gb):
                assert np.array_equal(a, b)

    def test_plain_snapshot_reenters_at_max_priority(self, tmp_path):
        from repro.rl import ReplayMemory

        plain = ReplayMemory(8, seed=3)
        rng = np.random.RandomState(0)
        for i in range(5):
            plain.push(rng.standard_normal(3), 0, float(i),
                       rng.standard_normal(3), False)
        path = str(tmp_path / "plain.npz")
        plain.save(path)
        restored = PrioritizedReplayMemory.load(path)
        assert len(restored) == 5
        expected = restored._clamped_mass([restored._max_priority])[0]
        assert np.allclose(restored.tree.values[:5], expected)
        assert np.allclose(restored.tree.values[5:], 0.0)
