"""Distributed actor-learner training: serial equivalence and determinism.

The pipeline's load-bearing guarantee mirrors the vectorized trainer's:
it is not a different algorithm. With one actor, synchronous chunking
(``chunk_size=1, broadcast_every=1``) and uniform replay, the run must
reproduce ``train_vectorized(n_envs=1)`` bit-for-bit — actions, replay
contents, losses, final weights, and every RNG stream including the ones
living in the actor subprocess. With more actors the schedule stays
deterministic (round-robin issue, in-order ingest), so a fixed seed
yields identical learner weights across independent cross-process runs.
"""

import numpy as np
import pytest

from repro.core.agent_api import PosetRL
from repro.rl.dqn import AgentConfig
from repro.workloads import ProgramProfile, generate_program

EPISODE_LENGTH = 5


@pytest.fixture(scope="module")
def corpus():
    return [
        (
            f"prog{i}",
            generate_program(ProgramProfile(name=f"prog{i}", seed=i, segments=2)),
        )
        for i in range(3)
    ]


def _make_agent(seed=3, algo=None):
    config = AgentConfig(min_replay=8, batch_size=4, train_every=2,
                         target_sync_every=16)
    return PosetRL(seed=seed, episode_length=EPISODE_LENGTH,
                   agent_config=config, algo=algo)


def _assert_same_stream(state_a, state_b):
    assert np.array_equal(state_a[1], state_b[1])
    assert state_a[2] == state_b[2]


class TestSerialEquivalence:
    def test_one_actor_sync_is_bit_identical(self, corpus):
        """actors=1 + chunk_size=1 + broadcast_every=1 + uniform replay
        reproduces the vectorized (hence serial) trajectory exactly."""
        episodes = 6
        vec = _make_agent()
        vec_stats = vec.train_vectorized(corpus, episodes=episodes, n_envs=1)
        dist = _make_agent()
        dist_stats = dist.train_distributed(
            corpus, episodes=episodes, actors=1,
            chunk_size=1, broadcast_every=1,
        )

        assert len(vec_stats) == len(dist_stats) == episodes
        for v, d in zip(vec_stats, dist_stats):
            assert v.module == d.module
            assert v.actions == d.actions
            assert v.total_reward == d.total_reward
            assert v.final_size == d.final_size
            assert v.epsilon == d.epsilon

        # Replay contents: byte-identical, in insertion order.
        assert len(vec.agent.memory) == len(dist.agent.memory)
        for i in range(len(vec.agent.memory)):
            a, b = vec.agent.memory[i], dist.agent.memory[i]
            assert np.array_equal(a.state, b.state)
            assert np.array_equal(a.next_state, b.next_state)
            assert (a.action, a.reward, a.done) == (b.action, b.reward, b.done)

        # Learning: same updates, same final loss, identical weights.
        assert vec.agent.train_steps == dist.agent.train_steps > 0
        assert vec.agent.last_loss == dist.agent.last_loss
        for wa, wb in zip(
            vec.agent.online.get_weights(), dist.agent.online.get_weights()
        ):
            assert np.array_equal(wa, wb)

        # Learner-side replay-sampling stream ended in the same place.
        _assert_same_stream(
            vec.agent.memory._rng.get_state(),
            dist.agent.memory._rng.get_state(),
        )
        # Actor-side streams: the subprocess reports its end states; they
        # must match the serial agent's exploration RNG and the facade's
        # corpus-sampling RNG — the actor made exactly the serial draws.
        report = dist.last_distributed_report
        assert len(report.final_actor_stats) == 1
        final = report.final_actor_stats[0]
        _assert_same_stream(vec.agent._rng.get_state(), final.explore_rng_state)
        _assert_same_stream(vec._rng.get_state(), final.sample_rng_state)

    def test_report_health(self, corpus):
        dist = _make_agent(seed=11)
        dist.train_distributed(corpus, episodes=4, actors=1,
                               chunk_size=1, broadcast_every=1)
        report = dist.last_distributed_report
        assert report.clean_drain
        assert report.broadcasts >= 1
        # Synchronous mode: every chunk acted on the freshest weights.
        assert report.max_staleness == 0
        d = report.as_dict()
        assert d["n_actors"] == 1 and d["clean_drain"] is True


class TestCrossRunDeterminism:
    @pytest.mark.parametrize("algo", ["ddqn", "prioritized-ddqn", "ppo"])
    def test_same_seed_same_weights(self, corpus, algo):
        """Two independent multi-process runs with one seed finish with
        identical learner weights (and identical episode records)."""
        def run():
            rl = _make_agent(seed=5, algo=algo)
            stats = rl.train_distributed(corpus, episodes=6, actors=2,
                                         broadcast_every=2)
            net = rl.agent.net if algo == "ppo" else rl.agent.online
            return stats, net.get_weights(), rl.last_distributed_report

        stats_a, weights_a, report_a = run()
        stats_b, weights_b, report_b = run()
        assert report_a.clean_drain and report_b.clean_drain
        assert report_a.broadcasts == report_b.broadcasts >= 1
        for sa, sb in zip(stats_a, stats_b):
            assert sa.module == sb.module and sa.actions == sb.actions
        for wa, wb in zip(weights_a, weights_b):
            assert np.array_equal(wa, wb)

    def test_prioritized_run_reports_priority_stats(self, corpus):
        rl = _make_agent(seed=5, algo="prioritized-ddqn")
        rl.train_distributed(corpus, episodes=6, actors=2)
        report = rl.last_distributed_report
        assert report.priority_stats is not None
        assert report.priority_stats["total"] > 0
        assert rl.agent.train_steps > 0

    def test_ppo_distributed_trains(self, corpus):
        rl = _make_agent(seed=5, algo="ppo")
        rl.train_distributed(corpus, episodes=6, actors=2)
        assert rl.agent.train_steps > 0  # flush covers sub-horizon runs
        assert rl.last_distributed_report.clean_drain


class TestBudgetAndValidation:
    def test_budget_semantics_match_vectorized(self, corpus):
        rl = _make_agent(seed=7)
        stats = rl.train_distributed(corpus, total_steps=2 * EPISODE_LENGTH,
                                     actors=1)
        assert rl.last_distributed_report.total_steps >= 2 * EPISODE_LENGTH
        assert len(stats) >= 2

    def test_rejects_bad_arguments(self, corpus):
        rl = _make_agent()
        with pytest.raises(ValueError):
            rl.train_distributed(corpus)  # neither budget given
        with pytest.raises(ValueError):
            rl.train_distributed(corpus, total_steps=10, episodes=2)
        with pytest.raises(ValueError):
            rl.train_distributed(corpus, episodes=2, actors=0)
        with pytest.raises(ValueError):
            rl.train_distributed([], episodes=2)

    def test_unknown_algo_rejected(self):
        with pytest.raises(ValueError):
            _make_agent(algo="a2c")
