"""Training-loop dynamics of the PosetRL facade."""

import numpy as np
import pytest

from repro import PosetRL, load_suite
from repro.core import RewardWeights
from repro.core.presets import quick_config


@pytest.fixture(scope="module")
def corpus():
    return load_suite("llvm_test_suite")[:6]


def test_training_is_reproducible_per_seed(corpus):
    def run(seed):
        agent = PosetRL(action_space="odg", seed=seed,
                        agent_config=quick_config())
        stats = agent.train(corpus, episodes=12)
        return [s.total_reward for s in stats], [s.actions for s in stats]

    r1, a1 = run(5)
    r2, a2 = run(5)
    assert r1 == r2 and a1 == a2
    r3, _ = run(6)
    assert r1 != r3


def test_callback_invoked_per_episode(corpus):
    seen = []
    agent = PosetRL(action_space="manual", seed=1, agent_config=quick_config())
    agent.train(corpus, episodes=5, callback=lambda s: seen.append(s.episode))
    assert seen == [0, 1, 2, 3, 4]


def test_reward_weights_propagate_to_env(corpus):
    agent = PosetRL(
        action_space="odg", seed=0,
        weights=RewardWeights(alpha=100.0, beta=0.0),
        agent_config=quick_config(),
    )
    env = agent.make_env(corpus[0][1])
    env.reset()
    _, reward, _, info = env.step(23)
    assert reward == pytest.approx(100.0 * info.size_reward)


def test_training_reward_correlates_with_size_movement(corpus):
    """Episodes with net size reduction must have received positive
    cumulative size components (consistency of the bookkeeping)."""
    agent = PosetRL(action_space="odg", seed=2, agent_config=quick_config())
    stats = agent.train(corpus, episodes=8)
    for record in stats:
        name = record.module
        module = dict(corpus)[name]
        env = agent.make_env(module)
        env.reset()
        for action in record.actions:
            env.step(action)
        assert env.last_size == record.final_size


def test_episode_length_respected(corpus):
    agent = PosetRL(action_space="odg", seed=0, episode_length=7,
                    agent_config=quick_config())
    stats = agent.train(corpus[:2], episodes=3)
    assert all(len(s.actions) == 7 for s in stats)
    actions = agent.predict(corpus[0][1])
    assert len(actions) == 7


def test_double_dqn_flag(corpus):
    double = PosetRL(action_space="odg", double_dqn=True,
                     agent_config=quick_config())
    vanilla = PosetRL(action_space="odg", double_dqn=False,
                      agent_config=quick_config())
    assert double.agent.double and not vanilla.agent.double
