"""Shared fixtures and IR-construction helpers for the test-suite."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import pytest

from repro.ir import (
    Function,
    FunctionType,
    IRBuilder,
    Module,
    ConstantInt,
    I32,
    parse_module,
    run_module,
    verify_module,
)
from repro.workloads import ProgramProfile, generate_program


def build_module(text: str) -> Module:
    """Parse and verify a textual IR module."""
    module = parse_module(text)
    verify_module(module)
    return module


def run_entry(module: Module, arg: int = 5, fn: str = "entry"):
    result, _ = run_module(module, fn, [arg])
    return result


def make_simple_function(
    module_name: str = "m", fn_name: str = "f"
) -> Tuple[Module, Function, IRBuilder]:
    """A module with one i32(i32) function and an open entry block."""
    module = Module(module_name)
    fn = Function(module, fn_name, FunctionType(I32, [I32]), arg_names=["x"])
    builder = IRBuilder(fn.add_block("entry"))
    return module, fn, builder


#: A loop-rich module reused by many pass tests: while-loop with invariant
#: work, a redundant pair, and dead code.
LOOP_MODULE = """
define i32 @entry(i32 %n) {
entry:
  %inv = mul i32 %n, 7
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %latch ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %latch ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %hoist = mul i32 %inv, 3
  %dead = add i32 %hoist, 5
  %acc2 = add i32 %acc, %hoist
  br label %latch
latch:
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"""

#: Diamond with redundancy: CSE / if-conversion / phi folding targets.
DIAMOND_MODULE = """
define i32 @entry(i32 %n) {
entry:
  %a = add i32 %n, 10
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %then, label %els
then:
  %t = add i32 %n, 10
  br label %merge
els:
  %e = sub i32 %n, 4
  br label %merge
merge:
  %phi = phi i32 [ %t, %then ], [ %e, %els ]
  %r = add i32 %phi, %a
  ret i32 %r
}
"""


@pytest.fixture
def loop_module() -> Module:
    return build_module(LOOP_MODULE)


@pytest.fixture
def diamond_module() -> Module:
    return build_module(DIAMOND_MODULE)


@pytest.fixture(scope="session")
def generated_programs() -> List[Tuple[str, Module]]:
    """A small deterministic corpus of generated programs."""
    out = []
    for seed in range(6):
        profile = ProgramProfile(
            name=f"gen{seed}", seed=seed, segments=5,
            recursive_helper=(seed % 2 == 0),
        )
        out.append((profile.name, generate_program(profile)))
    return out


def assert_semantics_preserved(module: Module, transform, args=(3, 7, 12)) -> None:
    """Run ``entry`` before/after ``transform(module)`` and compare."""
    baselines = {a: run_entry(module, a) for a in args}
    transform(module)
    verify_module(module)
    for a in args:
        assert run_entry(module, a) == baselines[a], f"mismatch for arg {a}"
