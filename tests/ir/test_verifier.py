"""The verifier must catch each class of broken IR."""

import pytest

from repro.ir import (
    BinaryOp,
    Branch,
    Call,
    ConstantInt,
    Function,
    FunctionType,
    IRBuilder,
    I32,
    Module,
    Phi,
    Ret,
    VerificationError,
    verify_module,
)
from tests.conftest import LOOP_MODULE, build_module, make_simple_function


def test_valid_module_passes(loop_module):
    verify_module(loop_module)  # no exception


def test_missing_terminator():
    module, fn, b = make_simple_function()
    b.add(fn.args[0], ConstantInt(I32, 1))
    with pytest.raises(VerificationError, match="missing terminator"):
        verify_module(module)


def test_empty_block():
    module, fn, b = make_simple_function()
    b.ret(fn.args[0])
    fn.add_block("empty")
    with pytest.raises(VerificationError, match="empty block"):
        verify_module(module)


def test_terminator_in_middle():
    module, fn, b = make_simple_function()
    b.ret(fn.args[0])
    fn.entry.append(Ret(fn.args[0]))
    with pytest.raises(VerificationError, match="terminator"):
        verify_module(module)


def test_phi_pred_mismatch():
    module, fn, b = make_simple_function()
    other = fn.add_block("other")
    phi = Phi(I32, "p")
    other.insert(0, phi)
    phi.add_incoming(fn.args[0], other)  # claims a non-existent pred edge
    b.br(other)
    IRBuilder(other).ret(phi)
    with pytest.raises(VerificationError, match="phi"):
        verify_module(module)


def test_phi_after_non_phi():
    module, fn, b = make_simple_function()
    other = fn.add_block("other")
    b.br(other)
    ob = IRBuilder(other)
    v = ob.add(fn.args[0], ConstantInt(I32, 1))
    phi = Phi(I32, "p")
    other.append(phi)
    phi.add_incoming(fn.args[0], fn.entry)
    ob.ret(v)
    with pytest.raises(VerificationError, match="phi after non-phi"):
        verify_module(module)


def test_use_before_def_same_block():
    module, fn, b = make_simple_function()
    a1 = b.add(fn.args[0], ConstantInt(I32, 1))
    a2 = b.add(fn.args[0], ConstantInt(I32, 2))
    b.ret(a1)
    # Swap so a1 uses a2's result before it exists.
    a1.set_operand(0, a2)
    fn.entry.instructions.remove(a2)
    fn.entry.insert(1, a2)
    with pytest.raises(VerificationError, match="used before def"):
        verify_module(module)


def test_def_does_not_dominate_use():
    module = build_module(LOOP_MODULE)
    fn = module.get_function("entry")
    blocks = {b.name: b for b in fn.blocks}
    body_inst = blocks["body"].instructions[0]
    ret = blocks["exit"].terminator
    ret.set_operand(0, body_inst)  # body does not dominate exit
    with pytest.raises(VerificationError, match="does not dominate"):
        verify_module(module)


def test_ret_type_mismatch():
    module, fn, b = make_simple_function()
    b.ret()  # void ret in i32 function
    with pytest.raises(VerificationError, match="ret void in non-void"):
        verify_module(module)


def test_call_arity_mismatch():
    module = Module()
    callee = Function(module, "callee", FunctionType(I32, [I32, I32]))
    fn = Function(module, "f", FunctionType(I32, [I32]), arg_names=["x"])
    b = IRBuilder(fn.add_block("entry"))
    call = b.call(callee, [fn.args[0]])
    b.ret(call)
    with pytest.raises(VerificationError, match="call"):
        verify_module(module)


def test_call_arg_type_mismatch():
    from repro.ir import I64

    module = Module()
    callee = Function(module, "callee", FunctionType(I32, [I64]))
    fn = Function(module, "f", FunctionType(I32, [I32]), arg_names=["x"])
    b = IRBuilder(fn.add_block("entry"))
    call = b.call(callee, [fn.args[0]])
    b.ret(call)
    with pytest.raises(VerificationError, match="arg 0"):
        verify_module(module)


def test_unreachable_blocks_are_not_ssa_checked():
    """Dead blocks may contain undominated uses (passes create these
    transiently); only reachable code is checked."""
    module, fn, b = make_simple_function()
    b.ret(fn.args[0])
    dead = fn.add_block("dead")
    db = IRBuilder(dead)
    v = db.add(fn.args[0], ConstantInt(I32, 1))
    db.ret(v)
    verify_module(module)  # fine: dead block is structurally valid


def test_successor_outside_function():
    module, fn, b = make_simple_function()
    other_module, other_fn, ob = make_simple_function("m2", "g")
    foreign = other_fn.entry
    ob.ret(other_fn.args[0])
    b.br(foreign)
    with pytest.raises(VerificationError, match="not in function"):
        verify_module(module)
