"""Interpreter opcode coverage.

Two claims, kept honest by ``Interpreter(collect_coverage=True)``:

1. The fuzz generator's coverage segments *execute* every opcode the
   interpreter supports — so the differential oracle actually tests all
   of them, not just the ones a random mix happens to reach.
2. The skip-list below is the complete set of opcodes that can never be
   observed executing, each with a reason. Growing it requires editing
   this file, which is the point.
"""

import pytest

from repro.ir.instructions import BINARY_OPS, CAST_OPS
from repro.ir.interp import Interpreter
from repro.testing import FuzzProfile, generate_fuzz_program

#: every opcode the IR defines
ALL_OPCODES = (
    set(BINARY_OPS)
    | set(CAST_OPS)
    | {
        "icmp", "fcmp", "alloca", "load", "store", "gep", "phi", "select",
        "extractelement", "insertelement", "call", "br", "switch", "ret",
        "unreachable",
    }
)

#: opcodes that by construction never execute, with the reason why.
SKIP_LIST = {
    # Executing `unreachable` is immediate UB; the verifier-clean programs
    # the generator emits only place it on dead paths, so observing it
    # would itself be a generator bug.
    "unreachable",
}


def executed_opcodes(seed: int, args=(7,)) -> set:
    module = generate_fuzz_program(FuzzProfile(seed=seed))
    interp = Interpreter(module, collect_coverage=True)
    interp.run("entry", args)
    return interp.executed_opcodes


def test_skip_list_is_subset_of_known_opcodes():
    assert SKIP_LIST <= ALL_OPCODES


@pytest.mark.parametrize("seed", [0, 5, 17])
def test_single_fuzz_program_covers_every_opcode(seed):
    """One module suffices: the generator's COVERAGE_SEGMENTS run every
    construct unconditionally before the random mix."""
    missing = ALL_OPCODES - SKIP_LIST - executed_opcodes(seed)
    assert not missing, f"opcodes never executed: {sorted(missing)}"


def test_no_unknown_opcodes_executed():
    executed = executed_opcodes(0)
    assert executed <= ALL_OPCODES, sorted(executed - ALL_OPCODES)


def test_skipped_opcodes_stay_unexecuted():
    assert not (executed_opcodes(0) & SKIP_LIST)
