"""Property test: printer and parser are exact inverses.

For arbitrary generated programs (workload and fuzz generators, many
seeds), ``parse(print(m))`` must reproduce the module exactly: identical
re-printed text, identical structural fingerprint, identical interpreter
behaviour — including through an optimization pipeline.
"""

import pytest

from repro.ir.fingerprint import module_fingerprint
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.passes.base import run_passes
from repro.testing import FuzzProfile, generate_fuzz_program, observe_module
from repro.workloads import ProgramProfile, generate_program

WORKLOAD_SEEDS = [0, 1, 7, 23]
FUZZ_SEEDS = [0, 3, 11, 42, 99]


def assert_roundtrip(module):
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    # Fixed point: printing the reparsed module reproduces the text.
    assert print_module(reparsed) == text
    # Structural identity, not just textual.
    assert module_fingerprint(reparsed) == module_fingerprint(module)


@pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
def test_workload_programs_roundtrip(seed):
    module = generate_program(
        ProgramProfile(name=f"rt{seed}", seed=seed, segments=4)
    )
    assert_roundtrip(module)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_programs_roundtrip(seed):
    assert_roundtrip(generate_fuzz_program(FuzzProfile(seed=seed)))


@pytest.mark.parametrize("seed", FUZZ_SEEDS[:3])
def test_optimized_fuzz_programs_roundtrip(seed):
    """Round-trip still holds for pass-pipeline output (optimizers emit
    constructs the generators never do, e.g. folded constants)."""
    module = generate_fuzz_program(FuzzProfile(seed=seed))
    run_passes(module, ["instcombine", "gvn", "simplifycfg", "dce"])
    verify_module(module)
    assert_roundtrip(module)


@pytest.mark.parametrize("seed", FUZZ_SEEDS[:2])
def test_roundtrip_preserves_behaviour(seed):
    module = generate_fuzz_program(FuzzProfile(seed=seed))
    reparsed = parse_module(print_module(module))
    for args in ((0,), (7,), (-3,)):
        assert observe_module(reparsed, args=args) == \
            observe_module(module, args=args)
