"""Structural fingerprints: clone-stability, mutation sensitivity,
module-level order-insensitivity."""

import pytest

from repro.ir import (
    Function,
    FunctionType,
    I32,
    IRBuilder,
    Module,
    function_fingerprint,
    module_fingerprint,
    parse_module,
)
from repro.ir.instructions import BinaryOp, Load, Store
from repro.passes import build_pipeline, run_passes
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def module():
    return generate_program(ProgramProfile(name="fp", seed=11, segments=6))


def build_simple(name="f", flip=False):
    m = Module("m")
    fn = Function(m, name, FunctionType(I32, [I32]))
    b = IRBuilder(fn.add_block("entry"))
    x = fn.args[0]
    y = b.add(x, IRBuilder.const_int(I32, 2 if flip else 1), name="y")
    z = b.mul(y, x, name="z")
    b.ret(z)
    return m


class TestCloneStability:
    def test_module_clone_has_equal_fingerprint(self, module):
        assert module_fingerprint(module.clone()) == module_fingerprint(module)

    def test_function_clone_has_equal_fingerprint(self, module):
        clone = module.clone()
        for orig, copy in zip(module.functions, clone.functions):
            assert function_fingerprint(orig) == function_fingerprint(copy)

    def test_fingerprint_ignores_local_names(self):
        # Clones rename locals (%y -> %t1 etc.); identical structure with
        # different local names must hash identically.
        a = build_simple()
        b = a.clone()
        for inst, cloned in zip(
            a.functions[0].instructions(), b.functions[0].instructions()
        ):
            if not inst.type.is_void:
                assert inst.name != cloned.name or inst.name == ""
        assert module_fingerprint(a) == module_fingerprint(b)

    def test_print_parse_roundtrip_preserves_fingerprint(self, module):
        from repro.ir import print_module

        parsed = parse_module(print_module(module))
        assert module_fingerprint(parsed) == module_fingerprint(module)


class TestMutationSensitivity:
    def test_constant_change(self):
        assert module_fingerprint(build_simple()) != module_fingerprint(
            build_simple(flip=True)
        )

    def test_operand_swap(self, module):
        clone = module.clone()
        fn = clone.defined_functions()[0]
        for inst in fn.instructions():
            if isinstance(inst, BinaryOp) and inst.lhs is not inst.rhs:
                lhs, rhs = inst.lhs, inst.rhs
                inst.set_operand(0, rhs)
                inst.set_operand(1, lhs)
                break
        else:
            pytest.skip("no asymmetric binary op in workload")
        assert module_fingerprint(clone) != module_fingerprint(module)

    def test_instruction_removal(self, module):
        clone = module.clone()
        before = module_fingerprint(clone)
        changed = run_passes(clone, ["dce", "simplifycfg", "instcombine"])
        if not changed:
            pytest.skip("workload already in normal form")
        assert module_fingerprint(clone) != before

    def test_optimization_changes_fingerprint(self, module):
        clone = module.clone()
        before = module_fingerprint(clone)
        build_pipeline("Oz").run(clone)
        assert module_fingerprint(clone) != before

    def test_attribute_change(self, module):
        clone = module.clone()
        fn = clone.defined_functions()[0]
        before = function_fingerprint(fn)
        fn.add_attribute("readnone")
        assert function_fingerprint(fn) != before

    def test_callee_attribute_flows_into_caller(self):
        m = Module("m")
        callee = Function(m, "callee", FunctionType(I32, [I32]))
        bc = IRBuilder(callee.add_block("entry"))
        bc.ret(bc.add(callee.args[0], IRBuilder.const_int(I32, 1)))
        caller = Function(m, "caller", FunctionType(I32, [I32]))
        b = IRBuilder(caller.add_block("entry"))
        b.ret(b.call(callee, [caller.args[0]], name="c"))
        before = function_fingerprint(caller)
        # The callee's effect attributes change the caller's alias/DCE
        # facts, so the caller's fingerprint must change too.
        callee.add_attribute("readnone")
        assert function_fingerprint(caller) != before

    def test_alignment_change(self, module):
        clone = module.clone()
        for fn in clone.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, (Load, Store)):
                    before = function_fingerprint(fn)
                    inst.alignment *= 2
                    assert function_fingerprint(fn) != before
                    return
        pytest.skip("no load/store in workload")


class TestModuleLevel:
    def test_function_order_insensitive(self, module):
        clone = module.clone()
        before = module_fingerprint(clone)
        clone.functions.reverse()
        assert module_fingerprint(clone) == before

    def test_global_order_insensitive(self, module):
        clone = module.clone()
        if len(clone.globals) < 2:
            pytest.skip("needs at least two globals")
        before = module_fingerprint(clone)
        clone.globals.reverse()
        assert module_fingerprint(clone) == before

    def test_distinct_programs_differ(self):
        a = generate_program(ProgramProfile(name="a", seed=1, segments=4))
        b = generate_program(ProgramProfile(name="b", seed=2, segments=4))
        assert module_fingerprint(a) != module_fingerprint(b)

    def test_fingerprint_is_deterministic_across_calls(self, module):
        assert module_fingerprint(module) == module_fingerprint(module)
