"""Reference interpreter semantics."""

import pytest

from repro.ir import (
    InterpError,
    Interpreter,
    OutOfFuel,
    parse_module,
    run_module,
)
from tests.conftest import build_module


def run(src: str, arg: int, fn: str = "entry"):
    module = build_module(src)
    result, trace = run_module(module, fn, [arg])
    return result


class TestArithmetic:
    def test_wrapping_add(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  %r = add i32 %n, 2147483647
  ret i32 %r
}
"""
        assert run(src, 1) == -(2**31)

    def test_signed_division_truncates(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  %r = sdiv i32 %n, 2
  ret i32 %r
}
"""
        assert run(src, 7) == 3
        assert run(src, -7) == -3  # trunc toward zero, not floor

    def test_srem_sign(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  %r = srem i32 %n, 3
  ret i32 %r
}
"""
        assert run(src, 7) == 1
        assert run(src, -7) == -1

    def test_division_by_zero_traps(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  %r = sdiv i32 1, %n
  ret i32 %r
}
"""
        with pytest.raises(InterpError, match="zero"):
            run(src, 0)

    def test_shifts(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  %a = shl i32 %n, 4
  %b = lshr i32 %a, 2
  %c = ashr i32 %n, 1
  %r = add i32 %b, %c
  ret i32 %r
}
"""
        # shl wraps mod 2^32, lshr is unsigned, ashr keeps the sign.
        a = (-8 << 4) & 0xFFFFFFFF
        b = a >> 2
        c = -8 >> 1
        expected = (b + c) & 0xFFFFFFFF
        if expected > 2**31 - 1:
            expected -= 2**32
        assert run(src, -8) == expected

    def test_unsigned_compare(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  %c = icmp ult i32 %n, 10
  %r = zext i1 %c to i32
  ret i32 %r
}
"""
        assert run(src, 5) == 1
        assert run(src, -1) == 0  # -1 is huge unsigned

    def test_float_ops_and_conversion(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  %f = sitofp i32 %n to double
  %g = fmul double %f, 2.5
  %r = fptosi double %g to i32
  ret i32 %r
}
"""
        assert run(src, 4) == 10
        assert run(src, -4) == -10


class TestMemory:
    def test_alloca_store_load(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
        assert run(src, 42) == 42

    def test_array_gep(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [4 x i32], align 4
  %p0 = gep [4 x i32]* %a, i32 0, i32 0
  %p3 = gep [4 x i32]* %a, i32 0, i32 3
  store i32 11, i32* %p0, align 4
  store i32 %n, i32* %p3, align 4
  %v0 = load i32, i32* %p0, align 4
  %v3 = load i32, i32* %p3, align 4
  %r = add i32 %v0, %v3
  ret i32 %r
}
"""
        assert run(src, 5) == 16

    def test_narrow_types_in_memory(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i8, align 1
  %t = trunc i32 %n to i8
  store i8 %t, i8* %p, align 1
  %v = load i8, i8* %p, align 1
  %r = sext i8 %v to i32
  ret i32 %r
}
"""
        assert run(src, 200) == 200 - 256  # i8 wraps

    def test_global_initializer(self):
        src = """
@g = internal global i32 17, align 4
define i32 @entry(i32 %n) {
entry:
  %v = load i32, i32* @g, align 4
  %r = add i32 %v, %n
  ret i32 %r
}
"""
        assert run(src, 3) == 20

    def test_global_string_bytes(self):
        src = """
@s = internal constant [3 x i8] c"AB\\00", align 1
define i32 @entry(i32 %n) {
entry:
  %p = gep [3 x i8]* @s, i32 0, i32 1
  %v = load i8, i8* %p, align 1
  %r = zext i8 %v to i32
  ret i32 %r
}
"""
        assert run(src, 0) == ord("B")

    def test_memset_intrinsic(self):
        src = """
declare void @llvm.memset.p0i8.i64(i8* %d, i8 %v, i64 %l)
define i32 @entry(i32 %n) {
entry:
  %a = alloca [8 x i8], align 1
  %p = gep [8 x i8]* %a, i32 0, i32 0
  call void @llvm.memset.p0i8.i64(i8* %p, i8 7, i64 8)
  %q = gep [8 x i8]* %a, i32 0, i32 5
  %v = load i8, i8* %q, align 1
  %r = zext i8 %v to i32
  ret i32 %r
}
"""
        assert run(src, 0) == 7

    def test_memcpy_intrinsic(self):
        src = """
declare void @llvm.memcpy.p0i8.p0i8.i64(i8* %d, i8* %s, i64 %l)
@src = internal constant [4 x i8] c"wxyz", align 1
define i32 @entry(i32 %n) {
entry:
  %a = alloca [4 x i8], align 1
  %d = gep [4 x i8]* %a, i32 0, i32 0
  %s = gep [4 x i8]* @src, i32 0, i32 0
  call void @llvm.memcpy.p0i8.p0i8.i64(i8* %d, i8* %s, i64 4)
  %q = gep [4 x i8]* %a, i32 0, i32 2
  %v = load i8, i8* %q, align 1
  %r = zext i8 %v to i32
  ret i32 %r
}
"""
        assert run(src, 0) == ord("y")


class TestControl:
    def test_loop_and_phi(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %loop ]
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %loop, label %out
out:
  ret i32 %acc2
}
"""
        assert run(src, 5) == 0 + 1 + 2 + 3 + 4

    def test_parallel_phi_swap(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  br label %loop
loop:
  %a = phi i32 [ 1, %entry ], [ %b, %loop ]
  %b = phi i32 [ 2, %entry ], [ %a, %loop ]
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %loop, label %out
out:
  %r = mul i32 %a, 10
  %s = add i32 %r, %b
  ret i32 %s
}
"""
        # phis evaluate in parallel: (a,b) swaps each iteration.
        assert run(src, 1) == 12
        assert run(src, 2) == 21

    def test_switch_dispatch(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  switch i32 %n, label %d [ i32 0, label %a  i32 1, label %b ]
a:
  ret i32 100
b:
  ret i32 200
d:
  ret i32 300
}
"""
        assert run(src, 0) == 100
        assert run(src, 1) == 200
        assert run(src, 9) == 300

    def test_unreachable_traps(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  unreachable
}
"""
        with pytest.raises(InterpError, match="unreachable"):
            run(src, 0)

    def test_out_of_fuel(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  br label %spin
spin:
  br label %spin
}
"""
        module = build_module(src)
        with pytest.raises(OutOfFuel):
            run_module(module, "entry", [0], fuel=1000)


class TestCalls:
    def test_internal_call(self):
        src = """
define internal i32 @double(i32 %x) {
entry:
  %r = shl i32 %x, 1
  ret i32 %r
}
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @double(i32 %n)
  ret i32 %r
}
"""
        assert run(src, 21) == 42

    def test_recursion(self):
        src = """
define internal i32 @fact(i32 %n) {
entry:
  %c = icmp sle i32 %n, 1
  br i1 %c, label %base, label %rec
base:
  ret i32 1
rec:
  %n1 = sub i32 %n, 1
  %f = call i32 @fact(i32 %n1)
  %r = mul i32 %n, %f
  ret i32 %r
}
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @fact(i32 %n)
  ret i32 %r
}
"""
        assert run(src, 5) == 120

    def test_external_call_traced_and_stubbed(self):
        src = """
declare i32 @ext(i32 %x)
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @ext(i32 %n)
  ret i32 %r
}
"""
        module = build_module(src)
        result, trace = run_module(module, "entry", [9])
        assert result == 0  # default stub returns zero
        assert trace == [("ext", (9,))]

    def test_external_call_custom_handler(self):
        src = """
declare i32 @ext(i32 %x)
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @ext(i32 %n)
  ret i32 %r
}
"""
        module = build_module(src)
        result, trace = run_module(
            module, "entry", [9], externals={"ext": lambda x: x * 3}
        )
        assert result == 27

    def test_indirect_call_through_global(self):
        src = """
define internal i32 @target(i32 %x) {
entry:
  %r = add i32 %x, 5
  ret i32 %r
}
@fp = internal global i32 (i32)* @target, align 8
define i32 @entry(i32 %n) {
entry:
  %f = load i32 (i32)*, i32 (i32)** @fp, align 8
  %r = call i32 %f(i32 %n)
  ret i32 %r
}
"""
        # Function-pointer globals cannot round-trip the parser; build
        # directly instead.
        from repro.ir import (
            Call,
            ConstantInt,
            Function,
            FunctionType,
            GlobalVariable,
            IRBuilder,
            I32,
            Module,
            PointerType,
        )

        m = Module()
        target = Function(m, "target", FunctionType(I32, [I32]), "internal", ["x"])
        tb = IRBuilder(target.add_block("entry"))
        tb.ret(tb.add(target.args[0], ConstantInt(I32, 5)))
        fp = m.add_global(
            GlobalVariable(
                PointerType(target.ftype), "fp", target, False, "internal"
            )
        )
        entry = Function(m, "entry", FunctionType(I32, [I32]), arg_names=["n"])
        eb = IRBuilder(entry.add_block("entry"))
        loaded = eb.load(fp)
        call = eb.call(loaded, [entry.args[0]])
        eb.ret(call)
        result, _ = run_module(m, "entry", [7])
        assert result == 12

    def test_missing_function(self):
        module = build_module("define i32 @entry(i32 %n) {\nentry:\n  ret i32 %n\n}")
        with pytest.raises(InterpError, match="no such function"):
            run_module(module, "ghost", [1])
