"""Instruction construction, typing rules and classification."""

import pytest

from repro.ir import (
    Alloca,
    Argument,
    ArrayType,
    BinaryOp,
    Branch,
    Call,
    Cast,
    ConstantInt,
    ExtractElement,
    FCmp,
    Function,
    FunctionType,
    GetElementPtr,
    ICmp,
    InsertElement,
    I1,
    I32,
    I64,
    F64,
    Load,
    Module,
    Phi,
    PointerType,
    Ret,
    Select,
    Store,
    StructType,
    Switch,
    Unreachable,
    VectorType,
    INVERTED_PREDICATE,
    SWAPPED_PREDICATE,
)
from repro.ir.module import BasicBlock


def arg(name="x", ty=I32):
    return Argument(ty, name)


class TestBinaryOps:
    def test_result_type(self):
        add = BinaryOp("add", arg(), arg("y"))
        assert add.type == I32

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            BinaryOp("add", arg(ty=I32), arg(ty=I64))

    def test_bad_opcode(self):
        with pytest.raises(ValueError):
            BinaryOp("frobnicate", arg(), arg())

    def test_commutativity(self):
        assert BinaryOp("add", arg(), arg()).is_commutative
        assert BinaryOp("mul", arg(), arg()).is_commutative
        assert not BinaryOp("sub", arg(), arg()).is_commutative
        assert not BinaryOp("shl", arg(), arg()).is_commutative

    def test_division_speculation(self):
        div_by_var = BinaryOp("sdiv", arg(), arg("d"))
        assert not div_by_var.is_speculatable
        div_by_const = BinaryOp("sdiv", arg(), ConstantInt(I32, 4))
        assert div_by_const.is_speculatable
        div_by_zero = BinaryOp("sdiv", arg(), ConstantInt(I32, 0))
        assert not div_by_zero.is_speculatable
        assert BinaryOp("add", arg(), arg()).is_speculatable

    def test_vector_binary(self):
        vty = VectorType(I32, 4)
        v = BinaryOp("add", arg(ty=vty), arg("y", vty))
        assert v.type == vty


class TestComparisons:
    def test_icmp_result_is_i1(self):
        assert ICmp("slt", arg(), arg()).type == I1

    def test_vector_icmp(self):
        vty = VectorType(I32, 4)
        cmp = ICmp("eq", arg(ty=vty), arg("y", vty))
        assert cmp.type == VectorType(I1, 4)

    def test_bad_predicate(self):
        with pytest.raises(ValueError):
            ICmp("lt", arg(), arg())
        with pytest.raises(ValueError):
            FCmp("slt", arg(ty=F64), arg("y", F64))

    def test_predicate_tables_consistent(self):
        for pred, inv in INVERTED_PREDICATE.items():
            assert INVERTED_PREDICATE[inv] == pred
        for pred, swp in SWAPPED_PREDICATE.items():
            assert SWAPPED_PREDICATE[swp] == pred


class TestMemory:
    def test_alloca_type(self):
        a = Alloca(I32)
        assert a.type == PointerType(I32)
        assert a.alignment == 4

    def test_load_store_typing(self):
        a = Alloca(I32)
        load = Load(a)
        assert load.type == I32
        Store(ConstantInt(I32, 1), a)  # ok
        with pytest.raises(TypeError):
            Store(ConstantInt(I64, 1), a)
        with pytest.raises(TypeError):
            Load(arg())  # not a pointer

    def test_effects(self):
        a = Alloca(I32)
        assert Load(a).may_read_memory
        assert not Load(a).may_write_memory
        store = Store(ConstantInt(I32, 0), a)
        assert store.may_write_memory and store.has_side_effects
        assert not Load(a).has_side_effects

    def test_gep_typing_array(self):
        a = Alloca(ArrayType(I32, 8))
        g = GetElementPtr(a, [ConstantInt(I64, 0), ConstantInt(I64, 3)])
        assert g.type == PointerType(I32)
        assert g.constant_offset() == 12

    def test_gep_struct(self):
        s = StructType("s", [I32, I64])
        a = Alloca(s)
        g = GetElementPtr(a, [ConstantInt(I64, 0), ConstantInt(I32, 1)])
        assert g.type == PointerType(I64)
        assert g.constant_offset() == 8

    def test_gep_struct_requires_constant(self):
        s = StructType("s", [I32, I64])
        a = Alloca(s)
        with pytest.raises(TypeError):
            GetElementPtr(a, [ConstantInt(I64, 0), arg("i")])

    def test_gep_scaled_first_index(self):
        p = arg(ty=PointerType(I64))
        g = GetElementPtr(p, [ConstantInt(I64, 3)])
        assert g.constant_offset() == 24

    def test_gep_dynamic_offset_unknown(self):
        a = Alloca(ArrayType(I32, 8))
        g = GetElementPtr(a, [ConstantInt(I64, 0), arg("i", I64)])
        assert g.constant_offset() is None
        assert not g.has_all_constant_indices


class TestPhi:
    def test_incoming_management(self):
        phi = Phi(I32)
        b1, b2 = BasicBlock("a"), BasicBlock("b")
        phi.add_incoming(ConstantInt(I32, 1), b1)
        phi.add_incoming(ConstantInt(I32, 2), b2)
        assert phi.num_incoming == 2
        assert phi.incoming_for_block(b1).value == 1
        assert phi.incoming_for_block(BasicBlock("c")) is None

    def test_unique_value(self):
        phi = Phi(I32)
        b1, b2 = BasicBlock("a"), BasicBlock("b")
        c = ConstantInt(I32, 1)
        phi.add_incoming(c, b1)
        phi.add_incoming(c, b2)
        assert phi.unique_value() is c

    def test_unique_value_ignores_self(self):
        phi = Phi(I32)
        b1, b2 = BasicBlock("a"), BasicBlock("b")
        c = ConstantInt(I32, 1)
        phi.add_incoming(c, b1)
        phi.add_incoming(phi, b2)
        assert phi.unique_value() is c

    def test_unique_value_rejects_same_block_instruction(self):
        # A loop-carried single-entry phi must not fold (dominance).
        block = BasicBlock("h")
        phi = Phi(I32)
        block.append(phi)
        add = BinaryOp("add", phi, ConstantInt(I32, 1))
        block.append(add)
        phi.add_incoming(add, block)
        assert phi.unique_value() is None

    def test_type_mismatch(self):
        phi = Phi(I32)
        with pytest.raises(TypeError):
            phi.add_incoming(ConstantInt(I64, 1), BasicBlock("a"))


class TestControlFlow:
    def test_unconditional_branch(self):
        b = BasicBlock("t")
        br = Branch(b)
        assert not br.is_conditional
        assert br.targets == [b]
        assert br.is_terminator

    def test_conditional_branch(self):
        t, f = BasicBlock("t"), BasicBlock("f")
        cond = ICmp("eq", arg(), arg())
        br = Branch(cond, t, f)
        assert br.is_conditional
        assert br.true_target is t and br.false_target is f

    def test_branch_condition_must_be_i1(self):
        with pytest.raises(TypeError):
            Branch(arg(), BasicBlock("t"), BasicBlock("f"))

    def test_branch_arity(self):
        with pytest.raises(ValueError):
            Branch()

    def test_switch(self):
        d, c1 = BasicBlock("d"), BasicBlock("c1")
        sw = Switch(arg(), d, [(ConstantInt(I32, 1), c1)])
        assert sw.num_cases == 1
        assert sw.targets == [d, c1]
        assert sw.default is d

    def test_ret(self):
        assert Ret().value is None
        assert Ret(arg()).value is not None
        assert Ret().targets == []
        assert Unreachable().is_terminator


class TestCalls:
    def _callee(self, attrs=()):
        m = Module()
        fn = Function(m, "callee", FunctionType(I32, [I32]))
        fn.attributes.update(attrs)
        return fn

    def test_direct_call(self):
        fn = self._callee()
        call = Call(fn, [arg()])
        assert call.type == I32
        assert call.called_function is fn
        assert call.args[0].name == "x"

    def test_call_effects_follow_attributes(self):
        pure = Call(self._callee({"readnone", "willreturn"}), [arg()])
        assert not pure.may_read_memory
        assert not pure.has_side_effects
        ro = Call(self._callee({"readonly", "willreturn"}), [arg()])
        assert ro.may_read_memory and not ro.may_write_memory
        assert not ro.has_side_effects
        unknown = Call(self._callee(), [arg()])
        assert unknown.has_side_effects and unknown.may_write_memory

    def test_call_non_function_rejected(self):
        with pytest.raises(TypeError):
            Call(arg(), [])

    def test_intrinsic_name(self):
        m = Module()
        fn = Function(m, "llvm.expect.i32", FunctionType(I32, [I32, I32]))
        call = Call(fn, [arg(), ConstantInt(I32, 1)])
        assert call.intrinsic_name == "llvm.expect.i32"


class TestMisc:
    def test_select(self):
        s = Select(ICmp("eq", arg(), arg()), arg("a"), arg("b"))
        assert s.type == I32
        with pytest.raises(TypeError):
            Select(ICmp("eq", arg(), arg()), arg(ty=I32), arg(ty=I64))

    def test_cast(self):
        c = Cast("zext", arg(), I64)
        assert c.type == I64
        with pytest.raises(ValueError):
            Cast("bogus", arg(), I64)

    def test_vector_lane_ops(self):
        vty = VectorType(I32, 4)
        v = arg(ty=vty)
        e = ExtractElement(v, ConstantInt(I32, 0))
        assert e.type == I32
        ins = InsertElement(v, arg("s"), ConstantInt(I32, 1))
        assert ins.type == vty
        with pytest.raises(TypeError):
            ExtractElement(arg(), ConstantInt(I32, 0))
        with pytest.raises(TypeError):
            InsertElement(v, arg("s", I64), ConstantInt(I32, 0))

    def test_trivially_dead(self):
        add = BinaryOp("add", arg(), arg())
        assert add.is_trivially_dead
        a = Alloca(I32)
        store = Store(ConstantInt(I32, 0), a)
        assert not store.is_trivially_dead

    def test_clone_impl(self):
        a, b = arg("a"), arg("b")
        add = BinaryOp("add", a, b)
        clone = add.clone_impl([b, a])
        assert clone.opcode == "add"
        assert clone.lhs is b and clone.rhs is a
        assert clone is not add
