"""Cloning edge cases: cross-references, attributes, initializers."""

import pytest

from repro.ir import (
    ConstantInt,
    Function,
    FunctionType,
    GlobalVariable,
    IRBuilder,
    I32,
    Module,
    PointerType,
    run_module,
    verify_module,
)
from repro.ir.clone import clone_blocks_into, clone_function_body
from tests.conftest import build_module


def test_clone_remaps_function_pointer_initializer():
    module = Module()
    target = Function(module, "target", FunctionType(I32, [I32]), "internal", ["x"])
    tb = IRBuilder(target.add_block("entry"))
    tb.ret(tb.add(target.args[0], ConstantInt(I32, 1)))
    module.add_global(
        GlobalVariable(PointerType(target.ftype), "fp", target, True, "internal")
    )
    clone = module.clone()
    cloned_fp = clone.get_global("fp")
    cloned_target = clone.get_function("target")
    # The clone's initializer must reference the clone's function, not the
    # original module's.
    assert cloned_fp.initializer is cloned_target
    assert cloned_fp.initializer is not target


def test_clone_preserves_cross_function_calls():
    module = build_module(
        """
define internal i32 @a(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @a(i32 %n)
  ret i32 %r
}
"""
    )
    clone = module.clone()
    from repro.ir import Call

    call = next(
        i for i in clone.get_function("entry").instructions()
        if isinstance(i, Call)
    )
    assert call.called_function is clone.get_function("a")
    assert run_module(clone, "entry", [4])[0] == 5


def test_clone_blocks_into_maps_backedge_phis():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %loop, label %out
out:
  ret i32 %i2
}
"""
    )
    fn = module.get_function("entry")
    loop = next(b for b in fn.blocks if b.name == "loop")
    vmap = {}
    (copy,) = clone_blocks_into(fn, [loop], vmap, name_suffix=".c")
    # The cloned phi's back edge must point at the cloned block/increment.
    phi = copy.phis()[0]
    incoming = {b.name: v for v, b in phi.incoming()}
    assert f"loop.c" in {b.name for _, b in phi.incoming()}
    cloned_inc = phi.incoming_for_block(copy)
    assert cloned_inc is vmap[id(loop.instructions[1])]


def test_clone_function_body_maps_arguments():
    module = Module()
    src = Function(module, "src", FunctionType(I32, [I32, I32]), arg_names=["a", "b"])
    b = IRBuilder(src.add_block("entry"))
    b.ret(b.add(src.args[0], src.args[1]))
    dst = Function(module, "dst", FunctionType(I32, [I32, I32]), arg_names=["x", "y"])
    clone_function_body(src, dst)
    verify_module(module)
    assert run_module(module, "dst", [2, 3])[0] == 5
    # The clone reads its own arguments, not the source's.
    add = dst.entry.instructions[0]
    assert add.lhs is dst.args[0] and add.rhs is dst.args[1]


def test_repeated_cloning_is_stable():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %r = mul i32 %n, 3
  ret i32 %r
}
"""
    )
    current = module
    for _ in range(5):
        current = current.clone()
        verify_module(current)
    assert run_module(current, "entry", [7])[0] == 21
