"""Flat struct-of-arrays IR core: bit-identical equivalence, invalidation.

The contract under test is exact: every consumer kernel over the flat
view (size, MCA cycles, embeddings) must produce *bit-identical* results
to the object-walking implementations, on arbitrary fuzz-generated
modules, before and after pass pipelines mutate them. Invalidation is
per function — mutating one function rebuilds only its rows.
"""

import gc
import weakref

import numpy as np
import pytest

from repro import observability as obs
from repro.codegen.objfile import object_size
from repro.embeddings.ir2vec import IR2VecEncoder
from repro.ir.fingerprint import function_fingerprint, module_fingerprint
from repro.ir.flat import FlatCore, build_flat_function
from repro.mca.sched import estimate_throughput
from repro.passes import build_pipeline
from repro.testing.generator import FuzzProfile, generate_fuzz_program
from repro.workloads import ProgramProfile, generate_program

FUZZ_SEEDS = range(8)
TARGETS = ("x86-64", "aarch64")


def _fingerprints(module):
    return {fn.name: function_fingerprint(fn) for fn in module.functions}


def _assert_equivalent(module, target, core, encoder):
    fps = _fingerprints(module)
    assert object_size(module, target) == object_size(
        module, target, fingerprints=fps, flat=core
    )
    assert estimate_throughput(module, target) == estimate_throughput(
        module, target, fingerprints=fps, flat=core
    )
    ref = encoder.program_embedding(module)
    got = encoder.program_embedding(module, fingerprints=fps, flat=core)
    assert np.array_equal(ref, got)
    assert module_fingerprint(module) == module_fingerprint(module, fps)


class TestEquivalence:
    @pytest.mark.parametrize("target", TARGETS)
    def test_fuzz_modules_bit_identical(self, target):
        core = FlatCore(target)
        encoder = IR2VecEncoder()
        for seed in FUZZ_SEEDS:
            module = generate_fuzz_program(FuzzProfile(seed=seed))
            _assert_equivalent(module, target, core, encoder)

    @pytest.mark.parametrize("target", TARGETS)
    def test_after_pass_pipelines(self, target):
        """The same warm core stays exact as passes mutate the modules."""
        core = FlatCore(target)
        encoder = IR2VecEncoder()
        for seed in (0, 3, 5):
            module = generate_fuzz_program(FuzzProfile(seed=seed))
            for pipeline in ("O1", "Oz"):
                clone = module.clone()
                build_pipeline(pipeline).run(clone)
                _assert_equivalent(clone, target, core, encoder)

    def test_generated_program(self):
        core = FlatCore("x86-64")
        encoder = IR2VecEncoder()
        module = generate_program(
            ProgramProfile(name="flat-eq", seed=21, segments=12, helpers=4)
        )
        _assert_equivalent(module, "x86-64", core, encoder)

    def test_function_embedding_matches_object_path(self):
        core = FlatCore("x86-64")
        encoder = IR2VecEncoder()
        module = generate_fuzz_program(FuzzProfile(seed=2))
        for fn in module.functions:
            if fn.is_declaration:
                continue
            ref = encoder._compute_function_embedding(fn)
            ff = core.get(fn, function_fingerprint(fn))
            assert np.array_equal(ref, encoder.flat_function_embedding(ff))


class TestFlatFunction:
    def test_layout_invariants(self):
        core = FlatCore("x86-64")
        module = generate_fuzz_program(FuzzProfile(seed=1))
        for fn in module.functions:
            if fn.is_declaration:
                continue
            ff = core.get(fn, function_fingerprint(fn))
            assert ff.n_inst == sum(len(b.instructions) for b in fn.blocks)
            assert ff.block_offsets[0] == 0
            assert ff.block_offsets[-1] == ff.n_inst
            assert (np.diff(ff.block_offsets) >= 0).all()
            assert ff.kind_counts.shape == (ff.n_inst, 6)
            assert int(ff.fn_mop_counts.sum()) == int(ff.block_uops.sum())
            assert ff.nbytes > 0

    def test_no_object_ir_retained(self):
        """A cached FlatFunction must not keep the (cloned) module alive."""
        core = FlatCore("x86-64")
        module = generate_fuzz_program(FuzzProfile(seed=4))
        refs = []
        for fn in module.functions:
            if fn.is_declaration:
                continue
            core.get(fn, function_fingerprint(fn))
            refs.append(weakref.ref(fn))
        assert refs
        del module, fn
        gc.collect()
        assert all(r() is None for r in refs)

    def test_digest_keying_and_reuse(self):
        core = FlatCore("x86-64")
        module = generate_fuzz_program(FuzzProfile(seed=0))
        fn = next(f for f in module.functions if not f.is_declaration)
        fp = function_fingerprint(fn)
        first = core.get(fn, fp)
        assert core.get(fn, fp) is first
        clone = module.clone()
        fn2 = clone.get_function(fn.name)
        assert core.get(fn2, function_fingerprint(fn2)) is first


class TestInvalidation:
    def _measure(self, module, core, encoder):
        fps = _fingerprints(module)
        return (
            object_size(module, "x86-64", fingerprints=fps, flat=core),
            estimate_throughput(module, "x86-64", fingerprints=fps, flat=core),
            encoder.program_embedding(module, fingerprints=fps, flat=core),
        )

    def test_mutating_one_function_rebuilds_only_its_rows(self):
        core = FlatCore("x86-64")
        encoder = IR2VecEncoder()
        module = generate_fuzz_program(FuzzProfile(seed=6))
        defined = [f for f in module.functions if not f.is_declaration]
        self._measure(module, core, encoder)
        assert core.builds == len(defined)

        target_fn = defined[-1]
        first_inst = target_fn.blocks[0].instructions[0]
        first_inst.meta["flat-test"] = "mutated"
        size, mca, emb = self._measure(module, core, encoder)

        assert core.builds == len(defined) + 1
        assert core.invalidations == 1
        rebuilt = sum(len(b.instructions) for b in target_fn.blocks)
        total = sum(
            len(b.instructions) for f in defined for b in f.blocks
        )
        assert core.row_rebuilds == total + rebuilt

        # Results after the localized rebuild are still exactly the
        # object path's.
        assert size == object_size(module, "x86-64")
        assert mca == estimate_throughput(module, "x86-64")
        assert np.array_equal(emb, encoder.program_embedding(module))

    def test_unchanged_measure_builds_nothing(self):
        core = FlatCore("x86-64")
        encoder = IR2VecEncoder()
        module = generate_fuzz_program(FuzzProfile(seed=7))
        self._measure(module, core, encoder)
        builds = core.builds
        for _ in range(3):
            self._measure(module, core, encoder)
        assert core.builds == builds
        assert core.invalidations == 0


class TestMetricsEngineIntegration:
    def test_flat_engine_matches_object_engine(self):
        module = generate_fuzz_program(FuzzProfile(seed=3))
        from repro.core.metrics import MetricsEngine

        flat_engine = MetricsEngine(enabled=True, flat=True)
        object_engine = MetricsEngine(enabled=True, flat=False)
        a = flat_engine.measure(module.clone())
        b = object_engine.measure(module.clone())
        assert a.size == b.size
        assert a.cycles == b.cycles
        assert a.throughput == b.throughput
        assert np.array_equal(a.embedding, b.embedding)
        assert a.size_report == b.size_report
        assert a.mca == b.mca

    def test_stats_expose_flat_core(self):
        from repro.core.metrics import MetricsEngine

        module = generate_fuzz_program(FuzzProfile(seed=3))
        engine = MetricsEngine(enabled=True, flat=True)
        engine.measure(module)
        stats = engine.stats()
        assert stats["flat"]["builds"] > 0
        assert stats["flat"]["row_rebuilds"] > 0
        assert stats["flat"]["bytes_resident"] > 0
        no_flat = MetricsEngine(enabled=True, flat=False)
        assert "flat" not in no_flat.stats()
        disabled = MetricsEngine(enabled=False)
        assert disabled.stats() == {"enabled": {"enabled": 0.0}}

    def test_clear_resets_flat_core(self):
        from repro.core.metrics import MetricsEngine

        module = generate_fuzz_program(FuzzProfile(seed=3))
        engine = MetricsEngine(enabled=True, flat=True)
        engine.measure(module)
        assert engine.stats()["flat"]["builds"] > 0
        engine.clear()
        assert engine.stats()["flat"]["builds"] == 0


class TestObservability:
    @pytest.fixture
    def enabled(self):
        registry, tracer = obs.enable()
        try:
            yield registry, tracer
        finally:
            obs.disable()

    def test_flat_counters_published(self, enabled):
        registry, _ = enabled
        core = FlatCore("x86-64")
        module = generate_fuzz_program(FuzzProfile(seed=5))
        defined = 0
        for fn in module.functions:
            if fn.is_declaration:
                continue
            core.get(fn, function_fingerprint(fn))
            defined += 1
        assert registry.get_value("repro_ir_flat_builds_total") == defined
        assert (
            registry.get_value("repro_ir_flat_row_rebuilds_total")
            == core.row_rebuilds
        )
        assert registry.get_value("repro_ir_flat_invalidations_total") == 0
        assert registry.get_value("repro_ir_flat_bytes_resident") >= float(
            core.bytes_resident()
        )
