"""Type system: interning, layout, wrapping."""

import pytest

from repro.ir import (
    ArrayType,
    F32,
    F64,
    FunctionType,
    I1,
    I8,
    I16,
    I32,
    I64,
    IntType,
    PointerType,
    StructType,
    VectorType,
    VOID,
    ptr,
)


class TestInterning:
    def test_int_types_are_interned(self):
        assert IntType(32) is IntType(32)
        assert IntType(32) is I32

    def test_distinct_widths_differ(self):
        assert IntType(32) is not IntType(64)
        assert I32 != I64

    def test_pointer_interning(self):
        assert PointerType(I32) is PointerType(I32)
        assert ptr(I32) is PointerType(I32)
        assert PointerType(I32) is not PointerType(I64)

    def test_array_interning(self):
        assert ArrayType(I32, 4) is ArrayType(I32, 4)
        assert ArrayType(I32, 4) is not ArrayType(I32, 5)

    def test_vector_interning(self):
        assert VectorType(F32, 4) is VectorType(F32, 4)

    def test_function_type_interning(self):
        a = FunctionType(I32, [I32, I64])
        b = FunctionType(I32, [I32, I64])
        assert a is b
        assert a is not FunctionType(I32, [I32])

    def test_nested_structural_equality(self):
        assert ptr(ArrayType(I32, 8)) is ptr(ArrayType(I32, 8))

    def test_invalid_int_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(13)

    def test_invalid_float_width_rejected(self):
        from repro.ir import FloatType

        with pytest.raises(ValueError):
            FloatType(16)


class TestLayout:
    def test_scalar_sizes(self):
        assert I1.size == 1
        assert I8.size == 1
        assert I16.size == 2
        assert I32.size == 4
        assert I64.size == 8
        assert F32.size == 4
        assert F64.size == 8
        assert ptr(I8).size == 8
        assert VOID.size == 0

    def test_array_size(self):
        assert ArrayType(I32, 10).size == 40
        assert ArrayType(ArrayType(I16, 3), 2).size == 12

    def test_vector_size(self):
        assert VectorType(I32, 4).size == 16
        assert VectorType(F64, 2).size == 16

    def test_struct_layout_with_padding(self):
        s = StructType("s", [I8, I32, I8])
        assert s.field_offset(0) == 0
        assert s.field_offset(1) == 4  # padded to i32 alignment
        assert s.field_offset(2) == 8
        assert s.size == 12  # rounded up to alignment 4

    def test_struct_empty(self):
        assert StructType("e", []).size == 0

    def test_alignment(self):
        assert I32.alignment == 4
        assert I64.alignment == 8
        assert VectorType(I32, 4).alignment == 16
        assert ArrayType(I64, 3).alignment == 8

    def test_function_type_has_no_size(self):
        with pytest.raises(TypeError):
            FunctionType(VOID, []).size


class TestClassification:
    def test_predicates(self):
        assert I1.is_bool and I1.is_int
        assert not I32.is_bool and I32.is_int
        assert F64.is_float
        assert ptr(I32).is_pointer
        assert ArrayType(I8, 2).is_aggregate
        assert StructType("x", [I8]).is_aggregate
        assert not VectorType(I32, 4).is_aggregate
        assert VOID.is_void and not VOID.is_first_class
        assert I32.is_first_class

    def test_vector_element_constraint(self):
        with pytest.raises(ValueError):
            VectorType(ptr(I8), 4)


class TestWrapping:
    def test_wrap_signed(self):
        assert I8.wrap(127) == 127
        assert I8.wrap(128) == -128
        assert I8.wrap(255) == -1
        assert I8.wrap(256) == 0
        assert I8.wrap(-129) == 127

    def test_wrap_unsigned(self):
        assert I8.wrap_unsigned(-1) == 255
        assert I8.wrap_unsigned(256) == 0

    def test_i1_wrap(self):
        assert I1.wrap(1) == 1
        assert I1.wrap(2) == 0
        assert I1.min_value == 0
        assert I1.max_signed == 1

    def test_bounds(self):
        assert I32.max_signed == 2**31 - 1
        assert I32.min_value == -(2**31)
        assert I32.max_unsigned == 2**32 - 1

    def test_str_forms(self):
        assert str(I32) == "i32"
        assert str(F32) == "float"
        assert str(F64) == "double"
        assert str(ptr(I32)) == "i32*"
        assert str(ArrayType(I32, 3)) == "[3 x i32]"
        assert str(VectorType(I32, 4)) == "<4 x i32>"
