"""IRBuilder conveniences."""

import pytest

from repro.ir import (
    ArrayType,
    ConstantInt,
    F64,
    Function,
    FunctionType,
    IRBuilder,
    I1,
    I32,
    I64,
    Module,
    Phi,
    VectorType,
    run_module,
    verify_module,
)
from tests.conftest import make_simple_function


def test_auto_naming_is_unique():
    module, fn, b = make_simple_function()
    values = [b.add(fn.args[0], ConstantInt(I32, i)) for i in range(20)]
    b.ret(values[-1])
    names = [v.name for v in values]
    assert len(set(names)) == len(names)


def test_every_binary_helper():
    module, fn, b = make_simple_function()
    x = fn.args[0]
    ops = [
        b.add(x, x), b.sub(x, x), b.mul(x, x),
        b.and_(x, x), b.or_(x, x), b.xor(x, x),
        b.shl(x, ConstantInt(I32, 1)), b.lshr(x, ConstantInt(I32, 1)),
        b.ashr(x, ConstantInt(I32, 1)),
        b.sdiv(x, ConstantInt(I32, 3)), b.udiv(x, ConstantInt(I32, 3)),
        b.srem(x, ConstantInt(I32, 3)),
    ]
    acc = ops[0]
    for v in ops[1:]:
        acc = b.add(acc, v)
    b.ret(acc)
    verify_module(module)
    expected_opcodes = {
        "add", "sub", "mul", "and", "or", "xor",
        "shl", "lshr", "ashr", "sdiv", "udiv", "srem",
    }
    assert expected_opcodes <= {i.opcode for i in fn.instructions()}


def test_float_helpers():
    module = Module()
    fn = Function(module, "f", FunctionType(F64, [F64]), arg_names=["x"])
    b = IRBuilder(fn.add_block("entry"))
    x = fn.args[0]
    v = b.fadd(x, b.fmul(x, b.fsub(x, b.fdiv(x, b.const_float(F64, 2.0)))))
    b.ret(v)
    verify_module(module)


def test_phi_inserted_before_non_phis():
    module, fn, b = make_simple_function()
    loop = fn.add_block("loop")
    b.br(loop)
    b.set_insert_point(loop)
    add = b.add(fn.args[0], ConstantInt(I32, 1))
    phi = b.phi(I32)  # must land before the add
    phi.add_incoming(fn.args[0], fn.entry)
    phi.add_incoming(add, loop)
    b.cond_br(b.icmp("slt", add, ConstantInt(I32, 10)), loop, loop)
    assert loop.instructions[0] is phi


def test_cast_helpers_roundtrip_semantics():
    module, fn, b = make_simple_function()
    x = fn.args[0]
    wide = b.sext(x, I64)
    narrow = b.trunc(wide, I32)
    as_fp = b.sitofp(narrow, F64)
    back = b.fptosi(as_fp, I32)
    b.ret(back)
    verify_module(module)
    assert run_module(module, "f", [-42])[0] == -42


def test_vector_helpers():
    module, fn, b = make_simple_function()
    vty = VectorType(I32, 4)
    arr = b.alloca(ArrayType(I32, 4))
    p = b.gep(arr, [ConstantInt(I64, 0), ConstantInt(I64, 0)])
    for i in range(4):
        q = b.gep(arr, [ConstantInt(I64, 0), ConstantInt(I64, i)])
        b.store(ConstantInt(I32, i * 10), q)
    vp = b.bitcast(p, __import__("repro.ir", fromlist=["ptr"]).ptr(vty))
    vec = b.load(vp)
    doubled = b.add(vec, vec)
    lane = b.extractelement(doubled, ConstantInt(I32, 3))
    b.ret(lane)
    verify_module(module)
    assert run_module(module, "f", [0])[0] == 60


def test_switch_builder():
    module, fn, b = make_simple_function()
    a, d = fn.add_block("a"), fn.add_block("d")
    b.switch(fn.args[0], d, [(ConstantInt(I32, 1), a)])
    IRBuilder(a).ret(ConstantInt(I32, 10))
    IRBuilder(d).ret(ConstantInt(I32, 20))
    verify_module(module)
    assert run_module(module, "f", [1])[0] == 10
    assert run_module(module, "f", [2])[0] == 20


def test_select_and_unreachable():
    module, fn, b = make_simple_function()
    c = b.icmp("sgt", fn.args[0], ConstantInt(I32, 0))
    v = b.select(c, ConstantInt(I32, 1), ConstantInt(I32, -1))
    b.ret(v)
    verify_module(module)
    assert run_module(module, "f", [9])[0] == 1
    assert run_module(module, "f", [-9])[0] == -1


def test_emit_requires_insert_point():
    b = IRBuilder()
    with pytest.raises(AssertionError):
        b.add(ConstantInt(I32, 1), ConstantInt(I32, 2))
