"""Interpreter coverage for the long tail of operations."""

import math

import pytest

from repro.ir import run_module
from tests.conftest import build_module


def run(src, arg=0, fn="entry"):
    return run_module(build_module(src), fn, [arg])[0]


def test_frem():
    src = """
define i32 @entry(i32 %n) {
entry:
  %f = sitofp i32 %n to double
  %r = frem double %f, 3.0
  %i = fptosi double %r to i32
  ret i32 %i
}
"""
    assert run(src, 7) == 1
    assert run(src, -7) == -1  # fmod keeps dividend sign


def test_uitofp():
    src = """
define i32 @entry(i32 %n) {
entry:
  %t = trunc i32 %n to i8
  %f = uitofp i8 %t to double
  %i = fptosi double %f to i32
  ret i32 %i
}
"""
    assert run(src, 255) == 255  # unsigned interpretation of 0xff


def test_fptrunc_rounds_to_binary32():
    src = """
define i32 @entry(i32 %n) {
entry:
  %d = sitofp i32 16777217 to double
  %s = fptrunc double %d to float
  %b = fpext float %s to double
  %i = fptosi double %b to i32
  ret i32 %i
}
"""
    # 2^24+1 is not representable in binary32: rounds to 2^24.
    assert run(src) == 16777216


def test_ptrtoint_inttoptr_roundtrip():
    src = """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  %a = ptrtoint i32* %p to i64
  %q = inttoptr i64 %a to i32*
  %v = load i32, i32* %q, align 4
  ret i32 %v
}
"""
    assert run(src, 77) == 77


def test_vector_division_per_lane():
    src = """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [4 x i32], align 16
  %p0 = gep [4 x i32]* %a, i32 0, i32 0
  store i32 10, i32* %p0, align 4
  %p1 = gep [4 x i32]* %a, i32 0, i32 1
  store i32 21, i32* %p1, align 4
  %p2 = gep [4 x i32]* %a, i32 0, i32 2
  store i32 32, i32* %p2, align 4
  %p3 = gep [4 x i32]* %a, i32 0, i32 3
  store i32 43, i32* %p3, align 4
  %vp = bitcast i32* %p0 to <4 x i32>*
  %v = load <4 x i32>, <4 x i32>* %vp, align 16
  %d = sdiv <4 x i32> %v, <i32 10, i32 10, i32 10, i32 10>
  %l = extractelement <4 x i32> %d, i32 3
  ret i32 %l
}
"""
    assert run(src) == 4


def test_vector_compare_lanes():
    src = """
define i32 @entry(i32 %n) {
entry:
  %c = icmp slt <4 x i32> <i32 1, i32 5, i32 2, i32 9>, <i32 3, i32 3, i32 3, i32 3>
  %e = extractelement <4 x i1> %c, i32 0
  %z = zext i1 %e to i32
  ret i32 %z
}
"""
    assert run(src) == 1


def test_llvm_abs_intrinsic():
    src = """
declare i32 @llvm.abs.i32(i32 %v)
define i32 @entry(i32 %n) {
entry:
  %a = call i32 @llvm.abs.i32(i32 %n)
  ret i32 %a
}
"""
    assert run(src, -9) == 9


def test_void_function_call():
    src = """
@g = global i32 0, align 4
define internal void @poke(i32 %v) {
entry:
  store i32 %v, i32* @g, align 4
  ret void
}
define i32 @entry(i32 %n) {
entry:
  call void @poke(i32 %n)
  %r = load i32, i32* @g, align 4
  ret i32 %r
}
"""
    assert run(src, 31) == 31


def test_deep_but_bounded_recursion():
    src = """
define internal i32 @down(i32 %k) {
entry:
  %c = icmp sle i32 %k, 0
  br i1 %c, label %base, label %rec
base:
  ret i32 0
rec:
  %k1 = sub i32 %k, 1
  %r = call i32 @down(i32 %k1)
  %s = add i32 %r, 1
  ret i32 %s
}
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @down(i32 200)
  ret i32 %r
}
"""
    assert run(src) == 200


def test_trace_ordering_of_external_calls():
    src = """
declare void @mark(i32)
define i32 @entry(i32 %n) {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  call void @mark(i32 %i)
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 3
  br i1 %c, label %loop, label %out
out:
  ret i32 0
}
"""
    _, trace = run_module(build_module(src), "entry", [0])
    assert trace == [("mark", (0,)), ("mark", (1,)), ("mark", (2,))]
