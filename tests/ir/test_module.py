"""Modules, functions, blocks, cloning."""

import pytest

from repro.ir import (
    ConstantInt,
    Function,
    FunctionType,
    GlobalVariable,
    IRBuilder,
    I32,
    Module,
    run_module,
    verify_module,
)
from tests.conftest import LOOP_MODULE, build_module


class TestModuleSymbols:
    def test_add_and_lookup(self):
        m = Module("m")
        fn = Function(m, "f", FunctionType(I32, []))
        g = m.add_global(GlobalVariable(I32, "g", ConstantInt(I32, 1)))
        assert m.get_function("f") is fn
        assert m.get_global("g") is g
        assert m.get_function("g") is None
        assert m.get_global("f") is None

    def test_duplicate_symbol_rejected(self):
        m = Module("m")
        Function(m, "f", FunctionType(I32, []))
        with pytest.raises(ValueError):
            Function(m, "f", FunctionType(I32, []))

    def test_remove(self):
        m = Module("m")
        fn = Function(m, "f", FunctionType(I32, []))
        m.remove_function(fn)
        assert m.get_function("f") is None
        assert fn.module is None

    def test_rename(self):
        m = Module("m")
        fn = Function(m, "f", FunctionType(I32, []))
        m.rename_symbol(fn, "h")
        assert m.get_function("h") is fn
        assert m.get_function("f") is None

    def test_unique_symbol_name(self):
        m = Module("m")
        Function(m, "f", FunctionType(I32, []))
        assert m.unique_symbol_name("f") == "f.1"
        assert m.unique_symbol_name("other") == "other"

    def test_get_or_insert(self):
        m = Module("m")
        a = m.get_or_insert_function("memset", FunctionType(I32, []))
        b = m.get_or_insert_function("memset", FunctionType(I32, []))
        assert a is b


class TestFunction:
    def test_args_from_signature(self):
        m = Module("m")
        fn = Function(m, "f", FunctionType(I32, [I32, I32]), arg_names=["a", "b"])
        assert [a.name for a in fn.args] == ["a", "b"]
        assert fn.args[0].type == I32
        assert fn.args[1].index == 1

    def test_declaration(self):
        m = Module("m")
        fn = Function(m, "ext", FunctionType(I32, [I32]))
        assert fn.is_declaration
        assert fn not in m.defined_functions()

    def test_intrinsic_detection(self):
        m = Module("m")
        assert Function(m, "llvm.memset.p0i8.i64", FunctionType(I32, [])).is_intrinsic
        assert not Function(m, "memset", FunctionType(I32, [])).is_intrinsic

    def test_instruction_count(self, loop_module):
        fn = loop_module.get_function("entry")
        assert fn.instruction_count == sum(
            len(b.instructions) for b in fn.blocks
        )

    def test_next_name_unique(self):
        m = Module("m")
        fn = Function(m, "f", FunctionType(I32, []))
        names = {fn.next_name() for _ in range(100)}
        assert len(names) == 100


class TestBasicBlock:
    def test_cfg_queries(self, loop_module):
        fn = loop_module.get_function("entry")
        by_name = {b.name: b for b in fn.blocks}
        header = by_name["header"]
        assert sorted(b.name for b in header.successors()) == ["body", "exit"]
        assert sorted(b.name for b in header.predecessors()) == ["entry", "latch"]
        assert by_name["body"].single_predecessor is header
        assert by_name["latch"].single_successor is header

    def test_phis_and_first_non_phi(self, loop_module):
        fn = loop_module.get_function("entry")
        header = next(b for b in fn.blocks if b.name == "header")
        assert len(header.phis()) == 2
        assert header.first_non_phi.opcode == "icmp"

    def test_terminator(self, loop_module):
        fn = loop_module.get_function("entry")
        for block in fn.blocks:
            assert block.is_terminated


class TestClone:
    def test_clone_is_deep_and_equivalent(self, loop_module):
        clone = loop_module.clone()
        verify_module(clone)
        # No shared functions/blocks/instructions.
        orig_ids = {id(i) for f in loop_module.functions for i in f.instructions()}
        clone_ids = {id(i) for f in clone.functions for i in f.instructions()}
        assert not (orig_ids & clone_ids)
        for n in (0, 1, 5, 9):
            r1, _ = run_module(loop_module, "entry", [n])
            r2, _ = run_module(clone, "entry", [n])
            assert r1 == r2

    def test_clone_preserves_globals_and_attrs(self):
        m = build_module(LOOP_MODULE)
        m.add_global(GlobalVariable(I32, "g", ConstantInt(I32, 9), True, "internal"))
        m.get_function("entry").attributes.add("optsize")
        c = m.clone()
        g = c.get_global("g")
        assert g is not None and g.is_constant and g.is_internal
        assert "optsize" in c.get_function("entry").attributes

    def test_mutating_clone_leaves_original(self, loop_module):
        before, _ = run_module(loop_module, "entry", [6])
        clone = loop_module.clone()
        fn = clone.get_function("entry")
        # Nuke the clone's body.
        for block in list(fn.blocks):
            for inst in list(block.instructions):
                inst.drop_all_operands()
            block.erase_from_parent()
        b = IRBuilder(fn.add_block("entry"))
        b.ret(ConstantInt(I32, 0))
        after, _ = run_module(loop_module, "entry", [6])
        assert before == after
