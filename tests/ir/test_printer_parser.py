"""Textual IR round-trips and parse diagnostics."""

import pytest

from repro.ir import (
    ParseError,
    parse_module,
    print_module,
    run_module,
    verify_module,
)
from tests.conftest import DIAMOND_MODULE, LOOP_MODULE, build_module


ROUNDTRIP_SOURCES = {
    "loop": LOOP_MODULE,
    "diamond": DIAMOND_MODULE,
    "globals": """
@g = internal global i32 42, align 4
@arr = global [4 x i32] zeroinitializer, align 4
@msg = internal constant [3 x i8] c"ok\\00", align 1

define i32 @entry(i32 %n) {
entry:
  %p = load i32, i32* @g, align 4
  %q = gep [4 x i32]* @arr, i64 0, i64 2
  %v = load i32, i32* %q, align 4
  %r = add i32 %p, %v
  ret i32 %r
}
""",
    "calls": """
declare i32 @ext(i32)

define internal i32 @helper(i32 %x, i32 %y) {
entry:
  %s = add i32 %x, %y
  ret i32 %s
}

define i32 @entry(i32 %n) {
entry:
  %a = call i32 @helper(i32 %n, i32 3)
  %b = call i32 @ext(i32 %a)
  %c = tail call i32 @helper(i32 %b, i32 %b)
  ret i32 %c
}
""",
    "switch_select": """
define i32 @entry(i32 %n) {
entry:
  switch i32 %n, label %def [ i32 0, label %zero  i32 1, label %one ]
zero:
  br label %join
one:
  br label %join
def:
  br label %join
join:
  %x = phi i32 [ 10, %zero ], [ 20, %one ], [ 30, %def ]
  %c = icmp sgt i32 %x, 15
  %s = select i1 %c, i32 %x, i32 0
  ret i32 %s
}
""",
    "vectors": """
define i32 @entry(i32 %n) {
entry:
  %buf = alloca [8 x i32], align 16
  %p0 = gep [8 x i32]* %buf, i32 0, i32 0
  store i32 %n, i32* %p0, align 4
  %vp = bitcast i32* %p0 to <4 x i32>*
  %v = load <4 x i32>, <4 x i32>* %vp, align 16
  %w = add <4 x i32> %v, %v
  %e = extractelement <4 x i32> %w, i32 0
  ret i32 %e
}
""",
    "casts_fp": """
define i32 @entry(i32 %n) {
entry:
  %w = sext i32 %n to i64
  %t = trunc i64 %w to i32
  %f = sitofp i32 %t to double
  %g = fadd double %f, 2.5
  %h = fptosi double %g to i32
  %z = zext i32 %h to i64
  %u = trunc i64 %z to i32
  ret i32 %u
}
""",
}


@pytest.mark.parametrize("name", sorted(ROUNDTRIP_SOURCES))
def test_roundtrip_preserves_semantics(name):
    module = build_module(ROUNDTRIP_SOURCES[name])
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    text2 = print_module(reparsed)
    assert text == text2, "printer output must be a fixpoint"
    for n in (0, 1, 7):
        r1, _ = run_module(module, "entry", [n])
        r2, _ = run_module(reparsed, "entry", [n])
        assert r1 == r2


def test_forward_phi_references_resolve():
    m = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %next, %loop ]
  %next = add i32 %i, 1
  %c = icmp slt i32 %next, %n
  br i1 %c, label %loop, label %out
out:
  ret i32 %i
}
"""
    )
    r, _ = run_module(m, "entry", [5])
    assert r == 4


def test_parse_error_reports_bad_token():
    with pytest.raises(ParseError):
        parse_module("define i32 @f() { entry: ret i32 $bad }")


def test_parse_error_undefined_local():
    with pytest.raises(ParseError, match="undefined locals"):
        parse_module(
            """
define i32 @f() {
entry:
  %a = add i32 %missing, 1
  ret i32 %a
}
"""
        )


def test_parse_error_unknown_symbol():
    with pytest.raises(ParseError, match="unknown symbol"):
        parse_module(
            """
define i32 @f() {
entry:
  %v = load i32, i32* @nope, align 4
  ret i32 %v
}
"""
        )


def test_parse_error_unknown_opcode():
    with pytest.raises(ParseError, match="unknown instruction"):
        parse_module(
            """
define i32 @f() {
entry:
  %v = launder i32 1, 2
  ret i32 %v
}
"""
        )


def test_redefinition_rejected():
    with pytest.raises(ParseError, match="redefinition"):
        parse_module(
            """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %a = add i32 %x, 2
  ret i32 %a
}
"""
        )


def test_comments_and_whitespace_ignored():
    m = parse_module(
        """
; leading comment
define i32 @entry(i32 %n) { ; trailing
entry:
  ; interior
  ret i32 %n
}
"""
    )
    r, _ = run_module(m, "entry", [3])
    assert r == 3


def test_printer_uniquifies_colliding_names():
    from repro.ir import Function, FunctionType, IRBuilder, I32, Module, ConstantInt

    m = Module()
    fn = Function(m, "f", FunctionType(I32, [I32]), arg_names=["x"])
    b = IRBuilder(fn.add_block("entry"))
    v1 = b.add(fn.args[0], ConstantInt(I32, 1), "v")
    v2 = b.add(v1, ConstantInt(I32, 2), "v")  # same name on purpose
    b.ret(v2)
    text = print_module(m)
    reparsed = parse_module(text)
    r, _ = run_module(reparsed, "f", [1])
    assert r == 4


def test_vararg_declaration_roundtrip():
    m = build_module("declare i32 @printf(i8* %fmt, ...)\n")
    text = print_module(m)
    m2 = parse_module(text)
    fn = m2.get_function("printf")
    assert fn is not None and fn.ftype.vararg


def test_vectorized_module_roundtrips():
    """Modules produced by -loop-vectorize (vector constants, splats)
    must survive the text round-trip."""
    from repro.passes import run_passes

    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [16 x i32], align 16
  br label %init
init:
  %j = phi i32 [ 0, %entry ], [ %j2, %init ]
  %jp = gep [16 x i32]* %a, i32 0, i32 %j
  store i32 %j, i32* %jp, align 4
  %j2 = add i32 %j, 1
  %jc = icmp slt i32 %j2, 16
  br i1 %jc, label %init, label %exit
exit:
  %q = gep [16 x i32]* %a, i32 0, i32 9
  %v = load i32, i32* %q, align 4
  %w = add i32 %v, %n
  ret i32 %w
}
"""
    )
    run_passes(module, ["loop-vectorize"])
    from repro.ir import VectorType

    assert any(
        isinstance(i.type, VectorType)
        for i in module.get_function("entry").instructions()
        if not i.type.is_void
    )
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    for arg in (0, 4):
        a, _ = run_module(module, "entry", [arg])
        b, _ = run_module(reparsed, "entry", [arg])
        assert a == b
