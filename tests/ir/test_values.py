"""Value graph: uses, RAUW, constants, globals."""

import pytest

from repro.ir import (
    Argument,
    BinaryOp,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    ConstantVector,
    ArrayType,
    GlobalVariable,
    I1,
    I8,
    I32,
    F64,
    PointerType,
    UndefValue,
    VectorType,
    make_constant,
    zero,
)


class TestUseLists:
    def test_operands_register_uses(self):
        a = Argument(I32, "a")
        b = Argument(I32, "b")
        add = BinaryOp("add", a, b)
        assert a.num_uses == 1
        assert b.num_uses == 1
        assert add.operands == [a, b]

    def test_same_operand_twice(self):
        a = Argument(I32, "a")
        add = BinaryOp("add", a, a)
        assert a.num_uses == 2
        assert len(list(a.users())) == 1

    def test_set_operand_updates_uses(self):
        a, b, c = (Argument(I32, n) for n in "abc")
        add = BinaryOp("add", a, b)
        add.set_operand(1, c)
        assert b.num_uses == 0
        assert c.num_uses == 1
        assert add.rhs is c

    def test_replace_all_uses_with(self):
        a, b, c = (Argument(I32, n) for n in "abc")
        add1 = BinaryOp("add", a, b)
        add2 = BinaryOp("add", a, a)
        a.replace_all_uses_with(c)
        assert a.num_uses == 0
        assert c.num_uses == 3
        assert add1.lhs is c and add2.lhs is c and add2.rhs is c

    def test_rauw_self_is_noop(self):
        a = Argument(I32, "a")
        add = BinaryOp("add", a, a)
        a.replace_all_uses_with(a)
        assert a.num_uses == 2

    def test_drop_all_operands(self):
        a, b = Argument(I32, "a"), Argument(I32, "b")
        add = BinaryOp("add", a, b)
        add.drop_all_operands()
        assert a.num_uses == 0 and b.num_uses == 0
        assert add.num_operands == 0

    def test_remove_operand_reindexes(self):
        from repro.ir import Phi
        from repro.ir.module import BasicBlock

        phi = Phi(I32)
        b1, b2 = BasicBlock("b1"), BasicBlock("b2")
        phi.add_incoming(ConstantInt(I32, 1), b1)
        phi.add_incoming(ConstantInt(I32, 2), b2)
        phi.remove_incoming(b1)
        assert phi.num_incoming == 1
        assert phi.incoming_block(0) is b2
        # Use indices are consistent after removal.
        for use in b2.uses:
            assert use.user.operand(use.index) is b2


class TestConstants:
    def test_int_canonical_signed(self):
        c = ConstantInt(I8, 255)
        assert c.value == -1
        assert c.unsigned == 255
        assert c.is_all_ones()

    def test_predicates(self):
        assert ConstantInt(I32, 0).is_zero()
        assert ConstantInt(I32, 1).is_one()
        assert ConstantInt(I32, 8).is_power_of_two()
        assert ConstantInt(I32, 8).log2() == 3
        assert not ConstantInt(I32, 6).is_power_of_two()
        assert not ConstantInt(I32, 0).is_power_of_two()

    def test_bool_refs(self):
        assert ConstantInt(I1, 1).ref() == "true"
        assert ConstantInt(I1, 0).ref() == "false"
        assert ConstantInt(I32, -5).ref() == "-5"

    def test_float(self):
        c = ConstantFloat(F64, 1.5)
        assert c.is_one() is False
        assert ConstantFloat(F64, 1.0).is_one()
        assert ConstantFloat(F64, 0.0).is_zero()

    def test_null_undef(self):
        n = ConstantNull(PointerType(I32))
        assert n.is_zero()
        assert n.ref() == "null"
        assert UndefValue(I32).ref() == "undef"

    def test_array_and_string(self):
        arr = ConstantArray(ArrayType(I8, 2), [ConstantInt(I8, 0), ConstantInt(I8, 0)])
        assert arr.is_zero()
        s = ConstantString(b"hi\x00")
        assert s.type == ArrayType(I8, 3)
        assert not s.is_zero()
        assert 'c"hi\\00"' == s.ref()

    def test_array_count_mismatch(self):
        with pytest.raises(ValueError):
            ConstantArray(ArrayType(I8, 3), [ConstantInt(I8, 1)])

    def test_vector_splat(self):
        v = ConstantVector.splat(VectorType(I32, 4), ConstantInt(I32, 3))
        assert v.is_splat()
        assert len(v.elements) == 4

    def test_make_constant(self):
        assert isinstance(make_constant(I32, 5), ConstantInt)
        assert isinstance(make_constant(F64, 5), ConstantFloat)
        assert isinstance(make_constant(PointerType(I8), 0), ConstantNull)
        v = make_constant(VectorType(I32, 4), 2)
        assert isinstance(v, ConstantVector)

    def test_zero_builder(self):
        z = zero(ArrayType(I32, 3))
        assert z.is_zero()
        assert zero(I32).is_zero()


class TestGlobals:
    def test_global_variable_type(self):
        g = GlobalVariable(I32, "g", ConstantInt(I32, 3))
        assert g.type == PointerType(I32)
        assert g.value_type == I32
        assert g.ref() == "@g"
        assert not g.is_internal

    def test_internal_linkage(self):
        g = GlobalVariable(I32, "g", None, linkage="internal")
        assert g.is_internal

    def test_alignment_default(self):
        g = GlobalVariable(ArrayType(I32, 4), "g")
        assert g.alignment == 4
