"""MCA model details: branch overhead, recurrences, externals."""

import pytest

from repro.codegen import X86_64
from repro.mca import SKYLAKE, analyze_block, estimate_throughput
from repro.mca.sched import COND_BRANCH_OVERHEAD, EXTERNAL_CALL_CYCLES
from tests.conftest import build_module


def test_conditional_branch_overhead_charged():
    cond = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %a, label %a
a:
  ret i32 %n
}
"""
    )
    block = cond.get_function("entry").entry
    report = analyze_block(block, X86_64, SKYLAKE)
    assert report.branch_overhead == COND_BRANCH_OVERHEAD


def test_unconditional_branch_has_no_overhead():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %a
a:
  ret i32 %n
}
"""
    )
    block = module.get_function("entry").entry
    report = analyze_block(block, X86_64, SKYLAKE)
    assert report.branch_overhead == 0.0


def test_switch_overhead_scales_with_cases():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  switch i32 %n, label %d [ i32 0, label %a  i32 1, label %b  i32 2, label %c ]
a:
  ret i32 1
b:
  ret i32 2
c:
  ret i32 3
d:
  ret i32 4
}
"""
    )
    block = module.get_function("entry").entry
    report = analyze_block(block, X86_64, SKYLAKE)
    assert report.branch_overhead == 3 * COND_BRANCH_OVERHEAD


def test_if_conversion_pays_off_in_model():
    """select-based code beats the branchy diamond (no mispredict cost)."""
    branchy = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %m ]
  %acc = phi i32 [ 0, %entry ], [ %a2, %m ]
  %c = icmp sgt i32 %i, 5
  br i1 %c, label %t, label %f
t:
  %x = add i32 %acc, 2
  br label %m
f:
  %y = add i32 %acc, 1
  br label %m
m:
  %a2 = phi i32 [ %x, %t ], [ %y, %f ]
  %i2 = add i32 %i, 1
  %lc = icmp slt i32 %i2, 16
  br i1 %lc, label %h, label %out
out:
  ret i32 %a2
}
"""
    )
    flat = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %acc = phi i32 [ 0, %entry ], [ %a2, %h ]
  %c = icmp sgt i32 %i, 5
  %step = select i1 %c, i32 2, i32 1
  %a2 = add i32 %acc, %step
  %i2 = add i32 %i, 1
  %lc = icmp slt i32 %i2, 16
  br i1 %lc, label %h, label %out
out:
  ret i32 %a2
}
"""
    )
    from repro.ir import run_module

    assert run_module(branchy, "entry", [0])[0] == run_module(flat, "entry", [0])[0]
    b = estimate_throughput(branchy, "x86-64").total_cycles
    f = estimate_throughput(flat, "x86-64").total_cycles
    assert f < b


def test_external_calls_charged():
    with_ext = build_module(
        """
declare i32 @ext(i32)
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @ext(i32 %n)
  ret i32 %r
}
"""
    )
    summary = estimate_throughput(with_ext, "x86-64")
    assert summary.total_cycles >= EXTERNAL_CALL_CYCLES


def test_loop_carried_recurrence_limits_throughput():
    """A serial dependence chain through the loop phi costs more than
    independent per-iteration work of the same size."""
    serial = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %acc = phi i32 [ 1, %entry ], [ %a3, %h ]
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %a1 = mul i32 %acc, 3
  %a2 = mul i32 %a1, 5
  %a3 = mul i32 %a2, 7
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 32
  br i1 %c, label %h, label %out
out:
  ret i32 %a3
}
"""
    )
    parallel = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %acc = phi i32 [ 1, %entry ], [ %a3, %h ]
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %a1 = mul i32 %i, 3
  %a2 = mul i32 %i, 5
  %a3 = add i32 %a1, %a2
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 32
  br i1 %c, label %h, label %out
out:
  ret i32 %a3
}
"""
    )
    s = estimate_throughput(serial, "x86-64").total_cycles
    p = estimate_throughput(parallel, "x86-64").total_cycles
    assert s > p
