"""MCA-style throughput estimation."""

import pytest

from repro.mca import (
    CORTEX_A72,
    SKYLAKE,
    analyze_block,
    analyze_function,
    estimate_throughput,
    get_port_model,
)
from repro.codegen import X86_64, AARCH64
from repro.passes import optimize, run_passes
from repro.workloads import ProgramProfile, generate_program
from tests.conftest import LOOP_MODULE, build_module


class TestPortModels:
    def test_lookup(self):
        assert get_port_model("x86-64") is SKYLAKE
        assert get_port_model("aarch64") is CORTEX_A72
        with pytest.raises(KeyError):
            get_port_model("power9")

    def test_division_is_slow(self):
        assert SKYLAKE.latency_of("idiv") > 10 * SKYLAKE.latency_of("alu")

    def test_pressure_of_contended_port(self):
        assert SKYLAKE.pressure_of({"store": 4}) == pytest.approx(4.0)
        assert SKYLAKE.pressure_of({"alu": 4}) == pytest.approx(1.0)


class TestBlockAnalysis:
    def _block(self, src):
        module = build_module(src)
        return module.get_function("entry").entry

    def test_dependent_chain_latency_bound(self):
        dep_chain = "\n".join(
            f"  %t{i} = mul i32 %t{i-1}, 3" if i else "  %t0 = mul i32 %n, 3"
            for i in range(8)
        )
        independent = "\n".join(
            f"  %u{i} = mul i32 %n, {i + 2}" for i in range(8)
        )
        combine = "\n".join(
            f"  %c{i} = add i32 %c{i-1}, %u{i}" if i else "  %c0 = add i32 %u0, 0"
            for i in range(8)
        )
        chain_block = self._block(
            f"define i32 @entry(i32 %n) {{\nentry:\n{dep_chain}\n  ret i32 %t7\n}}"
        )
        par_block = self._block(
            f"define i32 @entry(i32 %n) {{\nentry:\n{independent}\n{combine}\n  ret i32 %c7\n}}"
        )
        chain = analyze_block(chain_block, X86_64, SKYLAKE)
        par = analyze_block(par_block, X86_64, SKYLAKE)
        # The dependent chain has a longer critical path per op.
        assert chain.latency_bound > par.latency_bound / 2

    def test_loop_carried_recurrence(self, loop_module):
        fn = loop_module.get_function("entry")
        header = next(b for b in fn.blocks if b.name == "header")
        report = analyze_block(header, X86_64, SKYLAKE)
        assert report.cycles >= 0.25

    def test_division_dominates_block(self):
        block = self._block(
            """
define i32 @entry(i32 %n) {
entry:
  %d = or i32 %n, 1
  %q = sdiv i32 100, %d
  ret i32 %q
}
"""
        )
        report = analyze_block(block, X86_64, SKYLAKE)
        assert report.cycles > 5


class TestModuleEstimate:
    def test_loop_dominates_cycles(self, loop_module):
        summary = estimate_throughput(loop_module, "x86-64")
        fn_report = summary.functions[0]
        by_name = {b.name: b for b in fn_report.blocks}
        assert by_name["body"].frequency > by_name["entry"].frequency

    def test_throughput_inverse_of_cycles(self, loop_module):
        summary = estimate_throughput(loop_module, "x86-64")
        assert summary.throughput == pytest.approx(1e9 / summary.total_cycles)
        assert summary.ipc > 0

    def test_callee_cycles_weighted_by_call_frequency(self):
        module = build_module(
            """
define internal i32 @work(i32 %x) {
entry:
  %a = mul i32 %x, 3
  %b = mul i32 %a, 5
  %c = mul i32 %b, 7
  ret i32 %c
}
define i32 @cold(i32 %n) {
entry:
  %r = call i32 @work(i32 %n)
  ret i32 %r
}
define i32 @hot(i32 %n) {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %v = call i32 @work(i32 %i)
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %loop, label %out
out:
  ret i32 %v
}
"""
        )
        summary = estimate_throughput(module, "x86-64")
        # `hot` calls work ~10x per invocation: total cycles reflect that.
        only_cold = build_module(
            """
define internal i32 @work(i32 %x) {
entry:
  %a = mul i32 %x, 3
  %b = mul i32 %a, 5
  %c = mul i32 %b, 7
  ret i32 %c
}
define i32 @cold(i32 %n) {
entry:
  %r = call i32 @work(i32 %n)
  ret i32 %r
}
"""
        )
        assert summary.total_cycles > estimate_throughput(only_cold, "x86-64").total_cycles

    def test_vectorization_improves_throughput(self):
        src = """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [64 x i32], align 16
  %b = alloca [64 x i32], align 16
  br label %z
z:
  %j = phi i32 [ 0, %entry ], [ %j2, %z ]
  %zp = gep [64 x i32]* %a, i32 0, i32 %j
  store i32 %j, i32* %zp, align 4
  %j2 = add i32 %j, 1
  %zc = icmp slt i32 %j2, 64
  br i1 %zc, label %z, label %pre
pre:
  br label %h
h:
  %i = phi i32 [ 0, %pre ], [ %i2, %h ]
  %sp = gep [64 x i32]* %a, i32 0, i32 %i
  %v = load i32, i32* %sp, align 4
  %w = mul i32 %v, 3
  %dp = gep [64 x i32]* %b, i32 0, i32 %i
  store i32 %w, i32* %dp, align 4
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 64
  br i1 %c, label %h, label %exit
exit:
  %q = gep [64 x i32]* %b, i32 0, i32 5
  %r = load i32, i32* %q, align 4
  ret i32 %r
}
"""
        scalar = build_module(src)
        vector = scalar.clone()
        run_passes(vector, ["loop-vectorize"])
        s = estimate_throughput(scalar, "x86-64")
        v = estimate_throughput(vector, "x86-64")
        assert v.total_cycles < s.total_cycles

    def test_optimization_improves_throughput(self):
        module = generate_program(ProgramProfile(name="tp", seed=11, segments=7))
        before = estimate_throughput(module, "x86-64").total_cycles
        optimize(module, "O3")
        after = estimate_throughput(module, "x86-64").total_cycles
        assert after < before

    def test_targets_rank_differently(self):
        module = generate_program(ProgramProfile(name="tgt", seed=12, segments=6))
        x = estimate_throughput(module, "x86-64")
        a = estimate_throughput(module, "aarch64")
        assert x.total_cycles != a.total_cycles
