"""Every example script must run to completion (scaled-down where the
script supports it)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parents[2] / "examples"


def run_example(name, *args, timeout=420):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "size vs -Oz" in out
    assert "predicted action sequence" in out


def test_odg_explorer_runs():
    out = run_example("odg_explorer.py")
    assert "28/34 match" in out
    assert "ordering sensitivity" in out


def test_compare_opt_levels_runs():
    out = run_example("compare_opt_levels.py", "mibench")
    assert "Oz vs O3" in out
    assert "aarch64" in out


def test_pipeline_anatomy_runs():
    out = run_example("pipeline_anatomy.py", "3")
    assert "-Oz pipeline statistics" in out
    assert "sub-sequences" in out


def test_train_posetrl_minimal():
    out = run_example(
        "train_posetrl.py", "--episodes", "8", "--corpus-size", "3"
    )
    assert "training done" in out
    assert "mibench" in out
