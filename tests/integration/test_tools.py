"""CLI tools: opt / sizeit / mca."""

import io
import sys

import pytest

from repro.tools import mca, opt, sizeit

DEMO = """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  %dead = mul i32 %v, 7
  %r = add i32 %v, 1
  ret i32 %r
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.ll"
    path.write_text(DEMO)
    return str(path)


def run_tool(tool, argv, capsys):
    rc = tool.run(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


class TestOpt:
    def test_oz_pipeline(self, demo_file, capsys):
        rc, out, _ = run_tool(opt, ["-Oz", demo_file], capsys)
        assert rc == 0
        assert "define i32 @entry" in out
        assert "alloca" not in out  # mem2reg promoted it

    def test_explicit_passes(self, demo_file, capsys):
        rc, out, _ = run_tool(
            opt, ["--passes", "-mem2reg -dce", demo_file], capsys
        )
        assert rc == 0
        assert "mul" not in out  # dead mul removed

    def test_stats_flag(self, demo_file, capsys):
        rc, out, err = run_tool(opt, ["-Oz", "--stats", demo_file], capsys)
        assert "instructions:" in err
        assert "changed the module" in err

    def test_output_file(self, demo_file, tmp_path, capsys):
        out_path = tmp_path / "out.ll"
        rc, out, _ = run_tool(
            opt, ["-O1", demo_file, "-o", str(out_path)], capsys
        )
        assert rc == 0
        assert out == ""
        assert "define" in out_path.read_text()

    def test_list_passes(self, capsys):
        rc, out, _ = run_tool(opt, ["--list-passes"], capsys)
        assert rc == 0
        assert "simplifycfg" in out.split()

    def test_verify_flag(self, demo_file, capsys):
        rc, _, _ = run_tool(opt, ["-Oz", "--verify", demo_file], capsys)
        assert rc == 0

    def test_roundtrips_through_itself(self, demo_file, tmp_path, capsys):
        mid = tmp_path / "mid.ll"
        run_tool(opt, ["-Oz", demo_file, "-o", str(mid)], capsys)
        rc, out, _ = run_tool(opt, [str(mid)], capsys)
        assert rc == 0 and "define" in out


class TestSizeit:
    def test_basic_report(self, demo_file, capsys):
        rc, out, _ = run_tool(sizeit, [demo_file], capsys)
        assert rc == 0
        assert "total" in out
        assert "x86-64" in out

    def test_per_function_and_target(self, demo_file, capsys):
        rc, out, _ = run_tool(
            sizeit, ["--target", "aarch64", "--per-function", demo_file],
            capsys,
        )
        assert rc == 0
        assert "entry" in out

    def test_size_drops_with_optimization(self, demo_file, capsys):
        _, raw, _ = run_tool(sizeit, [demo_file], capsys)
        _, optimized, _ = run_tool(sizeit, ["-Oz", demo_file], capsys)

        def total(report):
            return int(report.splitlines()[2].split()[-1])

        assert total(optimized) < total(raw)


class TestMca:
    def test_summary(self, demo_file, capsys):
        rc, out, _ = run_tool(mca, [demo_file], capsys)
        assert rc == 0
        assert "total cycles" in out
        assert "IPC" in out

    def test_per_block(self, demo_file, capsys):
        rc, out, _ = run_tool(mca, ["--per-block", demo_file], capsys)
        assert "entry" in out

    def test_cycles_drop_with_optimization(self, demo_file, capsys):
        def cycles(argv):
            _, out, _ = run_tool(mca, argv, capsys)
            return float(
                next(l for l in out.splitlines() if "total cycles" in l)
                .split()[-1]
            )

        assert cycles(["-O3", demo_file]) <= cycles([demo_file])


class TestOptAgent:
    @pytest.fixture
    def checkpoint(self, tmp_path):
        from repro import PosetRL

        path = tmp_path / "model.npz"
        PosetRL(seed=0).save(str(path))
        return str(path)

    def test_agent_optimizes_through_serving_path(
        self, demo_file, checkpoint, capsys
    ):
        rc, out, err = run_tool(opt, ["--agent", checkpoint, demo_file], capsys)
        assert rc == 0
        assert "define i32 @entry" in out
        assert "rejected" not in err

    def test_agent_stats_report(self, demo_file, checkpoint, capsys):
        rc, _, err = run_tool(
            opt, ["--agent", checkpoint, "--stats", demo_file], capsys
        )
        assert rc == 0
        assert "model v1 (odg)" in err
        assert "status ok" in err
        assert "actions:" in err
        assert "size:" in err

    def test_agent_output_file(self, demo_file, checkpoint, tmp_path, capsys):
        out_path = tmp_path / "out.ll"
        rc, out, _ = run_tool(
            opt, ["--agent", checkpoint, demo_file, "-o", str(out_path)],
            capsys,
        )
        assert rc == 0
        assert out == ""
        assert "define i32 @entry" in out_path.read_text()

    def test_agent_excludes_passes_and_levels(
        self, demo_file, checkpoint, capsys
    ):
        with pytest.raises(SystemExit):
            run_tool(opt, ["--agent", checkpoint, "-Oz", demo_file], capsys)
        capsys.readouterr()
        with pytest.raises(SystemExit):
            run_tool(
                opt,
                ["--agent", checkpoint, "--passes", "-dce", demo_file],
                capsys,
            )


class TestServe:
    def test_load_smoke(self, capsys):
        from repro.tools import serve

        rc, out, _ = run_tool(
            serve,
            ["--suite", "mibench", "--requests", "6", "--concurrency", "2",
             "--fail-on-fallback"],
            capsys,
        )
        assert rc == 0
        assert "serving load report" in out
        assert "throughput=" in out
        assert "p50=" in out
        assert "no fallbacks" in out

    def test_json_report(self, tmp_path, capsys):
        import json

        from repro.tools import serve

        json_path = tmp_path / "report.json"
        rc, _, _ = run_tool(
            serve,
            ["--suite", "mibench", "--requests", "4", "--concurrency", "2",
             "--json", str(json_path)],
            capsys,
        )
        assert rc == 0
        payload = json.loads(json_path.read_text())
        assert payload["load"]["requests"] == 4
        assert payload["model"]["version"] == "v1"
        assert "p99" in payload["load"]["latency_ms"]

    def test_unknown_suite(self, capsys):
        from repro.tools import serve

        rc, _, err = run_tool(serve, ["--suite", "nope"], capsys)
        assert rc == 1

    def test_checkpoint_round_trip(self, tmp_path, capsys):
        from repro import PosetRL
        from repro.tools import serve

        path = tmp_path / "model.npz"
        PosetRL(action_space="manual", seed=1).save(str(path))
        rc, out, _ = run_tool(
            serve,
            ["--suite", "mibench", "--checkpoint", str(path),
             "--requests", "4", "--concurrency", "2"],
            capsys,
        )
        assert rc == 0
        assert "(manual)" in out
