"""Cross-cutting consistency checks between subsystems."""

import pytest

from repro.codegen import object_size
from repro.core import OZ_PASS_SEQUENCE, PAPER_ODG_SUBSEQUENCES, MANUAL_SUBSEQUENCES
from repro.core.evaluate import optimize_with_oz
from repro.ir import run_module, verify_module
from repro.mca import estimate_throughput
from repro.passes import build_pipeline, run_passes
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def module():
    return generate_program(ProgramProfile(name="whole", seed=71, segments=7))


def test_manual_space_in_order_equals_oz_pipeline_semantics(module):
    """Applying Table II's groups in order covers the same passes as -Oz;
    outcomes may differ slightly (parameter tiers) but semantics and the
    ballpark size must agree."""
    via_groups = module.clone()
    for seq in MANUAL_SUBSEQUENCES:
        run_passes(via_groups, list(seq))
    verify_module(via_groups)
    via_oz = module.clone()
    build_pipeline("Oz").run(via_oz)

    base, _ = run_module(module, "entry", [6])
    assert run_module(via_groups, "entry", [6])[0] == base
    assert run_module(via_oz, "entry", [6])[0] == base

    g = object_size(via_groups, "x86-64").total_bytes
    o = object_size(via_oz, "x86-64").total_bytes
    raw = object_size(module, "x86-64").total_bytes
    assert g < raw and o < raw
    assert abs(g - o) / o < 0.35  # same ballpark


def test_flat_oz_sequence_equals_pipeline_closely(module):
    """Running the 90 Table I names through the registry (all-default
    parameters) must shrink the program about as much as the tiered
    pipeline."""
    flat = module.clone()
    run_passes(flat, list(OZ_PASS_SEQUENCE))
    verify_module(flat)
    tiered = module.clone()
    build_pipeline("Oz").run(tiered)
    f = object_size(flat, "x86-64").total_bytes
    t = object_size(tiered, "x86-64").total_bytes
    assert f <= object_size(module, "x86-64").total_bytes
    assert abs(f - t) / t < 0.5


def test_odg_actions_union_reaches_oz_quality(module):
    """All 34 ODG groups applied twice should roughly match -Oz size —
    the action space is expressive enough to reconstruct the pipeline."""
    via_actions = module.clone()
    for _ in range(2):
        for seq in PAPER_ODG_SUBSEQUENCES:
            run_passes(via_actions, list(seq))
    verify_module(via_actions)
    oz = optimize_with_oz(module, "x86-64")
    a = object_size(via_actions, "x86-64").total_bytes
    assert a <= oz["size"] * 1.25

    base, _ = run_module(module, "entry", [4])
    assert run_module(via_actions, "entry", [4])[0] == base


def test_size_and_cycles_move_together_under_oz(module):
    """On generated programs, Oz should improve both axes vs O0 (dead code
    dominates both costs)."""
    optimized = module.clone()
    build_pipeline("Oz").run(optimized)
    assert (
        object_size(optimized, "x86-64").total_bytes
        < object_size(module, "x86-64").total_bytes
    )
    assert (
        estimate_throughput(optimized, "x86-64").total_cycles
        < estimate_throughput(module, "x86-64").total_cycles
    )
