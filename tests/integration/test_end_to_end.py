"""End-to-end integration: PosetRL train → predict → evaluate, plus the
whole-stack invariants (env metrics match codegen/mca, predicted sequences
preserve semantics)."""

import numpy as np
import pytest

from repro import PosetRL, load_suite
from repro.codegen import object_size
from repro.core.evaluate import optimize_with_oz
from repro.core.presets import quick_config, scaled_config, paper_config
from repro.ir import run_module, verify_module
from repro.mca import estimate_throughput
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def corpus():
    return load_suite("llvm_test_suite")[:8]


@pytest.fixture(scope="module")
def trained_agent(corpus):
    agent = PosetRL(
        action_space="odg", target="x86-64", seed=0,
        agent_config=quick_config(),
    )
    agent.train(corpus, episodes=30)
    return agent


class TestTrainingLoop:
    def test_training_produces_stats(self, trained_agent):
        stats = trained_agent.train_history
        assert len(stats) == 30
        assert all(len(s.actions) == 15 for s in stats)
        assert all(np.isfinite(s.total_reward) for s in stats)

    def test_epsilon_annealed(self, trained_agent):
        assert trained_agent.agent.epsilon < 1.0
        assert trained_agent.agent.steps == 30 * 15

    def test_agent_trained(self, trained_agent):
        assert trained_agent.agent.train_steps > 0

    def test_empty_corpus_rejected(self):
        agent = PosetRL(agent_config=quick_config())
        with pytest.raises(ValueError):
            agent.train([], episodes=1)


class TestPrediction:
    def test_predict_returns_table6_shaped_sequence(self, trained_agent, corpus):
        _, module = corpus[0]
        actions = trained_agent.predict(module)
        assert len(actions) == 15  # Table VI: 15-action sequences
        assert all(0 <= a < 34 for a in actions)

    def test_predicted_sequence_preserves_semantics(self, trained_agent, corpus):
        name, module = corpus[0]
        baseline, _ = run_module(module, "entry", [6])
        actions = trained_agent.predict(module)
        optimized = trained_agent.apply_actions(module, actions)
        verify_module(optimized)
        result, _ = run_module(optimized, "entry", [6])
        assert result == baseline

    def test_predict_is_deterministic(self, trained_agent, corpus):
        _, module = corpus[1]
        assert trained_agent.predict(module) == trained_agent.predict(module)

    def test_pass_sequence_expansion(self, trained_agent):
        passes = trained_agent.predicted_pass_sequence([5, 21])
        assert passes == ["instcombine", "loop-simplify", "loop-load-elim"]


class TestEvaluation:
    def test_suite_summary_structure(self, trained_agent, corpus):
        summary = trained_agent.evaluate_suite("train", corpus[:3])
        assert len(summary.results) == 3
        row = summary.row()
        assert set(row) == {"min", "avg", "max", "runtime"}
        assert row["min"] <= row["avg"] <= row["max"]

    def test_env_metrics_match_direct_measurement(self, trained_agent, corpus):
        name, module = corpus[0]
        env = trained_agent.make_env(module)
        env.reset()
        env.step(23)
        assert env.last_size == object_size(env.current, "x86-64").total_bytes
        assert env.last_throughput == pytest.approx(
            estimate_throughput(env.current, "x86-64").throughput
        )

    def test_oz_baseline_helper(self, corpus):
        _, module = corpus[0]
        oz = optimize_with_oz(module, "x86-64")
        assert oz["size"] < object_size(module, "x86-64").total_bytes

    def test_save_load_roundtrip(self, trained_agent, corpus, tmp_path):
        path = str(tmp_path / "posetrl.npz")
        trained_agent.save(path)
        fresh = PosetRL(
            action_space="odg", seed=5, agent_config=quick_config()
        )
        fresh.load(path)
        _, module = corpus[0]
        assert fresh.predict(module) == trained_agent.predict(module)


class TestPresets:
    def test_paper_config_values(self):
        cfg = paper_config()
        assert cfg.learning_rate == 1e-4  # Section V-A
        assert cfg.epsilon_steps == 20_000
        assert cfg.epsilon_end == 0.01

    def test_scaled_config_trains_fast(self):
        cfg = scaled_config()
        assert cfg.replay_capacity <= 5_000  # near-on-policy

    def test_aarch64_agent(self, corpus):
        agent = PosetRL(
            action_space="manual", target="aarch64", seed=0,
            agent_config=quick_config(),
        )
        agent.train(corpus[:2], episodes=4)
        _, module = corpus[0]
        actions = agent.predict(module)
        assert len(actions) == 15
        assert agent.actions is not None and len(agent.actions) == 15


def test_generated_suite_evaluation_shapes():
    """A tiny full pipeline: train on 4 programs, evaluate on 2 others."""
    train = load_suite("llvm_test_suite")[:4]
    test = load_suite("mibench")[:2]
    agent = PosetRL(action_space="odg", seed=3, agent_config=quick_config())
    agent.train(train, episodes=10)
    summary = agent.evaluate_suite("mini", test)
    for result in summary.results:
        assert result.oz_size > 0 and result.agent_size > 0
        assert result.oz_cycles > 0 and result.agent_cycles > 0
        assert len(result.actions) == 15
