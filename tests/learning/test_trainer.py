"""Online trainer: journal ingest, fine-tuning, candidates, snapshots."""

import numpy as np
import pytest

from repro.learning import ExperienceJournal, OnlineTrainer
from repro.rl.network import QNetwork

STATE_DIM = 300


@pytest.fixture()
def base_checkpoint(tmp_path):
    path = str(tmp_path / "base.npz")
    QNetwork(STATE_DIM, 34, (16,), seed=0).save(
        path, metadata={"action_space": "odg", "episode_length": 4}
    )
    return path


def _write_experience(directory, transitions=64, seed=0):
    journal = ExperienceJournal(str(directory), segment_size=16)
    rng = np.random.RandomState(seed)
    n = 0
    while n < transitions:
        k = min(8, transitions - n)
        states = rng.standard_normal((k, STATE_DIM)).astype(np.float32)
        next_states = rng.standard_normal((k, STATE_DIM)).astype(np.float32)
        dones = np.zeros(k, dtype=bool)
        dones[-1] = True
        journal.append(
            states, rng.randint(0, 34, size=k), rng.standard_normal(k),
            next_states, dones,
        )
        n += k
    journal.flush()
    return journal


class TestIngest:
    def test_ingest_fills_replay(self, tmp_path, base_checkpoint):
        _write_experience(tmp_path / "j", transitions=40)
        trainer = OnlineTrainer(base_checkpoint, [str(tmp_path / "j")])
        assert trainer.ingest() == 40
        assert len(trainer.memory) == 40
        # Second ingest sees nothing new.
        assert trainer.ingest() == 0
        assert trainer.counters["ingested_transitions"] == 40

    def test_rewards_scaled_like_online_remember(self, tmp_path, base_checkpoint):
        journal = ExperienceJournal(str(tmp_path / "j"), segment_size=100)
        states = np.ones((2, STATE_DIM), dtype=np.float32)
        journal.append(
            states, [1, 2], [10.0, -4.0], states, [False, True]
        )
        journal.flush()
        trainer = OnlineTrainer(base_checkpoint, [str(tmp_path / "j")])
        trainer.ingest()
        scale = trainer.agent.config.reward_scale
        rewards = trainer.memory._rewards[: len(trainer.memory)]
        assert sorted(rewards) == pytest.approx(sorted([10.0 * scale, -4.0 * scale]))


class TestTraining:
    def test_below_min_buffer_trains_nothing(self, tmp_path, base_checkpoint):
        _write_experience(tmp_path / "j", transitions=8)
        trainer = OnlineTrainer(
            base_checkpoint, [str(tmp_path / "j")], min_buffer=32
        )
        trainer.ingest()
        assert trainer.train() == []
        assert trainer.fine_tune_steps == 0

    def test_training_moves_candidate_not_base(self, tmp_path, base_checkpoint):
        _write_experience(tmp_path / "j", transitions=64)
        trainer = OnlineTrainer(
            base_checkpoint, [str(tmp_path / "j")],
            min_buffer=32, batch_size=16, steps_per_cycle=8,
        )
        trainer.ingest()
        base_before = [w.copy() for w in trainer.base_network.get_weights()]
        losses = trainer.train()
        assert len(losses) == 8
        assert trainer.fine_tune_steps == 8
        candidate = trainer.make_candidate()
        # Fine-tuning changed the online weights...
        assert any(
            not np.array_equal(a, b)
            for a, b in zip(candidate.get_weights(), base_before)
        )
        # ...but the pinned base anchor is untouched.
        for a, b in zip(trainer.base_network.get_weights(), base_before):
            assert np.array_equal(a, b)

    def test_candidate_is_frozen_copy(self, tmp_path, base_checkpoint):
        trainer = OnlineTrainer(base_checkpoint, [str(tmp_path / "j")])
        candidate = trainer.make_candidate()
        assert candidate is not trainer.agent.online
        mutated = trainer.agent.online.get_weights()
        mutated[0][:] = 123.0
        trainer.agent.online.set_weights(mutated)
        assert not np.array_equal(
            candidate.get_weights()[0], trainer.agent.online.get_weights()[0]
        )

    def test_candidate_metadata(self, tmp_path, base_checkpoint):
        _write_experience(tmp_path / "j", transitions=64)
        trainer = OnlineTrainer(
            base_checkpoint, [str(tmp_path / "j")],
            min_buffer=32, steps_per_cycle=4,
        )
        trainer.ingest()
        trainer.train()
        meta = trainer.candidate_metadata()
        assert meta["base_checkpoint"] == base_checkpoint
        assert meta["fine_tune_steps"] == 4
        assert meta["ingested_transitions"] == 64
        assert meta["trained_online"] is True
        assert meta["action_space"] == "odg"  # inherited from the base


class TestSnapshots:
    def test_replay_snapshot_roundtrip(self, tmp_path, base_checkpoint):
        _write_experience(tmp_path / "j", transitions=48)
        trainer = OnlineTrainer(base_checkpoint, [str(tmp_path / "j")])
        trainer.ingest()
        snap = str(tmp_path / "replay.npz")
        trainer.snapshot_replay(snap)
        expected = trainer.memory.sample(16)

        restarted = OnlineTrainer(base_checkpoint, [str(tmp_path / "j")])
        restarted.restore_replay(snap)
        assert len(restarted.memory) == 48
        got = restarted.memory.sample(16)
        for a, b in zip(expected, got):
            assert np.array_equal(a, b)

    def test_restore_rejects_state_dim_mismatch(self, tmp_path, base_checkpoint):
        from repro.rl import ReplayMemory

        other = ReplayMemory(capacity=8)
        other.push(np.zeros(7), 0, 0.0, np.zeros(7), True)
        snap = str(tmp_path / "bad.npz")
        other.save(snap)
        trainer = OnlineTrainer(base_checkpoint, [str(tmp_path / "j")])
        with pytest.raises(ValueError, match="state_dim"):
            trainer.restore_replay(snap)
