"""Evaluation gate: holdout comparison, fuzz canary, rejection paths."""

import numpy as np
import pytest

from repro.learning import EvaluationGate, constant_action_network
from repro.rl.network import QNetwork
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def holdout():
    return [
        generate_program(ProgramProfile(name=f"gate{i}", seed=90 + i, segments=2))
        for i in range(2)
    ]


@pytest.fixture(scope="module")
def gate(holdout):
    return EvaluationGate(
        holdout,
        episode_length=4,
        canary_seeds=(1801,),
        canary_segments=2,
    )


@pytest.fixture(scope="module")
def network():
    return QNetwork(300, 34, (16,), seed=0)


class TestGate:
    def test_identical_candidate_passes(self, gate, network):
        verdict = gate.evaluate(network, network)
        assert verdict.passed
        assert verdict.reasons == []
        assert verdict.canary_checks == 1
        assert verdict.canary_failures == 0
        assert verdict.candidate.size_reduction_pct == pytest.approx(
            verdict.incumbent.size_reduction_pct
        )

    def test_constant_action_network_is_constant(self, network):
        net = constant_action_network(network, 7)
        states = np.random.RandomState(0).standard_normal((5, 300))
        assert list(net.predict(states).argmax(axis=1)) == [7] * 5

    def test_worst_constant_candidate_rejected(self, gate, network):
        bad, action = gate.worst_constant_candidate(network)
        assert 0 <= action < 34
        verdict = gate.evaluate(bad, network)
        assert not verdict.passed
        assert any("holdout" in r for r in verdict.reasons)

    def test_shape_mismatch_rejected(self, gate, network):
        wrong = QNetwork(300, 15, (16,), seed=0)  # manual-sized head
        verdict = gate.evaluate(wrong, network)
        assert not verdict.passed
        assert verdict.reasons[0].startswith("shape_mismatch")

    def test_corrupted_checkpoint_rejected(self, gate, network, tmp_path):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"definitely not a checkpoint")
        verdict = gate.evaluate_checkpoint(str(path), network)
        assert not verdict.passed
        assert verdict.reasons[0].startswith("load_error")

    def test_missing_checkpoint_rejected(self, gate, network, tmp_path):
        verdict = gate.evaluate_checkpoint(str(tmp_path / "nope.npz"), network)
        assert not verdict.passed
        assert verdict.reasons[0].startswith("load_error")

    def test_valid_checkpoint_accepted(self, gate, network, tmp_path):
        path = tmp_path / "ok.npz"
        network.save(str(path))
        verdict = gate.evaluate_checkpoint(str(path), network)
        assert verdict.passed

    def test_holdout_score_is_deterministic(self, gate, network):
        a = gate.holdout_score(network)
        b = gate.holdout_score(network)
        assert a.size_reduction_pct == b.size_reduction_pct
        assert a.throughput_gain_pct == b.throughput_gain_pct

    def test_empty_holdout_rejected(self):
        with pytest.raises(ValueError, match="holdout"):
            EvaluationGate([])

    def test_describe_carries_scores(self, gate, network):
        verdict = gate.evaluate(network, network)
        desc = verdict.describe()
        assert desc["passed"] is True
        assert "candidate_size_reduction_pct" in desc
        assert "incumbent_throughput_gain_pct" in desc

    def test_tolerance_admits_small_regression(self, holdout, network):
        # With an enormous tolerance even the worst constant policy passes
        # the holdout half — only the canary can reject it then.
        lax = EvaluationGate(
            holdout,
            episode_length=4,
            size_tolerance_pct=1e9,
            throughput_tolerance_pct=1e9,
            canary_seeds=(1801,),
            canary_segments=2,
        )
        bad, _ = lax.worst_constant_candidate(network)
        verdict = lax.evaluate(bad, network)
        assert not any("holdout" in r for r in verdict.reasons)
