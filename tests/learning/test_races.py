"""Promotion/rollback races: pinned in-flight work, stale candidates."""

import pytest

from repro import PosetRL
from repro.ir.printer import print_module
from repro.learning import (
    EvaluationGate,
    ExperienceJournal,
    ExperienceTap,
    LearningController,
    OnlineTrainer,
)
from repro.serving import OptimizationService
from repro.workloads import ProgramProfile, generate_program

EPISODE_LENGTH = 4


@pytest.fixture(scope="module")
def texts():
    return [
        print_module(
            generate_program(ProgramProfile(name=f"race{i}", seed=50 + i, segments=2))
        )
        for i in range(3)
    ]


def make_parts(tmp_path, service, *, health_sampler=None):
    base = str(tmp_path / "base.npz")
    PosetRL(seed=0, episode_length=EPISODE_LENGTH).save(base)
    trainer = OnlineTrainer(base, [str(tmp_path / "journal")])
    gate = EvaluationGate(
        [generate_program(ProgramProfile(name="hold", seed=50, segments=2))],
        episode_length=EPISODE_LENGTH,
        size_tolerance_pct=0.25,
        throughput_tolerance_pct=0.25,
        canary_seeds=(1801,),
        canary_segments=2,
    )
    controller = LearningController(
        service, trainer, gate, health_sampler=health_sampler
    )
    return trainer, gate, controller


def make_service(tmp_path, **kwargs):
    base = str(tmp_path / "svc-base.npz")
    PosetRL(seed=0, episode_length=EPISODE_LENGTH).save(base)
    kwargs.setdefault("batch_window_s", 0.05)
    kwargs.setdefault("result_cache_size", None)
    kwargs.setdefault("include_ir", False)
    return OptimizationService.from_checkpoint(base, **kwargs)


class TestPromotionRaces:
    def test_hot_swap_mid_stream_pins_in_flight_to_old_version(
        self, tmp_path, texts
    ):
        with make_service(tmp_path) as service:
            trainer, gate, controller = make_parts(tmp_path, service)
            # Submit inside the batch window, then land a promotion while
            # the sessions are still queued or mid-rollout.
            futures = [service.submit(t) for t in texts]
            candidate = trainer.make_candidate()
            controller.promote(candidate, "online-1", previous="v1")
            assert service.registry.active.version == "online-1"
            for future in futures:
                result = future.result(timeout=30)
                assert result.status == "ok"
                # Pinned at submit: the swap never migrates a live rollout.
                assert result.model_version == "v1"
            fresh = service.optimize(texts[0])
            assert fresh.model_version == "online-1"

    def test_rollback_during_second_evaluation_discards_stale_candidate(
        self, tmp_path, texts
    ):
        health = [0, 0]
        with make_service(tmp_path) as service:
            trainer, gate, controller = make_parts(
                tmp_path, service, health_sampler=lambda: tuple(health)
            )
            first = trainer.make_candidate()
            verdict, promoted = controller.consider(first, "online-1")
            assert promoted
            assert service.registry.active.version == "online-1"

            # While the second candidate is being gated, the watchdog sees
            # a guard-trip spike and rolls the first promotion back.
            original_evaluate = gate.evaluate

            def evaluate_with_concurrent_rollback(candidate, incumbent):
                result = original_evaluate(candidate, incumbent)
                health[:] = [20, 19]
                assert controller.check_rollback()
                return result

            gate.evaluate = evaluate_with_concurrent_rollback
            second = trainer.make_candidate()
            verdict, promoted = controller.consider(second, "online-2")

            # The rollback won: the candidate's verdict was measured
            # against a dead incumbent, so it must not be promoted.
            assert not promoted
            assert any(
                r.startswith("stale_incumbent") for r in verdict.reasons
            )
            assert service.registry.active.version == "v1"
            assert controller.rollbacks == 1
            assert "online-2" not in service.registry.versions()

    def test_corrupted_checkpoint_cannot_reach_serving(self, tmp_path, texts):
        with make_service(tmp_path) as service:
            trainer, gate, controller = make_parts(tmp_path, service)
            corrupt = tmp_path / "evil.npz"
            corrupt.write_bytes(b"\x00" * 64)
            verdict = gate.evaluate_checkpoint(
                str(corrupt), trainer.base_network
            )
            assert not verdict.passed
            assert verdict.reasons[0].startswith("load_error")
            assert service.registry.versions() == ["v1"]
            assert service.registry.active.version == "v1"

    def test_double_promotion_keeps_latest_and_its_rollback_target(
        self, tmp_path, texts
    ):
        with make_service(tmp_path) as service:
            trainer, gate, controller = make_parts(tmp_path, service)
            controller.promote(
                trainer.make_candidate(), "online-1", previous="v1"
            )
            controller.promote(
                trainer.make_candidate(), "online-2", previous="online-1"
            )
            assert service.registry.active.version == "online-2"
            # A guard-trip spike now rolls back to online-1, not v1.
            controller._health_sampler = lambda: (50, 49)
            controller._watch = ("online-1", (0, 0))
            assert controller.check_rollback()
            assert service.registry.active.version == "online-1"
