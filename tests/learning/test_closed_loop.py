"""End-to-end closed loop: traffic → journal → train → gate → swap.

The acceptance path for the learning subsystem: seeded traffic through
a live ``OptimizationService`` produces journaled experience; the
trainer's candidate clears the holdout + canary gate and is hot-swapped
without dropping in-flight requests; an injected bad candidate is
rejected; a post-promotion guard-trip spike triggers automatic
rollback. Asserted through the ``repro_learning_*`` metrics and the
registry state, exactly as a production watchdog would see it.
"""

import numpy as np
import pytest

from repro import PosetRL
from repro import observability as obs
from repro.ir.printer import print_module
from repro.learning import (
    EvaluationGate,
    ExperienceJournal,
    ExperienceTap,
    LearningController,
    OnlineTrainer,
)
from repro.serving import OptimizationService
from repro.workloads import ProgramProfile, generate_program

EPISODE_LENGTH = 4


@pytest.fixture(scope="module")
def modules():
    return [
        generate_program(ProgramProfile(name=f"loop{i}", seed=60 + i, segments=2))
        for i in range(3)
    ]


@pytest.fixture(scope="module")
def texts(modules):
    return [print_module(m) for m in modules]


@pytest.fixture()
def metrics():
    registry, _ = obs.enable()
    try:
        yield registry
    finally:
        obs.disable()


def make_stack(tmp_path, *, segment_size=8, batch_window_s=0.001):
    """Base checkpoint + tapped service, ready for traffic."""
    base = str(tmp_path / "base.npz")
    PosetRL(seed=0, episode_length=EPISODE_LENGTH).save(base)
    journal_dir = str(tmp_path / "journal")
    tap = ExperienceTap(
        ExperienceJournal(journal_dir, segment_size=segment_size)
    )
    service = OptimizationService.from_checkpoint(
        base,
        experience_tap=tap,
        result_cache_size=None,  # every request must produce a rollout
        include_ir=False,
        batch_window_s=batch_window_s,
    )
    return base, journal_dir, service


def make_loop(base, journal_dir, service, **controller_kwargs):
    trainer = OnlineTrainer(
        base, [journal_dir],
        replay_capacity=512, batch_size=8, steps_per_cycle=4, min_buffer=8,
    )
    gate = EvaluationGate(
        [generate_program(ProgramProfile(name="hold", seed=60, segments=2))],
        episode_length=EPISODE_LENGTH,
        size_tolerance_pct=0.25,
        throughput_tolerance_pct=0.25,
        canary_seeds=(1801,),
        canary_segments=2,
    )
    controller = LearningController(
        service, trainer, gate, **controller_kwargs
    )
    return trainer, gate, controller


class TestClosedLoop:
    def test_traffic_to_promotion_without_dropping_in_flight(
        self, tmp_path, texts, metrics
    ):
        base, journal_dir, service = make_stack(tmp_path)
        with service:
            for text in texts * 2:
                assert service.optimize(text).status == "ok"
            service.experience_tap.flush()
            trainer, gate, controller = make_loop(base, journal_dir, service)

            # Hold requests in flight across the promotion: sessions pin
            # their model at submit, so these must finish on v1 even
            # though the candidate lands while they are queued.
            in_flight = [service.submit(t) for t in texts]

            report = controller.run_cycle()
            # At least the six flushed traffic trajectories (the in-flight
            # ones may or may not have hit disk before the ingest read).
            assert report.ingested >= 6 * EPISODE_LENGTH
            assert report.train_updates == 4
            assert report.verdict.passed, report.verdict.reasons
            assert report.promoted
            assert report.candidate_version == "online-1"

            # The swap is live for new traffic...
            assert service.registry.active.version == "online-1"
            assert (
                service.registry.active.metadata["promoted_over"] == "v1"
            )
            after = service.optimize(texts[0])
            assert after.status == "ok"
            assert after.model_version == "online-1"
            # ...and nothing in flight was dropped or migrated mid-rollout.
            for future in in_flight:
                result = future.result(timeout=30)
                assert result.status == "ok"
                assert result.model_version == "v1"

        # The watchdog's view: the metric registry tells the same story.
        assert metrics.get_value("repro_learning_trajectories_total") >= 6
        # Six traffic rollouts + three in-flight + the post-swap request.
        assert (
            metrics.get_value("repro_learning_transitions_total")
            == 10 * EPISODE_LENGTH
        )
        assert metrics.get_value("repro_learning_train_steps_total") == 4
        assert metrics.get_value("repro_learning_candidates_total") == 1
        assert metrics.get_value("repro_learning_promotions_total") == 1
        assert metrics.get_value(
            "repro_learning_gate_verdicts_total", labels={"verdict": "pass"}
        ) == 1

    def test_injected_bad_candidate_is_rejected(self, tmp_path, texts, metrics):
        base, journal_dir, service = make_stack(tmp_path)
        with service:
            for text in texts * 2:
                service.optimize(text)
            service.experience_tap.flush()
            trainer, gate, controller = make_loop(base, journal_dir, service)
            assert controller.run_cycle().promoted

            bad, bad_action = gate.worst_constant_candidate(
                trainer.base_network
            )
            verdict, promoted = controller.consider(bad, "injected-bad")
            assert not promoted
            assert not verdict.passed
            assert verdict.reasons
            # The incumbent kept serving; the reject is on the books.
            assert service.registry.active.version == "online-1"
            assert "injected-bad" not in service.registry.versions()
        assert metrics.get_value(
            "repro_learning_gate_verdicts_total", labels={"verdict": "fail"}
        ) >= 1

    def test_guard_trip_spike_triggers_auto_rollback(
        self, tmp_path, texts, metrics
    ):
        health = [0, 0]
        base, journal_dir, service = make_stack(tmp_path)
        with service:
            for text in texts * 2:
                service.optimize(text)
            service.experience_tap.flush()
            trainer, gate, controller = make_loop(
                base, journal_dir, service,
                rollback_threshold=0.5,
                rollback_min_requests=4,
                health_sampler=lambda: tuple(health),
            )
            assert controller.run_cycle().promoted
            assert service.registry.active.version == "online-1"

            # Below the minimum sample the controller refuses to judge.
            health[:] = [2, 2]
            assert not controller.check_rollback()
            # A healthy delta keeps the promotion.
            health[:] = [10, 1]
            assert not controller.check_rollback()
            # The spike: 15 of the 20 completions since promotion tripped
            # the guard — rate 0.75 breaches the 0.5 bar.
            health[:] = [20, 15]
            assert controller.check_rollback()
            assert service.registry.active.version == "v1"
            assert controller.rollbacks == 1
            # Watch state is cleared: no double rollback.
            health[:] = [40, 29]
            assert not controller.check_rollback()
        assert metrics.get_value("repro_learning_rollbacks_total") == 1
        rate = metrics.get_value(
            "repro_learning_post_promotion_fallback_rate"
        )
        assert rate == pytest.approx(0.75)

    def test_cycle_without_experience_is_skipped(self, tmp_path, metrics):
        base, journal_dir, service = make_stack(tmp_path)
        with service:
            trainer, gate, controller = make_loop(base, journal_dir, service)
            report = controller.run_cycle()
            assert report.ingested == 0
            assert report.candidate_version is None
            assert "skipped" in report.details
            assert service.registry.active.version == "v1"

    def test_promotion_prunes_stale_versions(self, tmp_path, texts):
        base, journal_dir, service = make_stack(tmp_path)
        with service:
            for text in texts * 2:
                service.optimize(text)
            service.experience_tap.flush()
            trainer, gate, controller = make_loop(
                base, journal_dir, service, prune_keep_last=2
            )
            for _ in range(3):
                assert controller.run_cycle().promoted
            versions = service.registry.versions()
            assert service.registry.active.version == "online-3"
            # The rollback target of the live promotion must survive.
            assert "online-2" in versions
            assert "online-1" not in versions
