"""Experience journal: segments, rotation, reader, serving tap."""

import numpy as np
import pytest

from repro.learning import ExperienceJournal, ExperienceTap, JournalReader


def _traj(n=5, state_dim=6, seed=0):
    rng = np.random.RandomState(seed)
    states = rng.standard_normal((n, state_dim)).astype(np.float32)
    next_states = rng.standard_normal((n, state_dim)).astype(np.float32)
    actions = rng.randint(0, 34, size=n)
    rewards = rng.standard_normal(n)
    dones = np.zeros(n, dtype=bool)
    dones[-1] = True
    return states, actions, rewards, next_states, dones


class TestJournal:
    def test_append_flush_roundtrip(self, tmp_path):
        journal = ExperienceJournal(str(tmp_path), segment_size=100)
        traj = _traj()
        journal.append(*traj)
        assert journal.segments() == []  # buffered, below segment_size
        path = journal.flush()
        assert path is not None and journal.segments() == [path]
        with np.load(path) as data:
            assert np.array_equal(data["states"], traj[0])
            assert np.array_equal(data["actions"], traj[1])
            assert np.array_equal(data["rewards"], traj[2])
            assert np.array_equal(data["next_states"], traj[3])
            assert np.array_equal(data["dones"], traj[4])

    def test_auto_flush_at_segment_size(self, tmp_path):
        journal = ExperienceJournal(str(tmp_path), segment_size=8)
        journal.append(*_traj(n=5, seed=1))
        assert journal.segments() == []
        journal.append(*_traj(n=5, seed=2))  # 10 >= 8 -> flush
        assert len(journal.segments()) == 1
        assert journal.counters["segments_written"] == 1
        assert journal.counters["transitions"] == 10
        assert journal.counters["trajectories"] == 2

    def test_rotation_bounds_disk(self, tmp_path):
        journal = ExperienceJournal(
            str(tmp_path), segment_size=2, max_segments=3
        )
        for i in range(6):
            journal.append(*_traj(n=2, seed=i))
        assert len(journal.segments()) == 3
        assert journal.counters["segments_written"] == 6
        assert journal.counters["segments_dropped"] == 3
        # The survivors are the newest three.
        serials = [p.split("seg-")[1] for p in journal.segments()]
        assert serials == ["00000003.npz", "00000004.npz", "00000005.npz"]

    def test_serial_resumes_after_restart(self, tmp_path):
        first = ExperienceJournal(str(tmp_path), segment_size=1)
        first.append(*_traj(n=1))
        second = ExperienceJournal(str(tmp_path), segment_size=1)
        second.append(*_traj(n=1))
        names = [p.rsplit("/", 1)[-1] for p in second.segments()]
        assert names == ["seg-00000000.npz", "seg-00000001.npz"]

    def test_empty_append_is_noop(self, tmp_path):
        journal = ExperienceJournal(str(tmp_path))
        journal.append(
            np.zeros((0, 4)), np.zeros(0), np.zeros(0),
            np.zeros((0, 4)), np.zeros(0, dtype=bool),
        )
        assert journal.flush() is None
        assert journal.counters["trajectories"] == 0

    def test_mismatched_lengths_rejected(self, tmp_path):
        journal = ExperienceJournal(str(tmp_path))
        states, actions, rewards, next_states, dones = _traj(n=4)
        with pytest.raises(ValueError, match="matching lengths"):
            journal.append(states, actions[:3], rewards, next_states, dones)


class TestReader:
    def test_reads_only_new_segments(self, tmp_path):
        journal = ExperienceJournal(str(tmp_path), segment_size=1)
        reader = JournalReader([str(tmp_path)])
        journal.append(*_traj(n=3, seed=1))
        assert len(reader.read_new()) == 1
        assert reader.read_new() == []
        journal.append(*_traj(n=3, seed=2))
        batches = reader.read_new()
        assert len(batches) == 1
        assert len(batches[0][1]) == 3  # actions

    def test_corrupt_segment_skipped(self, tmp_path):
        journal = ExperienceJournal(str(tmp_path), segment_size=1)
        journal.append(*_traj(n=2, seed=1))
        bad = tmp_path / "seg-00000099.npz"
        bad.write_bytes(b"torn write")
        reader = JournalReader([str(tmp_path)])
        batches = reader.read_new()
        assert len(batches) == 1  # the good one; the torn one is skipped

    def test_multiple_directories(self, tmp_path):
        a, b = tmp_path / "shard0", tmp_path / "shard1"
        ExperienceJournal(str(a), segment_size=1).append(*_traj(n=2, seed=1))
        ExperienceJournal(str(b), segment_size=1).append(*_traj(n=3, seed=2))
        reader = JournalReader([str(a), str(b)])
        batches = reader.read_new()
        assert sorted(len(x[1]) for x in batches) == [2, 3]


class TestTap:
    def test_record_derives_next_states_and_dones(self, tmp_path):
        journal = ExperienceJournal(str(tmp_path), segment_size=1)
        tap = ExperienceTap(journal)
        rng = np.random.RandomState(0)
        states = [rng.standard_normal(4).astype(np.float32) for _ in range(4)]
        assert tap.record(states, [1, 2, 3], [0.1, 0.2, 0.3])
        (s, a, r, ns, d) = JournalReader([str(tmp_path)]).read_new()[0]
        assert np.array_equal(s, np.asarray(states[:-1], dtype=np.float32))
        assert np.array_equal(ns, np.asarray(states[1:], dtype=np.float32))
        assert list(a) == [1, 2, 3]
        assert list(d) == [False, False, True]
        assert tap.counters["trajectories"] == 1
        assert tap.counters["transitions"] == 3

    def test_malformed_trajectory_counted_not_raised(self, tmp_path):
        tap = ExperienceTap(ExperienceJournal(str(tmp_path)))
        # states must be len(actions) + 1 rows
        assert not tap.record([np.zeros(4)] * 3, [1, 2, 3], [0.0, 0.0, 0.0])
        assert tap.counters["errors"] == 1
        assert tap.counters["trajectories"] == 0

    def test_empty_trajectory_rejected(self, tmp_path):
        tap = ExperienceTap(ExperienceJournal(str(tmp_path)))
        assert not tap.record([np.zeros(4)], [], [])
        assert tap.counters["errors"] == 1
