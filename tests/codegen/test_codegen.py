"""Codegen cost models: targets, lowering, object size."""

import pytest

from repro.codegen import (
    AARCH64,
    X86_64,
    function_text_size,
    get_target,
    lower_block,
    lower_instruction,
    object_size,
)
from repro.ir import (
    Branch,
    Call,
    ConstantInt,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Store,
    run_module,
)
from repro.passes import optimize, run_passes
from repro.workloads import ProgramProfile, generate_program
from tests.conftest import LOOP_MODULE, build_module


class TestTargets:
    def test_lookup(self):
        assert get_target("x86-64") is X86_64
        assert get_target("x86") is X86_64
        assert get_target("aarch64") is AARCH64
        assert get_target("ARM64") is AARCH64
        with pytest.raises(KeyError):
            get_target("riscv")

    def test_aarch64_is_fixed_width(self):
        assert AARCH64.fixed_width
        assert all(b == 4 for b in AARCH64.op_bytes.values())
        assert not X86_64.fixed_width

    def test_all_op_classes_covered_by_both(self):
        assert set(X86_64.op_bytes) == set(AARCH64.op_bytes)


class TestLowering:
    def test_compare_branch_fusion(self, loop_module):
        fn = loop_module.get_function("entry")
        header = next(b for b in fn.blocks if b.name == "header")
        cmp = next(i for i in header.instructions if isinstance(i, ICmp))
        term = header.terminator
        # The compare fuses; the branch is one op, the cmp is one op.
        assert lower_instruction(cmp, X86_64) == ["alu"]
        assert lower_instruction(term, X86_64) == ["branch"]

    def test_gep_folds_into_addressing(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [8 x i32], align 4
  %p = gep [8 x i32]* %a, i32 0, i32 3
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
        )
        fn = module.get_function("entry")
        gep = next(i for i in fn.instructions() if isinstance(i, GetElementPtr))
        assert lower_instruction(gep, X86_64) == []

    def test_gep_with_value_use_costs_lea(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [8 x i32], align 4
  %p = gep [8 x i32]* %a, i32 0, i32 3
  %q = ptrtoint i32* %p to i64
  %t = trunc i64 %q to i32
  ret i32 %t
}
"""
        )
        fn = module.get_function("entry")
        gep = next(i for i in fn.instructions() if isinstance(i, GetElementPtr))
        assert lower_instruction(gep, X86_64) == ["lea"]

    def test_phi_costs_moves_per_incoming(self, loop_module):
        fn = loop_module.get_function("entry")
        phi = next(i for i in fn.instructions() if isinstance(i, Phi))
        assert lower_instruction(phi, X86_64) == ["mov", "mov"]

    def test_call_costs_arg_setup(self):
        module = build_module(
            """
declare i32 @ext(i32, i32, i32)
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @ext(i32 %n, i32 %n, i32 %n)
  ret i32 %r
}
"""
        )
        fn = module.get_function("entry")
        call = next(i for i in fn.instructions() if isinstance(i, Call))
        ops = lower_instruction(call, X86_64)
        assert ops.count("mov") == 3
        assert ops.count("call") == 1

    def test_large_immediate_materialization(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %r = add i32 %n, 1000000
  ret i32 %r
}
"""
        )
        fn = module.get_function("entry")
        add = fn.entry.instructions[0]
        assert "movimm" in lower_instruction(add, X86_64)

    def test_division_companion_op_on_x86(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %d = or i32 %n, 1
  %r = sdiv i32 100, %d
  ret i32 %r
}
"""
        )
        fn = module.get_function("entry")
        div = next(i for i in fn.instructions() if i.opcode == "sdiv")
        assert lower_instruction(div, X86_64) == ["idiv", "alu"]
        assert lower_instruction(div, AARCH64) == ["idiv"]


class TestObjectSize:
    def test_size_breakdown_components(self, loop_module):
        report = object_size(loop_module, "x86-64")
        assert report.text_bytes > 0
        assert report.total_bytes == (
            report.text_bytes
            + report.data_bytes
            + report.symbol_bytes
            + report.overhead_bytes
        )

    def test_zero_init_global_goes_to_bss(self):
        module = build_module(
            """
@zeros = global [64 x i32] zeroinitializer, align 4
@data = global i32 5, align 4
define i32 @entry(i32 %n) {
entry:
  %a = load i32, i32* @data, align 4
  %p = gep [64 x i32]* @zeros, i32 0, i32 0
  %b = load i32, i32* %p, align 4
  %r = add i32 %a, %b
  ret i32 %r
}
"""
        )
        report = object_size(module, "x86-64")
        assert report.bss_bytes == 256
        assert report.data_bytes == 4

    def test_more_instructions_cost_more_text(self):
        small = build_module("define i32 @entry(i32 %n) {\nentry:\n  ret i32 %n\n}")
        big_body = "\n".join(
            f"  %t{i} = add i32 %n, {i}" for i in range(40)
        )
        big = build_module(
            f"define i32 @entry(i32 %n) {{\nentry:\n{big_body}\n  ret i32 %t39\n}}"
        )
        assert (
            object_size(big, "x86-64").text_bytes
            > object_size(small, "x86-64").text_bytes
        )

    def test_targets_disagree_on_size(self, generated_programs):
        diffs = 0
        for _, module in generated_programs:
            a = object_size(module, "x86-64").total_bytes
            b = object_size(module, "aarch64").total_bytes
            if a != b:
                diffs += 1
        assert diffs > 0

    def test_optimization_reduces_measured_size(self):
        module = generate_program(ProgramProfile(name="sz", seed=5, segments=7))
        before = object_size(module, "x86-64").total_bytes
        optimize(module, "Oz")
        after = object_size(module, "x86-64").total_bytes
        assert after < before

    def test_spill_model_kicks_in_under_pressure(self):
        # 40 simultaneously-live values exceed both register files.
        defs = "\n".join(f"  %v{i} = add i32 %n, {i}" for i in range(40))
        uses = []
        prev = "%v0"
        for i in range(1, 40):
            uses.append(f"  %u{i} = add i32 {prev}, %v{i}")
            prev = f"%u{i}"
        module = build_module(
            f"""
define i32 @entry(i32 %n) {{
entry:
{defs}
  br label %next
next:
{chr(10).join(uses)}
  ret i32 {prev}
}}
"""
        )
        report = function_text_size(module.get_function("entry"), X86_64)
        assert report.spill_pairs > 0

    def test_function_alignment_padding(self):
        module = build_module("define i32 @entry(i32 %n) {\nentry:\n  ret i32 %n\n}")
        report = function_text_size(module.get_function("entry"), X86_64)
        assert report.text_bytes % X86_64.function_alignment == 0
