"""Lowering details not covered by the main codegen tests."""

from repro.codegen import AARCH64, X86_64, lower_instruction
from repro.ir import Call, Cast, Select, Store, Switch
from tests.conftest import build_module


def _inst(src, cls):
    module = build_module(src)
    return next(
        i for i in module.get_function("entry").instructions()
        if isinstance(i, cls)
    )


def test_memset_call_lowering():
    call = _inst(
        """
declare void @llvm.memset.p0i8.i64(i8* %d, i8 %v, i64 %l)
define i32 @entry(i32 %n) {
entry:
  %a = alloca [16 x i8], align 1
  %p = gep [16 x i8]* %a, i32 0, i32 0
  call void @llvm.memset.p0i8.i64(i8* %p, i8 0, i64 16)
  ret i32 %n
}
""",
        Call,
    )
    ops = lower_instruction(call, X86_64)
    assert ops == ["mov", "mov", "mov", "call"]


def test_residual_intrinsic_is_cheap():
    call = _inst(
        """
declare i32 @llvm.expect.i32(i32 %v, i32 %e)
define i32 @entry(i32 %n) {
entry:
  %e = call i32 @llvm.expect.i32(i32 %n, i32 1)
  ret i32 %e
}
""",
        Call,
    )
    assert lower_instruction(call, X86_64) == ["alu"]


def test_stack_args_beyond_six():
    call = _inst(
        """
declare i32 @many(i32, i32, i32, i32, i32, i32, i32, i32)
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @many(i32 %n, i32 %n, i32 %n, i32 %n, i32 %n, i32 %n, i32 %n, i32 %n)
  ret i32 %r
}
""",
        Call,
    )
    ops = lower_instruction(call, X86_64)
    assert ops.count("mov") == 6
    assert ops.count("store") == 2  # stack-passed args


def test_select_is_cmov():
    sel = _inst(
        """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  %s = select i1 %c, i32 1, i32 2
  ret i32 %s
}
""",
        Select,
    )
    assert lower_instruction(sel, X86_64) == ["cmov"]
    assert lower_instruction(sel, AARCH64) == ["cmov"]


def test_free_casts():
    for op in ("bitcast", "trunc"):
        cast = _inst(
            f"""
define i32 @entry(i32 %n) {{
entry:
  %w = sext i32 %n to i64
  %x = {op} i64 %w to i32
  ret i32 %x
}}
""",
            Cast,
        ) if op == "bitcast" else None
    # trunc directly:
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %w = sext i32 %n to i64
  %x = trunc i64 %w to i32
  ret i32 %x
}
"""
    )
    insts = list(module.get_function("entry").instructions())
    sext, trunc = insts[0], insts[1]
    assert lower_instruction(sext, X86_64) == ["alu"]
    assert lower_instruction(trunc, X86_64) == []


def test_switch_cost_scales_with_cases():
    sw = _inst(
        """
define i32 @entry(i32 %n) {
entry:
  switch i32 %n, label %d [ i32 0, label %a  i32 1, label %b ]
a:
  ret i32 1
b:
  ret i32 2
d:
  ret i32 3
}
""",
        Switch,
    )
    ops = lower_instruction(sw, X86_64)
    assert ops.count("branch") == 3  # one per case + default
    assert ops.count("alu") == 2


def test_store_of_large_immediate():
    store = _inst(
        """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 9999999, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
""",
        Store,
    )
    assert "movimm" in lower_instruction(store, X86_64)
    # AArch64 tolerates a wider immediate range but 9999999 > 4095 too.
    assert "movimm" in lower_instruction(store, AARCH64)
