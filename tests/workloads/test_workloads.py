"""Workload generator and benchmark suites."""

import pytest

from repro.ir import Alloca, Call, Load, Store, run_module, verify_module
from repro.analysis import LoopInfo
from repro.workloads import (
    MIBENCH_PROFILES,
    ProgramProfile,
    SPEC2006_PROFILES,
    SPEC2017_PROFILES,
    SUITES,
    generate_program,
    load_suite,
)


class TestGenerator:
    def test_deterministic(self):
        from repro.ir import print_module

        p = ProgramProfile(name="d", seed=42)
        assert print_module(generate_program(p)) == print_module(generate_program(p))

    def test_different_seeds_differ(self):
        from repro.ir import print_module

        a = generate_program(ProgramProfile(name="x", seed=1))
        b = generate_program(ProgramProfile(name="x", seed=2))
        assert print_module(a) != print_module(b)

    def test_valid_and_runnable(self):
        for seed in range(4):
            m = generate_program(ProgramProfile(name="v", seed=seed, segments=6))
            verify_module(m)
            result, _ = run_module(m, "entry", [seed])
            assert isinstance(result, int)
            assert 0 <= result <= 0xFFFF  # final mask bounds the result

    def test_profile_controls_constructs(self):
        loopy = generate_program(
            ProgramProfile(
                name="loopy", seed=7, segments=8,
                w_zero_loop=5.0, w_compute_loop=5.0,
                w_arith=0.01, w_branch=0.01, w_call=0.01, w_switch=0.01,
                w_fp=0.01, w_small_loop=0.01, w_invariant_loop=0.01,
                w_copy_loop=0.01,
            )
        )
        flat = generate_program(
            ProgramProfile(
                name="flat", seed=7, segments=8,
                w_zero_loop=0.01, w_compute_loop=0.01, w_copy_loop=0.01,
                w_small_loop=0.01, w_invariant_loop=0.01,
                w_arith=5.0, w_branch=0.01, w_call=0.01, w_switch=0.01,
                w_fp=0.01,
            )
        )
        assert len(LoopInfo(loopy.get_function("entry")).loops) > len(
            LoopInfo(flat.get_function("entry")).loops
        )

    def test_dead_args_and_helpers_present(self):
        m = generate_program(ProgramProfile(name="h", seed=3, helpers=2))
        assert m.get_function("never_called") is not None
        helper = m.get_function("helper0")
        assert helper is not None and helper.is_internal
        assert len(helper.args) == 3  # x, y + dead arg

    def test_recursive_helper(self):
        m = generate_program(
            ProgramProfile(name="r", seed=3, recursive_helper=True)
        )
        fn = m.get_function("sum_to")
        assert fn is not None
        assert any(
            isinstance(i, Call) and i.called_function is fn
            for i in fn.instructions()
        )

    def test_duplicate_globals_for_constmerge(self):
        m = generate_program(ProgramProfile(name="g", seed=3, duplicate_globals=3))
        names = {g.name for g in m.globals}
        assert {"kconst0", "kconst1", "kconst2"} <= names

    def test_optimization_opportunities_exist(self):
        """The full Oz pipeline must find real work in generated code."""
        from repro.passes import optimize

        m = generate_program(ProgramProfile(name="o", seed=9, segments=8))
        before = m.instruction_count
        optimize(m, "Oz")
        assert m.instruction_count < before * 0.9


class TestSuites:
    def test_suite_names(self):
        assert set(SUITES) == {
            "mibench", "spec2006", "spec2017", "llvm_test_suite"
        }

    def test_paper_benchmarks_present(self):
        assert "541.leela_r" in SPEC2017_PROFILES
        assert "520.omnetpp_r" in SPEC2017_PROFILES
        assert "519.lbm_r" in SPEC2017_PROFILES
        assert "464.h264ref" in SPEC2006_PROFILES
        assert "susan" in MIBENCH_PROFILES

    def test_mibench_smaller_than_spec(self):
        mib = load_suite("mibench")
        spec = load_suite("spec2017")
        avg = lambda suite: sum(m.instruction_count for _, m in suite) / len(suite)
        assert avg(mib) < avg(spec)

    def test_training_corpus_size(self):
        from repro.workloads import llvm_test_suite

        corpus = llvm_test_suite(count=10)
        assert len(corpus) == 10
        names = [n for n, _ in corpus]
        assert len(set(names)) == 10

    def test_all_suite_programs_verify_and_run(self):
        for name in ("mibench", "spec2006", "spec2017"):
            for bench, module in load_suite(name):
                verify_module(module)
                result, _ = run_module(module, "entry", [3])
                assert isinstance(result, int), bench

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            load_suite("parsec")
