"""Property tests over suite programs: every named benchmark behaves like a
valid compiler workload end-to-end."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.codegen import object_size
from repro.ir import run_module, verify_module
from repro.mca import estimate_throughput
from repro.passes import optimize
from repro.workloads import (
    MIBENCH_PROFILES,
    SPEC2006_PROFILES,
    SPEC2017_PROFILES,
    generate_program,
)

ALL_PROFILES = {
    **MIBENCH_PROFILES,
    **SPEC2006_PROFILES,
    **SPEC2017_PROFILES,
}


@pytest.mark.parametrize("name", sorted(ALL_PROFILES))
def test_benchmark_full_lifecycle(name):
    """Each named benchmark: valid, runnable, optimizable, measurable."""
    module = generate_program(ALL_PROFILES[name])
    verify_module(module)
    base, _ = run_module(module, "entry", [4])

    raw_size = object_size(module, "x86-64").total_bytes
    raw_cycles = estimate_throughput(module, "x86-64").total_cycles
    assert raw_size > 0 and raw_cycles > 0

    optimize(module, "Oz")
    verify_module(module)
    after, _ = run_module(module, "entry", [4])
    assert after == base, f"{name}: Oz changed observable behaviour"
    assert object_size(module, "x86-64").total_bytes < raw_size


@given(
    name=st.sampled_from(sorted(ALL_PROFILES)),
    arg=st.integers(-30, 30),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_benchmarks_deterministic_across_regeneration(name, arg):
    a = generate_program(ALL_PROFILES[name])
    b = generate_program(ALL_PROFILES[name])
    ra, _ = run_module(a, "entry", [arg])
    rb, _ = run_module(b, "entry", [arg])
    assert ra == rb
