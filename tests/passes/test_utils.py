"""IR-surgery utilities in repro.passes.utils."""

from repro.ir import ConstantInt, I32, Phi, run_module, verify_module
from repro.passes.utils import (
    constant_fold_terminator,
    erase_trivially_dead,
    merge_block_into_predecessor,
    redirect_branch,
    replace_and_erase,
    simplify_single_incoming_phis,
    split_edge,
)
from tests.conftest import build_module


DIAMOND = """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ 1, %a ], [ 2, %b ]
  ret i32 %p
}
"""


def blocks_of(module):
    fn = module.get_function("entry")
    return fn, {b.name: b for b in fn.blocks}


def test_split_edge_inserts_block_and_fixes_phis():
    module = build_module(DIAMOND)
    fn, blocks = blocks_of(module)
    mid = split_edge(blocks["a"], blocks["m"])
    verify_module(module)
    assert mid in fn.blocks
    assert blocks["a"].successors() == [mid]
    assert mid.successors() == [blocks["m"]]
    # The phi now names the new block as its predecessor.
    phi = blocks["m"].phis()[0]
    assert phi.incoming_for_block(mid) is not None
    assert phi.incoming_for_block(blocks["a"]) is None
    assert run_module(module, "entry", [5])[0] == 1


def test_redirect_branch_moves_edge_and_phi():
    module = build_module(DIAMOND)
    fn, blocks = blocks_of(module)
    # Send entry's false edge to %a instead of %b.
    redirect_branch(blocks["entry"], blocks["b"], blocks["a"])
    from repro.analysis import remove_unreachable_blocks

    remove_unreachable_blocks(fn)
    verify_module(module)
    assert run_module(module, "entry", [-5])[0] == 1


def test_merge_block_into_predecessor():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %a = add i32 %n, 1
  br label %next
next:
  %b = mul i32 %a, 2
  ret i32 %b
}
"""
    )
    fn, blocks = blocks_of(module)
    assert merge_block_into_predecessor(blocks["next"])
    verify_module(module)
    assert len(fn.blocks) == 1
    assert run_module(module, "entry", [3])[0] == 8


def test_merge_refuses_multi_successor_pred():
    module = build_module(DIAMOND)
    fn, blocks = blocks_of(module)
    assert not merge_block_into_predecessor(blocks["a"])


def test_constant_fold_terminator_branch():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br i1 false, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
"""
    )
    fn, blocks = blocks_of(module)
    assert constant_fold_terminator(blocks["entry"])
    assert blocks["entry"].successors() == [blocks["b"]]


def test_simplify_single_incoming_phis_guard():
    """A loop-carried single-entry phi must not fold (dominance)."""
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  br label %body
body:
  %p = phi i32 [ %x, %latch ], [ 0, %h ]
  %x = add i32 %p, 1
  %c = icmp slt i32 %x, %n
  br i1 %c, label %latch, label %out
latch:
  br label %body
out:
  ret i32 %x
}
"""
    )
    fn, blocks = blocks_of(module)
    body = blocks["body"]
    # The phi has two incomings; reduce to the loop-carried one only after
    # verifying the guard via unique_value on a same-block def.
    phi = body.phis()[0]
    x = body.instructions[1]
    assert phi.incoming_for_block(blocks["latch"]) is x
    # Full simplification across the function must keep the program valid.
    for b in fn.blocks:
        simplify_single_incoming_phis(b)
    verify_module(module)
    assert run_module(module, "entry", [4])[0] == 4


def test_replace_and_erase_and_dce():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %a = add i32 %n, 0
  %b = mul i32 %a, 1
  %dead = sub i32 %b, %b
  ret i32 %b
}
"""
    )
    fn, _ = blocks_of(module)
    a = next(i for i in fn.instructions() if i.name == "a")
    replace_and_erase(a, fn.args[0])
    assert erase_trivially_dead(fn)
    verify_module(module)
    assert run_module(module, "entry", [7])[0] == 7
