"""Hypothesis properties: the folder, the interpreter and the live program
must agree for every operation and operand pattern."""

from hypothesis import given, settings, strategies as st

from repro.ir import (
    ConstantInt,
    I8,
    I32,
    parse_module,
    run_module,
    ICMP_PREDICATES,
)
from repro.ir.interp import _icmp, _int_binop
from repro.passes.fold import fold_binary, fold_icmp

SAFE_OPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"]

ints32 = st.integers(-(2**31), 2**31 - 1)
ints8 = st.integers(-128, 127)


@given(op=st.sampled_from(SAFE_OPS), a=ints32, b=ints32)
@settings(max_examples=200, deadline=None)
def test_fold_equals_interp_helper(op, a, b):
    folded = fold_binary(op, ConstantInt(I32, a), ConstantInt(I32, b))
    assert folded is not None
    assert folded.value == _int_binop(op, I32, I32.wrap(a), I32.wrap(b))


@given(op=st.sampled_from(SAFE_OPS), a=ints8, b=ints8)
@settings(max_examples=100, deadline=None)
def test_fold_equals_execution_i8(op, a, b):
    """Fold vs actually running the instruction through the interpreter."""
    module = parse_module(
        f"""
define i32 @entry(i32 %n) {{
entry:
  %a = trunc i32 {a} to i8
  %b = trunc i32 {b} to i8
  %r = {op} i8 %a, %b
  %w = sext i8 %r to i32
  ret i32 %w
}}
"""
    )
    executed, _ = run_module(module, "entry", [0])
    folded = fold_binary(op, ConstantInt(I8, a), ConstantInt(I8, b))
    assert folded.value == executed


@given(pred=st.sampled_from(ICMP_PREDICATES), a=ints32, b=ints32)
@settings(max_examples=200, deadline=None)
def test_icmp_fold_equals_interp(pred, a, b):
    folded = fold_icmp(pred, ConstantInt(I32, a), ConstantInt(I32, b))
    assert folded is not None
    assert folded.value == _icmp(pred, I32, I32.wrap(a), I32.wrap(b))


@given(
    op=st.sampled_from(["sdiv", "udiv", "srem", "urem"]),
    a=ints32,
    b=ints32.filter(lambda v: v != 0),
)
@settings(max_examples=150, deadline=None)
def test_division_fold_matches_interp(op, a, b):
    folded = fold_binary(op, ConstantInt(I32, a), ConstantInt(I32, b))
    assert folded is not None
    assert folded.value == _int_binop(op, I32, I32.wrap(a), I32.wrap(b))
