"""Failure injection: the pass framework must localize faults."""

import pytest

from repro.ir import ConstantInt, I32, VerificationError
from repro.passes import FunctionPass, ModulePass, Pass, PassManager
from repro.workloads import ProgramProfile, generate_program


def _module():
    return generate_program(ProgramProfile(name="fail", seed=4, segments=4))


class ThrowingPass(ModulePass):
    name = "throwing-test-pass"

    def run_on_module(self, module):
        raise ValueError("synthetic fault")


class IRBreakingPass(FunctionPass):
    """Deletes a terminator — leaves invalid IR behind."""

    name = "ir-breaking-test-pass"

    def run_on_function(self, fn):
        fn.entry.terminator.erase_from_parent()
        return True


class NoOpPass(ModulePass):
    name = "noop-test-pass"

    def run_on_module(self, module):
        return False


def test_exception_names_the_pass():
    pm = PassManager([NoOpPass(), ThrowingPass()])
    with pytest.raises(RuntimeError, match="throwing-test-pass"):
        pm.run(_module())


def test_verify_mode_names_the_breaking_pass():
    pm = PassManager(
        [NoOpPass(), IRBreakingPass(), NoOpPass()], verify=True
    )
    with pytest.raises(RuntimeError, match="ir-breaking-test-pass"):
        pm.run(_module())


def test_without_verify_breakage_is_not_checked():
    pm = PassManager([IRBreakingPass()])
    pm.run(_module())  # no exception: verification is opt-in


def test_changed_passes_reflect_partial_progress():
    pm = PassManager(["simplifycfg", ThrowingPass()])
    module = _module()
    with pytest.raises(RuntimeError):
        pm.run(module)
    # simplifycfg's result is recorded even though the run aborted.
    assert pm.changed_passes in ([], ["simplifycfg"])


def test_unregistered_pass_instance_usable():
    """Pass instances need not be in the registry."""

    class Anonymous(ModulePass):
        name = "anonymous"

        def run_on_module(self, module):
            return False

    pm = PassManager([Anonymous()])
    assert not pm.run(_module())


def test_base_pass_is_abstract():
    class Incomplete(Pass):
        name = "incomplete"

    with pytest.raises(NotImplementedError):
        Incomplete().run_on_module(_module())


def test_function_pass_requires_run_on_function():
    class Incomplete(FunctionPass):
        name = "incomplete-fn"

    with pytest.raises(NotImplementedError):
        Incomplete().run_on_module(_module())


def test_environment_survives_noop_actions():
    """An action that changes nothing yields ~zero reward, not an error."""
    from repro.core import ActionSpace, PhaseOrderingEnv

    module = _module()
    env = PhaseOrderingEnv(module, ActionSpace([["barrier"]]), episode_length=2)
    env.reset()
    _, reward, _, info = env.step(0)
    assert reward == pytest.approx(0.0)
    assert info.bin_size == env.base_size
