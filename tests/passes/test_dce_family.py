"""-dce, -adce, -bdce."""

from repro.ir import run_module, verify_module
from repro.passes import run_passes
from tests.conftest import assert_semantics_preserved, build_module


def icount(module, fn="entry"):
    return module.get_function(fn).instruction_count


def test_dce_removes_unused_pure():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %dead = mul i32 %n, 3
  %dead2 = add i32 %dead, 1
  ret i32 %n
}
"""
    )
    run_passes(module, ["dce"])
    assert icount(module) == 1


def test_dce_keeps_side_effects():
    module = build_module(
        """
declare i32 @ext(i32)
define i32 @entry(i32 %n) {
entry:
  %unused = call i32 @ext(i32 %n)
  ret i32 %n
}
"""
    )
    run_passes(module, ["dce"])
    assert icount(module) == 2  # the call stays


def test_dce_removes_pure_willreturn_call():
    module = build_module(
        """
declare i32 @pure(i32) readnone willreturn
define i32 @entry(i32 %n) {
entry:
  %unused = call i32 @pure(i32 %n)
  ret i32 %n
}
"""
    )
    run_passes(module, ["dce"])
    assert icount(module) == 1


def test_adce_kills_dead_phi_cycle():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %loop
loop:
  %deadphi = phi i32 [ 0, %entry ], [ %deadnext, %loop ]
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %deadnext = add i32 %deadphi, 1
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %loop, label %out
out:
  ret i32 %i2
}
"""
    )
    before, _ = run_module(module, "entry", [5])
    # Plain DCE cannot remove the mutually-referential pair...
    run_passes(module, ["dce"])
    assert any(i.name == "deadphi" for i in module.get_function("entry").instructions())
    # ...ADCE can.
    run_passes(module, ["adce"])
    verify_module(module)
    assert not any(
        i.name == "deadphi" for i in module.get_function("entry").instructions()
    )
    assert run_module(module, "entry", [5])[0] == before


def test_adce_preserves_stores():
    module = build_module(
        """
@g = internal global i32 0, align 4
define i32 @entry(i32 %n) {
entry:
  store i32 %n, i32* @g, align 4
  %v = load i32, i32* @g, align 4
  ret i32 %v
}
"""
    )
    assert_semantics_preserved(module, lambda m: run_passes(m, ["adce"]))
    assert icount(module) == 3


def test_bdce_zero_demanded_bits():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %big = shl i32 %n, 16
  %masked = and i32 %big, 255
  ret i32 %masked
}
"""
    )
    # All demanded bits of %big are below bit 16 -> %big contributes 0.
    assert_semantics_preserved(module, lambda m: run_passes(m, ["bdce", "instsimplify"]))
    assert icount(module) == 1  # ret of constant 0


def test_bdce_respects_demanded_bits_through_trunc():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %w = zext i32 %n to i64
  %s = shl i64 %w, 40
  %t = trunc i64 %s to i32
  ret i32 %t
}
"""
    )
    assert_semantics_preserved(module, lambda m: run_passes(m, ["bdce", "instsimplify"]))
    assert run_module(module, "entry", [123])[0] == 0


def test_bdce_keeps_live_bits():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %x = shl i32 %n, 2
  %m = and i32 %x, 12
  ret i32 %m
}
"""
    )
    before = run_module(module, "entry", [3])[0]
    run_passes(module, ["bdce"])
    verify_module(module)
    assert run_module(module, "entry", [3])[0] == before == 12
