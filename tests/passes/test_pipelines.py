"""Standard pipelines: structure and end-to-end behaviour."""

import pytest

from repro.codegen import object_size
from repro.ir import run_module, verify_module
from repro.passes import (
    OPT_LEVELS,
    OZ_PASS_SEQUENCE,
    PASS_REGISTRY,
    available_passes,
    build_pipeline,
    create_pass,
    optimize,
    parse_pass_list,
    run_passes,
)
from repro.workloads import ProgramProfile, generate_program


class TestOzSequence:
    def test_matches_paper_counts(self):
        """Table I: 90 transformation passes, 54 unique (Section I)."""
        assert len(OZ_PASS_SEQUENCE) == 90
        assert len(set(OZ_PASS_SEQUENCE)) == 54

    def test_every_pass_is_registered(self):
        for name in OZ_PASS_SEQUENCE:
            assert name in PASS_REGISTRY, name

    def test_known_ordering_landmarks(self):
        # The sequence starts and ends as printed in Table I.
        assert OZ_PASS_SEQUENCE[0] == "ee-instrument"
        assert OZ_PASS_SEQUENCE[1] == "simplifycfg"
        assert OZ_PASS_SEQUENCE[-1] == "simplifycfg"
        assert OZ_PASS_SEQUENCE[-2] == "div-rem-pairs"
        assert OZ_PASS_SEQUENCE[-3] == "instsimplify"

    def test_parse_pass_list(self):
        assert parse_pass_list("-simplifycfg -sroa") == ["simplifycfg", "sroa"]
        assert parse_pass_list("gvn dce") == ["gvn", "dce"]


class TestRegistry:
    def test_create_pass_by_flag(self):
        p = create_pass("-simplifycfg")
        assert p.name == "simplifycfg"

    def test_unknown_pass_raises(self):
        with pytest.raises(KeyError):
            create_pass("frobnicate")

    def test_at_least_all_oz_passes_available(self):
        assert set(OZ_PASS_SEQUENCE) <= set(available_passes())


@pytest.fixture(scope="module")
def program():
    return generate_program(ProgramProfile(name="pipe", seed=99, segments=7))


class TestLevels:
    @pytest.mark.parametrize("level", OPT_LEVELS)
    def test_level_preserves_semantics(self, program, level):
        module = program.clone()
        baseline, _ = run_module(program, "entry", [6])
        optimize(module, level)
        verify_module(module)
        result, _ = run_module(module, "entry", [6])
        assert result == baseline

    def test_o0_is_identity(self, program):
        module = program.clone()
        assert not build_pipeline("O0").run(module)

    def test_oz_not_larger_than_o3(self, program):
        """The size ranking that motivates the paper (Fig. 1): Oz should
        produce code no larger than O3."""
        o3 = program.clone()
        oz = program.clone()
        optimize(o3, "O3")
        optimize(oz, "Oz")
        assert (
            object_size(oz, "x86-64").total_bytes
            <= object_size(o3, "x86-64").total_bytes
        )

    def test_optimization_shrinks_code(self, program):
        module = program.clone()
        before = object_size(module, "x86-64").total_bytes
        optimize(module, "Oz")
        after = object_size(module, "x86-64").total_bytes
        assert after < before

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            build_pipeline("O7")


def test_pass_manager_reports_changed_passes(program):
    pm = build_pipeline("Oz")
    pm.run(program.clone())
    assert "simplifycfg" in pm.changed_passes


def test_pipeline_is_convergent(program):
    """Running Oz twice: the second run changes little and keeps semantics."""
    module = program.clone()
    baseline, _ = run_module(module, "entry", [4])
    optimize(module, "Oz")
    optimize(module, "Oz")
    verify_module(module)
    assert run_module(module, "entry", [4])[0] == baseline
