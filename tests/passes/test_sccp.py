"""-sccp and -ipsccp."""

from repro.ir import run_module, verify_module
from repro.passes import run_passes
from tests.conftest import assert_semantics_preserved, build_module


def test_propagates_through_branch():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %x = add i32 2, 3
  %c = icmp eq i32 %x, 5
  br i1 %c, label %yes, label %no
yes:
  ret i32 100
no:
  ret i32 200
}
"""
    )
    run_passes(module, ["sccp"])
    verify_module(module)
    fn = module.get_function("entry")
    assert not any(b.name == "no" for b in fn.blocks)  # unreachable removed
    assert run_module(module, "entry", [0])[0] == 100


def test_phi_of_constants_on_executable_edges():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br i1 true, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p = phi i32 [ 7, %a ], [ 9, %b ]
  %r = mul i32 %p, 2
  ret i32 %r
}
"""
    )
    run_passes(module, ["sccp"])
    assert run_module(module, "entry", [0])[0] == 14
    assert module.get_function("entry").instruction_count <= 3


def test_overdefined_stays(loop_module):
    assert_semantics_preserved(loop_module, lambda m: run_passes(m, ["sccp"]))


def test_sccp_through_select():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 1, 0
  %s = select i1 %c, i32 11, i32 22
  ret i32 %s
}
"""
    )
    run_passes(module, ["sccp"])
    assert module.get_function("entry").instruction_count == 1
    assert run_module(module, "entry", [0])[0] == 11


def test_switch_folding():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %k = add i32 1, 1
  switch i32 %k, label %d [ i32 1, label %a  i32 2, label %b ]
a:
  ret i32 10
b:
  ret i32 20
d:
  ret i32 30
}
"""
    )
    run_passes(module, ["sccp"])
    names = {b.name for b in module.get_function("entry").blocks}
    assert "a" not in names and "d" not in names
    assert run_module(module, "entry", [0])[0] == 20


def test_does_not_fold_division_by_zero():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %z = sub i32 5, 5
  %d = sdiv i32 10, %z
  ret i32 %d
}
"""
    )
    run_passes(module, ["sccp"])
    verify_module(module)
    # The trap must remain a trap.
    import pytest
    from repro.ir import InterpError

    with pytest.raises(InterpError):
        run_module(module, "entry", [0])


def test_loads_are_overdefined():
    module = build_module(
        """
@g = global i32 5, align 4
define i32 @entry(i32 %n) {
entry:
  %v = load i32, i32* @g, align 4
  %c = icmp eq i32 %v, 5
  br i1 %c, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
"""
    )
    run_passes(module, ["sccp"])
    verify_module(module)
    # Both sides must survive (g is externally writable).
    assert len(module.get_function("entry").blocks) == 3


class TestIPSCCP:
    def test_propagates_constant_argument(self):
        module = build_module(
            """
define internal i32 @callee(i32 %x) {
entry:
  %r = mul i32 %x, 2
  ret i32 %r
}
define i32 @entry(i32 %n) {
entry:
  %a = call i32 @callee(i32 21)
  %b = call i32 @callee(i32 21)
  %r = add i32 %a, %b
  ret i32 %r
}
"""
        )
        run_passes(module, ["ipsccp"])
        verify_module(module)
        assert run_module(module, "entry", [0])[0] == 84
        # Call results were replaced by the constant 42.
        entry = module.get_function("entry")
        from repro.ir import Call

        calls = [i for i in entry.instructions() if isinstance(i, Call)]
        for call in calls:
            assert not call.has_uses

    def test_mixed_arguments_not_pinned(self):
        module = build_module(
            """
define internal i32 @callee(i32 %x) {
entry:
  %r = mul i32 %x, 2
  ret i32 %r
}
define i32 @entry(i32 %n) {
entry:
  %a = call i32 @callee(i32 3)
  %b = call i32 @callee(i32 %n)
  %r = add i32 %a, %b
  ret i32 %r
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["ipsccp"]))

    def test_constant_return_propagates(self):
        module = build_module(
            """
define internal i32 @const7(i32 %x) {
entry:
  ret i32 7
}
define i32 @entry(i32 %n) {
entry:
  %a = call i32 @const7(i32 %n)
  %r = add i32 %a, %n
  ret i32 %r
}
"""
        )
        run_passes(module, ["ipsccp", "dce"])
        verify_module(module)
        assert run_module(module, "entry", [5])[0] == 12

    def test_external_function_args_not_pinned(self):
        module = build_module(
            """
define i32 @visible(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
define i32 @entry(i32 %n) {
entry:
  %a = call i32 @visible(i32 4)
  ret i32 %a
}
"""
        )
        run_passes(module, ["ipsccp"])
        # `visible` is external: other TUs may call it with anything, so its
        # body must stay general.
        assert run_module(module, "visible", [10])[0] == 11
