"""Classic phase-ordering interactions — the pass-interplay facts the
whole paper is premised on must actually hold on this substrate."""

from repro.codegen import object_size
from repro.ir import Call, Load, Phi, VectorType, run_module, verify_module
from repro.mca import estimate_throughput
from repro.passes import run_passes
from tests.conftest import build_module


ROTATE_LICM = """
define i32 @entry(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %latch ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %latch ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %inv = mul i32 %n, 17
  %acc2 = add i32 %acc, %inv
  br label %latch
latch:
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"""


def test_rotation_enables_better_licm():
    """licm alone vs rotate-then-licm: rotation guards the preheader with
    the loop test, letting speculation-unsafe-ish placement improve."""
    just_licm = build_module(ROTATE_LICM)
    run_passes(just_licm, ["licm", "dce"])
    rotated = build_module(ROTATE_LICM)
    run_passes(
        rotated, ["loop-simplify", "lcssa", "loop-rotate", "licm", "dce"]
    )
    verify_module(rotated)
    for n in (0, 5):
        a, _ = run_module(just_licm.clone(), "entry", [n])
        b, _ = run_module(rotated.clone(), "entry", [n])
        assert a == b


def test_inline_enables_constant_folding():
    """inline → sccp folds what neither does alone."""
    src = """
define internal i32 @select_mode(i32 %flag) {
entry:
  %c = icmp eq i32 %flag, 1
  br i1 %c, label %a, label %b
a:
  ret i32 100
b:
  ret i32 200
}
define i32 @entry(i32 %n) {
entry:
  %m = call i32 @select_mode(i32 1)
  %r = add i32 %m, %n
  ret i32 %r
}
"""
    only_sccp = build_module(src)
    run_passes(only_sccp, ["sccp"])
    assert any(
        isinstance(i, Call)
        for i in only_sccp.get_function("entry").instructions()
    )

    combo = build_module(src)
    run_passes(combo, ["inline", "sccp", "simplifycfg", "dce", "globaldce"])
    entry = combo.get_function("entry")
    assert not any(isinstance(i, Call) for i in entry.instructions())
    assert run_module(combo, "entry", [5])[0] == 105


def test_mem2reg_enables_gvn():
    """Store/load through memory hides redundancy until promotion."""
    src = """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  %v1 = load i32, i32* %p, align 4
  %a = mul i32 %v1, 3
  %v2 = load i32, i32* %p, align 4
  %b = mul i32 %v2, 3
  %r = sub i32 %a, %b
  ret i32 %r
}
"""
    without = build_module(src)
    run_passes(without, ["gvn", "instsimplify"])
    with_promotion = build_module(src)
    run_passes(with_promotion, ["mem2reg", "gvn", "instsimplify"])
    assert (
        with_promotion.get_function("entry").instruction_count
        <= without.get_function("entry").instruction_count
    )
    assert run_module(with_promotion, "entry", [6])[0] == 0


def test_indvars_enables_loop_deletion():
    src = """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 20
  br i1 %c, label %h, label %exit
exit:
  ret i32 %i2
}
"""
    direct = build_module(src)
    assert not run_passes(direct, ["loop-deletion"])  # i2 escapes

    staged = build_module(src)
    run_passes(staged, ["indvars", "loop-deletion", "simplifycfg"])
    from repro.analysis import LoopInfo

    assert LoopInfo(staged.get_function("entry")).loops == []
    assert run_module(staged, "entry", [0])[0] == 20


def test_distribute_enables_vectorize():
    """Two store streams, one containing a division (which the
    vectorizer refuses): the loop only vectorizes after fission splits
    the streams apart."""
    src = """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [16 x i32], align 16
  %b = alloca [16 x i32], align 16
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %va = mul i32 %i, 2
  %pa = gep [16 x i32]* %a, i32 0, i32 %i
  store i32 %va, i32* %pa, align 4
  %i1 = add i32 %i, 1
  %vb = sdiv i32 %i1, 3
  %pb = gep [16 x i32]* %b, i32 0, i32 %i
  store i32 %vb, i32* %pb, align 4
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 16
  br i1 %c, label %h, label %exit
exit:
  %q = gep [16 x i32]* %a, i32 0, i32 3
  %r = load i32, i32* %q, align 4
  ret i32 %r
}
"""
    direct = build_module(src)
    run_passes(direct, ["loop-vectorize"])
    assert not any(
        isinstance(i.type, VectorType)
        for i in direct.get_function("entry").instructions()
        if not i.type.is_void
    )

    staged = build_module(src)
    before, _ = run_module(staged.clone(), "entry", [1])
    run_passes(staged, ["loop-distribute", "loop-vectorize"])
    verify_module(staged)
    assert any(
        isinstance(i.type, VectorType)
        for i in staged.get_function("entry").instructions()
        if not i.type.is_void
    )
    assert run_module(staged, "entry", [1])[0] == before


def test_unswitch_speed_vs_size_tradeoff():
    """Unswitching should cut cycles and grow bytes — the tension the
    combined reward navigates."""
    src = """
define i32 @entry(i32 %n) {
entry:
  %flag = icmp sgt i32 %n, 10
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %latch ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %latch ]
  br i1 %flag, label %a, label %b
a:
  %x = add i32 %acc, %i
  br label %latch
b:
  %y = add i32 %acc, 7
  br label %latch
latch:
  %acc2 = phi i32 [ %x, %a ], [ %y, %b ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 32
  br i1 %c, label %h, label %exit
exit:
  %out = phi i32 [ %acc2, %latch ]
  ret i32 %out
}
"""
    from repro.codegen import function_text_size, X86_64

    module = build_module(src)
    ops_before = function_text_size(
        module.get_function("entry"), X86_64
    ).machine_ops
    cycles_before = estimate_throughput(module, "x86-64").total_cycles
    assert run_passes(module, ["loop-unswitch", "simplifycfg"])
    verify_module(module)
    ops_after = function_text_size(
        module.get_function("entry"), X86_64
    ).machine_ops
    cycles_after = estimate_throughput(module, "x86-64").total_cycles
    assert ops_after > ops_before  # the body was duplicated
    assert cycles_after < cycles_before  # the in-loop branch is gone
    for n in (5, 20):
        assert run_module(module, "entry", [n])[0] == run_module(
            build_module(src), "entry", [n]
        )[0]


def test_order_changes_outcome():
    """The same two sub-sequences in different orders produce different
    binaries — the premise of phase ordering."""
    from repro.core import PAPER_ODG_SUBSEQUENCES
    from repro.workloads import ProgramProfile, generate_program

    differs = 0
    for seed in range(6):
        module = generate_program(
            ProgramProfile(name=f"ord{seed}", seed=seed, segments=6)
        )
        ab = module.clone()
        run_passes(ab, list(PAPER_ODG_SUBSEQUENCES[7]))   # loop group
        run_passes(ab, list(PAPER_ODG_SUBSEQUENCES[23]))  # inline group
        ba = module.clone()
        run_passes(ba, list(PAPER_ODG_SUBSEQUENCES[23]))
        run_passes(ba, list(PAPER_ODG_SUBSEQUENCES[7]))
        if (
            object_size(ab, "x86-64").total_bytes
            != object_size(ba, "x86-64").total_bytes
        ):
            differs += 1
        # Whatever the order, semantics hold.
        r0, _ = run_module(module, "entry", [4])
        assert run_module(ab, "entry", [4])[0] == r0
        assert run_module(ba, "entry", [4])[0] == r0
    assert differs >= 1
