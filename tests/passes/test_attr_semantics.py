"""Attribute inference must never enable an unsound downstream transform:
functions flagged readnone/willreturn really are removable/CSE-able."""

from repro.ir import Call, run_module, verify_module
from repro.passes import run_passes
from repro.workloads import ProgramProfile, generate_program
from tests.conftest import build_module


def test_readnone_inference_plus_dce_preserves_semantics():
    """The combination the attributes exist for: infer purity, then remove
    an unused pure call — behaviour unchanged."""
    module = build_module(
        """
define internal i32 @pure(i32 %x) {
entry:
  %a = mul i32 %x, 3
  %b = add i32 %a, 1
  ret i32 %b
}
define i32 @entry(i32 %n) {
entry:
  %unused = call i32 @pure(i32 %n)
  %r = add i32 %n, 1
  ret i32 %r
}
"""
    )
    baseline, _ = run_module(module, "entry", [4])
    run_passes(module, ["functionattrs", "dce"])
    verify_module(module)
    assert run_module(module, "entry", [4])[0] == baseline
    assert not any(
        isinstance(i, Call)
        for i in module.get_function("entry").instructions()
    )


def test_impure_call_never_removed():
    module = build_module(
        """
@g = global i32 0, align 4
define internal i32 @impure(i32 %x) {
entry:
  store i32 %x, i32* @g, align 4
  ret i32 %x
}
define i32 @entry(i32 %n) {
entry:
  %unused = call i32 @impure(i32 %n)
  %r = load i32, i32* @g, align 4
  ret i32 %r
}
"""
    )
    run_passes(module, ["functionattrs", "dce", "adce"])
    verify_module(module)
    assert run_module(module, "entry", [9])[0] == 9


def test_recursive_function_not_willreturn_so_call_kept():
    """A potentially non-terminating call must survive DCE even when its
    result is unused (removing it would change termination)."""
    module = build_module(
        """
define internal i32 @maybe_spin(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %rec, label %done
rec:
  %v = call i32 @maybe_spin(i32 %x)
  ret i32 %v
done:
  ret i32 0
}
define i32 @entry(i32 %n) {
entry:
  %unused = call i32 @maybe_spin(i32 0)
  ret i32 %n
}
"""
    )
    run_passes(module, ["functionattrs", "dce", "adce"])
    fn = module.get_function("maybe_spin")
    assert "willreturn" not in fn.attributes
    assert any(
        isinstance(i, Call)
        for i in module.get_function("entry").instructions()
    )


def test_attr_inference_on_generated_programs_is_sound():
    """Attribute passes + the full cleanup battery never change results."""
    for seed in (31, 32, 33):
        module = generate_program(
            ProgramProfile(name=f"attr{seed}", seed=seed, segments=6)
        )
        baseline, _ = run_module(module, "entry", [seed % 7])
        run_passes(
            module,
            [
                "inferattrs", "functionattrs", "attributor",
                "rpo-functionattrs", "prune-eh",
                "early-cse", "gvn", "dce", "adce", "globaldce",
            ],
        )
        verify_module(module)
        assert run_module(module, "entry", [seed % 7])[0] == baseline
