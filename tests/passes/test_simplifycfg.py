"""-simplifycfg behaviours."""

from repro.ir import Branch, Select, run_module, verify_module
from repro.passes import run_passes
from tests.conftest import assert_semantics_preserved, build_module


def names(module):
    return [b.name for b in module.get_function("entry").blocks]


def test_merges_straightline_chain():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %a = add i32 %n, 1
  br label %b1
b1:
  %b = add i32 %a, 2
  br label %b2
b2:
  %c = add i32 %b, 3
  ret i32 %c
}
"""
    )
    assert_semantics_preserved(module, lambda m: run_passes(m, ["simplifycfg"]))
    assert len(module.get_function("entry").blocks) == 1


def test_folds_constant_branch():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br i1 true, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
"""
    )
    run_passes(module, ["simplifycfg"])
    verify_module(module)
    assert len(module.get_function("entry").blocks) == 1
    assert run_module(module, "entry", [0])[0] == 1


def test_removes_unreachable_code():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  ret i32 %n
dead:
  %x = add i32 %n, 1
  ret i32 %x
}
"""
    )
    run_passes(module, ["simplifycfg"])
    assert names(module) == ["entry"]


def test_forwards_empty_block():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %hop, label %out
hop:
  br label %out
out:
  %p = phi i32 [ 1, %hop ], [ 2, %entry ]
  ret i32 %p
}
"""
    )
    assert_semantics_preserved(module, lambda m: run_passes(m, ["simplifycfg"]))
    # hop is gone; the diamond became a select or direct flow.
    assert "hop" not in names(module)


def test_if_conversion_to_select(diamond_module):
    assert_semantics_preserved(
        diamond_module, lambda m: run_passes(m, ["simplifycfg"])
    )
    fn = diamond_module.get_function("entry")
    assert len(fn.blocks) == 1
    assert any(isinstance(i, Select) for i in fn.instructions())


def test_triangle_conversion():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 5
  br i1 %c, label %then, label %merge
then:
  %t = mul i32 %n, 3
  br label %merge
merge:
  %p = phi i32 [ %t, %then ], [ %n, %entry ]
  ret i32 %p
}
"""
    )
    assert_semantics_preserved(module, lambda m: run_passes(m, ["simplifycfg"]))
    fn = module.get_function("entry")
    assert len(fn.blocks) == 1


def test_speculation_budget_respected():
    # A side with many instructions must NOT be flattened.
    body = "\n".join(
        f"  %t{i} = add i32 %n, {i}" for i in range(10)
    )
    chain = "%t0"
    adds = "\n".join(
        f"  %s{i} = add i32 %s{i-1}, %t{i}" if i else "  %s0 = add i32 %t0, 0"
        for i in range(10)
    )
    module = build_module(
        f"""
define i32 @entry(i32 %n) {{
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %then, label %merge
then:
{body}
{adds}
  br label %merge
merge:
  %p = phi i32 [ %s9, %then ], [ 0, %entry ]
  ret i32 %p
}}
"""
    )
    run_passes(module, ["simplifycfg"])
    verify_module(module)
    assert len(module.get_function("entry").blocks) == 3


def test_does_not_speculate_side_effects():
    module = build_module(
        """
declare i32 @ext(i32)
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %then, label %merge
then:
  %t = call i32 @ext(i32 %n)
  br label %merge
merge:
  %p = phi i32 [ %t, %then ], [ 0, %entry ]
  ret i32 %p
}
"""
    )
    run_passes(module, ["simplifycfg"])
    verify_module(module)
    # The call must still be conditional.
    _, trace = run_module(module, "entry", [-1])
    assert trace == []
    _, trace = run_module(module, "entry", [1])
    assert trace == [("ext", (1,))]


def test_switch_on_constant_folds():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  switch i32 2, label %d [ i32 1, label %a  i32 2, label %b ]
a:
  ret i32 10
b:
  ret i32 20
d:
  ret i32 30
}
"""
    )
    run_passes(module, ["simplifycfg"])
    assert run_module(module, "entry", [0])[0] == 20
    assert len(module.get_function("entry").blocks) == 1


def test_same_target_cond_branch_collapses():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %next, label %next
next:
  ret i32 %n
}
"""
    )
    run_passes(module, ["simplifycfg"])
    verify_module(module)
    fn = module.get_function("entry")
    assert len(fn.blocks) == 1
    assert not any(
        isinstance(i, Branch) and i.is_conditional for i in fn.instructions()
    )


def test_loop_structure_is_preserved(loop_module):
    before, _ = run_module(loop_module, "entry", [7])
    run_passes(loop_module, ["simplifycfg"])
    verify_module(loop_module)
    after, _ = run_module(loop_module, "entry", [7])
    assert before == after


def test_fixpoint_idempotent(diamond_module):
    run_passes(diamond_module, ["simplifycfg"])
    changed_again = run_passes(diamond_module, ["simplifycfg"])
    assert not changed_again
