"""Constant folding helpers (passes/fold.py) — must agree with the
interpreter's semantics exactly."""

import pytest

from repro.ir import (
    Argument,
    BinaryOp,
    Cast,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ICmp,
    I1,
    I8,
    I32,
    I64,
    F64,
    PointerType,
    Select,
    UndefValue,
)
from repro.passes.fold import (
    fold_binary,
    fold_cast,
    fold_icmp,
    fold_instruction,
    fold_select,
)


def ci(v, ty=I32):
    return ConstantInt(ty, v)


class TestFoldBinary:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 7, 5, 12),
            ("sub", 7, 5, 2),
            ("mul", -3, 5, -15),
            ("sdiv", -7, 2, -3),
            ("udiv", 7, 2, 3),
            ("srem", -7, 2, -1),
            ("urem", 7, 3, 1),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 5, 32),
            ("lshr", -1, 28, 15),
            ("ashr", -16, 2, -4),
        ],
    )
    def test_int_ops(self, op, a, b, expected):
        folded = fold_binary(op, ci(a), ci(b))
        assert folded is not None and folded.value == expected

    def test_wrapping(self):
        folded = fold_binary("add", ci(2**31 - 1), ci(1))
        assert folded.value == -(2**31)

    def test_division_by_zero_not_folded(self):
        assert fold_binary("sdiv", ci(1), ci(0)) is None
        assert fold_binary("urem", ci(1), ci(0)) is None

    def test_float_ops(self):
        folded = fold_binary("fmul", ConstantFloat(F64, 2.5), ConstantFloat(F64, 4.0))
        assert folded.value == 10.0

    def test_float_nan_inf_not_folded(self):
        huge = ConstantFloat(F64, 1e308)
        assert fold_binary("fmul", huge, huge) is None

    def test_non_constants_not_folded(self):
        assert fold_binary("add", Argument(I32, "x"), ci(1)) is None


class TestFoldCompare:
    @pytest.mark.parametrize(
        "pred,a,b,expected",
        [
            ("eq", 3, 3, 1),
            ("ne", 3, 3, 0),
            ("slt", -1, 0, 1),
            ("ult", -1, 0, 0),  # -1 is max unsigned
            ("sge", 5, 5, 1),
            ("ugt", 1, 2, 0),
        ],
    )
    def test_icmp(self, pred, a, b, expected):
        folded = fold_icmp(pred, ci(a), ci(b))
        assert folded is not None and folded.value == expected

    def test_null_pointers(self):
        null = ConstantNull(PointerType(I32))
        assert fold_icmp("eq", null, ConstantNull(PointerType(I32))).value == 1


class TestFoldCast:
    def test_trunc(self):
        assert fold_cast("trunc", ci(0x1FF, I64), I8).value == -1

    def test_zext_uses_unsigned(self):
        assert fold_cast("zext", ci(-1, I8), I32).value == 255

    def test_sext_keeps_sign(self):
        assert fold_cast("sext", ci(-1, I8), I32).value == -1

    def test_sitofp_fptosi(self):
        f = fold_cast("sitofp", ci(-9), F64)
        assert f.value == -9.0
        back = fold_cast("fptosi", ConstantFloat(F64, -9.7), I32)
        assert back.value == -9  # trunc toward zero

    def test_fptosi_overflow_not_folded(self):
        assert fold_cast("fptosi", ConstantFloat(F64, 1e30), I32) is None

    def test_undef_propagates(self):
        out = fold_cast("zext", UndefValue(I8), I32)
        assert isinstance(out, UndefValue)


class TestFoldSelectAndInstruction:
    def test_select_constant_condition(self):
        a, b = ci(1), ci(2)
        assert fold_select(ConstantInt(I1, 1), a, b) is a
        assert fold_select(ConstantInt(I1, 0), a, b) is b

    def test_select_same_arms(self):
        a = ci(9)
        assert fold_select(Argument(I1, "c"), a, a) is a

    def test_fold_instruction_dispatch(self):
        add = BinaryOp("add", ci(1), ci(2))
        assert fold_instruction(add).value == 3
        cmp = ICmp("slt", ci(1), ci(2))
        assert fold_instruction(cmp).value == 1
        cast = Cast("sext", ci(-1, I8), I32)
        assert fold_instruction(cast).value == -1
        sel = Select(ConstantInt(I1, 1), ci(5), ci(6))
        assert fold_instruction(sel).value == 5

    def test_fold_matches_interpreter(self):
        """Folding and interpretation must agree bit-for-bit."""
        from repro.ir.interp import _int_binop

        for op in ("add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"):
            for a in (-7, 0, 3, 2**31 - 2):
                for b in (1, 3, 31):
                    folded = fold_binary(op, ci(a), ci(b))
                    assert folded.value == _int_binop(op, I32, a, b)
