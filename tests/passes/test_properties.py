"""Property-based tests (hypothesis): pass pipelines over random programs
must preserve IR validity and observable semantics, and the IR text format
must round-trip."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import MANUAL_SUBSEQUENCES, PAPER_ODG_SUBSEQUENCES
from repro.ir import (
    parse_module,
    print_module,
    run_module,
    verify_module,
)
from repro.passes import OZ_PASS_SEQUENCE, run_passes
from repro.workloads import ProgramProfile, generate_program

_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _make_program(seed: int):
    profile = ProgramProfile(
        name=f"prop{seed}",
        seed=seed,
        segments=3 + seed % 4,
        recursive_helper=(seed % 5 == 0),
    )
    return generate_program(profile)


def _observed(module, arg):
    result, trace = run_module(module, "entry", [arg])
    return result, trace


@given(seed=st.integers(0, 10_000))
@settings(**_SETTINGS)
def test_generated_programs_are_valid_and_deterministic(seed):
    module = _make_program(seed)
    verify_module(module)
    again = _make_program(seed)
    assert print_module(module) == print_module(again)


@given(seed=st.integers(0, 5_000), arg=st.integers(-20, 20))
@settings(**_SETTINGS)
def test_clone_preserves_behaviour(seed, arg):
    module = _make_program(seed)
    clone = module.clone()
    verify_module(clone)
    assert _observed(module, arg) == _observed(clone, arg)


@given(
    seed=st.integers(0, 2_000),
    actions=st.lists(
        st.integers(0, len(PAPER_ODG_SUBSEQUENCES) - 1), min_size=1, max_size=8
    ),
    arg=st.integers(-10, 10),
)
@settings(**_SETTINGS)
def test_random_odg_action_sequences_preserve_semantics(seed, actions, arg):
    module = _make_program(seed)
    baseline = _observed(module, arg)
    optimized = module.clone()
    for action in actions:
        run_passes(optimized, list(PAPER_ODG_SUBSEQUENCES[action]))
    verify_module(optimized)
    assert _observed(optimized, arg)[0] == baseline[0]


@given(
    seed=st.integers(0, 2_000),
    actions=st.lists(
        st.integers(0, len(MANUAL_SUBSEQUENCES) - 1), min_size=1, max_size=8
    ),
    arg=st.integers(-10, 10),
)
@settings(**_SETTINGS)
def test_random_manual_action_sequences_preserve_semantics(seed, actions, arg):
    module = _make_program(seed)
    baseline = _observed(module, arg)
    optimized = module.clone()
    for action in actions:
        run_passes(optimized, list(MANUAL_SUBSEQUENCES[action]))
    verify_module(optimized)
    assert _observed(optimized, arg)[0] == baseline[0]


@given(
    seed=st.integers(0, 2_000),
    data=st.data(),
)
@settings(**_SETTINGS)
def test_random_pass_subsets_preserve_semantics(seed, data):
    """Arbitrary pass subsets in arbitrary order — harsher than Oz order."""
    unique = sorted(set(OZ_PASS_SEQUENCE))
    picks = data.draw(
        st.lists(st.sampled_from(unique), min_size=1, max_size=12)
    )
    arg = data.draw(st.integers(-10, 10))
    module = _make_program(seed)
    baseline = _observed(module, arg)
    optimized = module.clone()
    run_passes(optimized, picks)
    verify_module(optimized)
    assert _observed(optimized, arg)[0] == baseline[0]


@given(seed=st.integers(0, 3_000))
@settings(**_SETTINGS)
def test_printer_parser_roundtrip_on_generated(seed):
    module = _make_program(seed)
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    # The module-name header is a comment and is not parsed back.
    strip = lambda t: t.split("\n", 1)[1]
    assert strip(print_module(reparsed)) == strip(text)
    for arg in (0, 7):
        assert _observed(module, arg)[0] == _observed(reparsed, arg)[0]


@given(seed=st.integers(0, 2_000), arg=st.integers(-15, 15))
@settings(max_examples=8, deadline=None)
def test_full_oz_preserves_semantics(seed, arg):
    module = _make_program(seed)
    baseline = _observed(module, arg)
    optimized = module.clone()
    run_passes(optimized, list(OZ_PASS_SEQUENCE))
    verify_module(optimized)
    assert _observed(optimized, arg)[0] == baseline[0]
