"""Induction-variable and trip-count analysis (passes/loops/iv.py)."""

import pytest

from repro.analysis import LoopInfo
from repro.ir import run_module
from repro.passes.loops.iv import analyze_loop, find_basic_iv
from tests.conftest import build_module


def _loop(src):
    module = build_module(src)
    fn = module.get_function("entry")
    (loop,) = LoopInfo(fn).loops
    return module, loop


BOTTOM_TEST = """
define i32 @entry(i32 %n) {{
entry:
  br label %h
h:
  %i = phi i32 [ {start}, %entry ], [ %i2, %h ]
  %count = phi i32 [ 0, %entry ], [ %c2, %h ]
  %c2 = add i32 %count, 1
  %i2 = add i32 %i, {step}
  %cmp = icmp {pred} i32 {operand}, {bound}
  br i1 %cmp, label %h, label %exit
exit:
  ret i32 %c2
}}
"""


def make(start=0, step=1, pred="slt", operand="%i2", bound=10):
    return BOTTOM_TEST.format(
        start=start, step=step, pred=pred, operand=operand, bound=bound
    )


class TestFindBasicIV:
    def test_finds_canonical_iv(self):
        _, loop = _loop(make())
        iv = find_basic_iv(loop)
        assert iv is not None
        assert iv.phi.name == "i"
        assert iv.step.value == 1

    def test_finds_negative_step(self):
        _, loop = _loop(make(start=10, step=-1, pred="sgt", bound=0))
        iv = find_basic_iv(loop)
        assert iv is not None and iv.step.value == -1

    def test_no_iv_when_step_not_constant(self):
        _, loop = _loop(
            """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 1, %entry ], [ %i2, %h ]
  %i2 = mul i32 %i, 2
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %h, label %exit
exit:
  ret i32 %i2
}
"""
        )
        assert find_basic_iv(loop) is None


class TestTripCount:
    @pytest.mark.parametrize(
        "kwargs,expected",
        [
            (dict(start=0, step=1, pred="slt", operand="%i2", bound=10), 10),
            (dict(start=0, step=1, pred="ne", operand="%i2", bound=8), 8),
            (dict(start=0, step=2, pred="slt", operand="%i2", bound=10), 5),
            (dict(start=5, step=1, pred="slt", operand="%i2", bound=10), 5),
            (dict(start=0, step=1, pred="sle", operand="%i2", bound=10), 11),
            (dict(start=10, step=-1, pred="sgt", operand="%i2", bound=0), 10),
            # Compare on the phi instead of the increment.
            (dict(start=0, step=1, pred="slt", operand="%i", bound=10), 11),
        ],
    )
    def test_constant_trips_match_execution(self, kwargs, expected):
        module, loop = _loop(make(**kwargs))
        bounds = analyze_loop(loop)
        assert bounds is not None
        assert bounds.trip_count == expected
        # The dynamic body count (%c2 counts executions) must agree.
        executed, _ = run_module(module, "entry", [0])
        assert executed == expected

    def test_runtime_bound_gives_no_constant_trip(self):
        _, loop = _loop(make(bound="%n"))
        bounds = analyze_loop(loop)
        assert bounds is not None
        assert bounds.trip_count is None
        assert bounds.compares_next

    def test_unsigned_predicate(self):
        module, loop = _loop(make(pred="ult", bound=6))
        bounds = analyze_loop(loop)
        assert bounds.trip_count == 6
        assert run_module(module, "entry", [0])[0] == 6

    def test_exit_on_true_orientation(self):
        """Loop continues on false: predicate gets normalized."""
        module, loop = _loop(
            """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %count = phi i32 [ 0, %entry ], [ %c2, %h ]
  %c2 = add i32 %count, 1
  %i2 = add i32 %i, 1
  %cmp = icmp sge i32 %i2, 7
  br i1 %cmp, label %exit, label %h
exit:
  ret i32 %c2
}
"""
        )
        bounds = analyze_loop(loop)
        assert bounds is not None
        assert not bounds.exit_on_false
        assert bounds.trip_count == 7
        assert run_module(module, "entry", [0])[0] == 7

    def test_top_test_loop_has_no_simulated_trip(self):
        """The exiting block is the header, not the latch: the bottom-test
        simulation convention does not apply."""
        _, loop = _loop(
            """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %latch ]
  %cmp = icmp slt i32 %i, 10
  br i1 %cmp, label %latch, label %exit
latch:
  %i2 = add i32 %i, 1
  br label %h
exit:
  ret i32 %i
}
"""
        )
        bounds = analyze_loop(loop)
        assert bounds is not None
        assert bounds.trip_count is None

    def test_works_without_dedicated_preheader(self):
        """A conditional edge into the header (no preheader) must still
        yield trip counts — simplifycfg routinely folds empty preheaders."""
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %c0 = icmp sgt i32 %n, 0
  br i1 %c0, label %h, label %out
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 12
  br i1 %c, label %h, label %out
out:
  %r = phi i32 [ 0, %entry ], [ %i2, %h ]
  ret i32 %r
}
"""
        )
        fn = module.get_function("entry")
        (loop,) = LoopInfo(fn).loops
        bounds = analyze_loop(loop)
        assert bounds is not None and bounds.trip_count == 12
