"""-instsimplify and -instcombine."""

import pytest

from repro.ir import BinaryOp, ConstantInt, ICmp, run_module, verify_module
from repro.passes import run_passes
from tests.conftest import assert_semantics_preserved, build_module


def entry_ops(module):
    return [i.opcode for i in module.get_function("entry").instructions()]


def simplify_expr(body: str, ret: str = "%r") -> str:
    return f"""
define i32 @entry(i32 %n) {{
entry:
{body}
  ret i32 {ret}
}}
"""


@pytest.mark.parametrize(
    "body,expected_result",
    [
        ("  %r = add i32 %n, 0", "n"),
        ("  %r = mul i32 %n, 1", "n"),
        ("  %r = mul i32 %n, 0", 0),
        ("  %r = sub i32 %n, %n", 0),
        ("  %r = and i32 %n, %n", "n"),
        ("  %r = and i32 %n, 0", 0),
        ("  %r = and i32 %n, -1", "n"),
        ("  %r = or i32 %n, 0", "n"),
        ("  %r = or i32 %n, -1", -1),
        ("  %r = xor i32 %n, %n", 0),
        ("  %r = xor i32 %n, 0", "n"),
        ("  %r = sdiv i32 %n, 1", "n"),
        ("  %r = srem i32 %n, 1", 0),
        ("  %r = shl i32 %n, 0", "n"),
        ("  %r = add i32 2, 3\n  %r2 = mul i32 %r, %n", None),
    ],
)
def test_instsimplify_identities(body, expected_result):
    ret = "%r2" if "%r2" in body else "%r"
    module = build_module(simplify_expr(body, ret))
    for arg in (0, 5, -9):
        before = run_module(module.clone(), "entry", [arg])[0]
        m = module.clone()
        run_passes(m, ["instsimplify"])
        verify_module(m)
        assert run_module(m, "entry", [arg])[0] == before


def test_instsimplify_folds_to_no_instructions():
    module = build_module(simplify_expr("  %r = sub i32 %n, %n"))
    run_passes(module, ["instsimplify"])
    assert entry_ops(module) == ["ret"]


def test_icmp_self_comparison():
    module = build_module(
        simplify_expr(
            "  %c = icmp slt i32 %n, %n\n  %r = zext i1 %c to i32"
        )
    )
    run_passes(module, ["instsimplify", "instsimplify"])
    assert run_module(module, "entry", [5])[0] == 0


def test_constant_folding():
    module = build_module(simplify_expr("  %a = add i32 10, 20\n  %r = mul i32 %a, 2"))
    run_passes(module, ["instsimplify"])
    assert entry_ops(module) == ["ret"]
    assert run_module(module, "entry", [0])[0] == 60


class TestInstCombine:
    def test_canonicalizes_constant_to_rhs(self):
        module = build_module(simplify_expr("  %r = add i32 7, %n"))
        run_passes(module, ["instcombine"])
        add = next(
            i for i in module.get_function("entry").instructions()
            if isinstance(i, BinaryOp)
        )
        assert isinstance(add.rhs, ConstantInt)

    def test_reassociates_constants(self):
        module = build_module(
            simplify_expr("  %a = add i32 %n, 10\n  %r = add i32 %a, 20")
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["instcombine"]))
        fn = module.get_function("entry")
        adds = [i for i in fn.instructions() if isinstance(i, BinaryOp)]
        assert len(adds) == 1
        assert adds[0].rhs.value == 30

    def test_sub_const_becomes_add(self):
        module = build_module(simplify_expr("  %r = sub i32 %n, 5"))
        assert_semantics_preserved(module, lambda m: run_passes(m, ["instcombine"]))
        ops = entry_ops(module)
        assert "sub" not in ops and "add" in ops

    def test_mul_pow2_becomes_shl(self):
        module = build_module(simplify_expr("  %r = mul i32 %n, 8"))
        assert_semantics_preserved(module, lambda m: run_passes(m, ["instcombine"]))
        assert "shl" in entry_ops(module)
        assert "mul" not in entry_ops(module)

    def test_udiv_pow2_becomes_lshr(self):
        module = build_module(simplify_expr("  %r = udiv i32 %n, 4"))
        assert_semantics_preserved(module, lambda m: run_passes(m, ["instcombine"]))
        assert "lshr" in entry_ops(module)

    def test_urem_pow2_becomes_and(self):
        module = build_module(simplify_expr("  %r = urem i32 %n, 16"))
        assert_semantics_preserved(module, lambda m: run_passes(m, ["instcombine"]))
        assert "and" in entry_ops(module)

    def test_sdiv_not_strength_reduced_blindly(self):
        """sdiv by a power of two is NOT plain ashr for negatives."""
        module = build_module(simplify_expr("  %r = sdiv i32 %n, 4"))
        run_passes(module, ["instcombine"])
        assert run_module(module, "entry", [-7])[0] == -1  # trunc toward 0

    def test_add_self_becomes_shl(self):
        module = build_module(simplify_expr("  %r = add i32 %n, %n"))
        assert_semantics_preserved(module, lambda m: run_passes(m, ["instcombine"]))
        assert "shl" in entry_ops(module)

    def test_double_not_cancels(self):
        module = build_module(
            simplify_expr("  %a = xor i32 %n, -1\n  %r = xor i32 %a, -1")
        )
        run_passes(module, ["instcombine"])
        assert entry_ops(module) == ["ret"]

    def test_not_of_icmp_inverts(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %c = icmp slt i32 %n, 10
  %w = zext i1 %c to i32
  %nc = xor i32 %w, -1
  ret i32 %nc
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["instcombine"]))

    def test_icmp_eq_add_const(self):
        module = build_module(
            simplify_expr(
                "  %a = add i32 %n, 5\n  %c = icmp eq i32 %a, 12\n  %r = zext i1 %c to i32"
            )
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["instcombine"]))
        cmp = next(
            i for i in module.get_function("entry").instructions()
            if isinstance(i, ICmp)
        )
        assert isinstance(cmp.rhs, ConstantInt) and cmp.rhs.value == 7

    def test_cast_chain_collapse(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %a = zext i32 %n to i64
  %b = trunc i64 %a to i32
  ret i32 %b
}
"""
        )
        run_passes(module, ["instcombine"])
        assert entry_ops(module) == ["ret"]

    def test_gep_chain_merge(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [16 x i32], align 4
  %base = gep [16 x i32]* %a, i32 0, i32 0
  %p1 = gep i32* %base, i32 2
  %p2 = gep i32* %p1, i32 3
  store i32 %n, i32* %p2, align 4
  %direct = gep i32* %base, i32 5
  %v = load i32, i32* %direct, align 4
  ret i32 %v
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["instcombine"]))

    def test_branch_on_not_swaps_targets(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %c = icmp slt i32 %n, 0
  %w = zext i1 %c to i32
  %x = xor i32 %w, -1
  %t = trunc i32 %x to i1
  br i1 %t, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
"""
        )
        for arg in (-3, 3):
            before = run_module(module.clone(), "entry", [arg])[0]
            m = module.clone()
            run_passes(m, ["instcombine"])
            verify_module(m)
            assert run_module(m, "entry", [arg])[0] == before

    def test_idempotent(self, diamond_module):
        run_passes(diamond_module, ["instcombine"])
        assert not run_passes(diamond_module, ["instcombine"])
