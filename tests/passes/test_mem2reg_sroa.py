"""-mem2reg and -sroa."""

from repro.ir import Alloca, Load, Phi, Store, run_module, verify_module
from repro.passes import run_passes
from tests.conftest import assert_semantics_preserved, build_module


def count(module, cls, fn="entry"):
    return sum(
        1 for i in module.get_function(fn).instructions() if isinstance(i, cls)
    )


def test_promotes_simple_scalar():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  %r = add i32 %v, 1
  ret i32 %r
}
"""
    )
    assert_semantics_preserved(module, lambda m: run_passes(m, ["mem2reg"]))
    assert count(module, Alloca) == 0
    assert count(module, Load) == 0
    assert count(module, Store) == 0


def test_inserts_phi_at_merge():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %a, label %b
a:
  store i32 1, i32* %p, align 4
  br label %m
b:
  store i32 2, i32* %p, align 4
  br label %m
m:
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
    )
    assert_semantics_preserved(
        module, lambda m: run_passes(m, ["mem2reg"]), args=(-1, 0, 1)
    )
    assert count(module, Alloca) == 0
    assert count(module, Phi) == 1


def test_loop_carried_promotion(loop_module):
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %acc = alloca i32, align 4
  store i32 0, i32* %acc, align 4
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %header ]
  %cur = load i32, i32* %acc, align 4
  %nxt = add i32 %cur, %i
  store i32 %nxt, i32* %acc, align 4
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %header, label %exit
exit:
  %r = load i32, i32* %acc, align 4
  ret i32 %r
}
"""
    )
    assert_semantics_preserved(module, lambda m: run_passes(m, ["mem2reg"]))
    assert count(module, Alloca) == 0
    assert count(module, Phi) >= 2  # original i plus the promoted acc


def test_does_not_promote_escaping_alloca():
    module = build_module(
        """
declare void @ext(i32* %p)
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  call void @ext(i32* %p)
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
    )
    run_passes(module, ["mem2reg"])
    assert count(module, Alloca) == 1  # untouched


def test_does_not_promote_aggregate():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [4 x i32], align 4
  %p = gep [4 x i32]* %a, i32 0, i32 1
  store i32 %n, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
    )
    run_passes(module, ["mem2reg"])
    assert count(module, Alloca) == 1


SROA_ARRAY = """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [4 x i32], align 4
  %p0 = gep [4 x i32]* %a, i32 0, i32 0
  %p1 = gep [4 x i32]* %a, i32 0, i32 1
  store i32 %n, i32* %p0, align 4
  store i32 7, i32* %p1, align 4
  %v0 = load i32, i32* %p0, align 4
  %v1 = load i32, i32* %p1, align 4
  %r = add i32 %v0, %v1
  ret i32 %r
}
"""


def test_sroa_splits_and_promotes_array():
    module = build_module(SROA_ARRAY)
    assert_semantics_preserved(module, lambda m: run_passes(m, ["sroa"]))
    assert count(module, Alloca) == 0
    assert count(module, Load) == 0


def test_sroa_rejects_dynamic_index():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [4 x i32], align 4
  %m = and i32 %n, 3
  %p = gep [4 x i32]* %a, i32 0, i32 %m
  store i32 9, i32* %p, align 4
  %p0 = gep [4 x i32]* %a, i32 0, i32 0
  store i32 1, i32* %p0, align 4
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
    )
    run_passes(module, ["sroa"])
    assert count(module, Alloca) == 1  # kept whole


def test_sroa_promotes_plain_scalars_too():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
    )
    run_passes(module, ["sroa"])
    assert count(module, Alloca) == 0


def test_mem2reg_undef_on_uninitialized_path():
    """A load on a path with no prior store becomes undef — still verifies."""
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %a, label %m
a:
  store i32 5, i32* %p, align 4
  br label %m
m:
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
    )
    run_passes(module, ["mem2reg"])
    verify_module(module)
    # The defined path still yields 5.
    assert run_module(module, "entry", [1])[0] == 5
