"""Remaining scalar passes: reassociate, jump-threading,
correlated-propagation, tailcallelim, speculative-execution, dse,
memcpyopt, mldst-motion, div-rem-pairs, lower-expect, float2int,
lower-constant-intrinsics, alignment-from-assumptions."""

from repro.ir import (
    BinaryOp,
    Branch,
    Call,
    ConstantInt,
    Load,
    Select,
    Store,
    run_module,
    verify_module,
)
from repro.passes import run_passes
from tests.conftest import assert_semantics_preserved, build_module


class TestReassociate:
    def test_clusters_and_folds_constants(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %a = add i32 %n, 4
  %b = add i32 %a, %n
  %r = add i32 %b, 6
  ret i32 %r
}
"""
        )
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["reassociate"])
        )
        consts = [
            op.value
            for i in module.get_function("entry").instructions()
            if isinstance(i, BinaryOp)
            for op in i.operands
            if isinstance(op, ConstantInt)
        ]
        assert 10 in consts  # 4 and 6 merged

    def test_no_change_for_minimal_trees(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %r = add i32 %n, 4
  ret i32 %r
}
"""
        )
        assert not run_passes(module, ["reassociate"])


class TestJumpThreading:
    THREADABLE = """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %a, label %b
a:
  br label %check
b:
  br label %check
check:
  %k = phi i32 [ 1, %a ], [ 0, %b ]
  %t = icmp eq i32 %k, 1
  br i1 %t, label %yes, label %no
yes:
  ret i32 100
no:
  ret i32 200
}
"""

    def test_threads_known_predecessors(self):
        module = build_module(self.THREADABLE)
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["jump-threading", "simplifycfg"]),
            args=(-5, 5),
        )
        # The phi+icmp dispatch block is gone.
        fn = module.get_function("entry")
        assert not any(b.name == "check" for b in fn.blocks)

    def test_respects_escaping_values(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %a, label %b
a:
  br label %check
b:
  br label %check
check:
  %k = phi i32 [ 1, %a ], [ 0, %b ]
  %t = icmp eq i32 %k, 1
  br i1 %t, label %yes, label %no
yes:
  %u = add i32 %k, 10
  ret i32 %u
no:
  ret i32 200
}
"""
        )
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["jump-threading"]), args=(-5, 5)
        )


class TestCorrelatedPropagation:
    def test_folds_implied_condition(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %c = icmp eq i32 %n, 7
  br i1 %c, label %then, label %out
then:
  %x = mul i32 %n, 2
  ret i32 %x
out:
  ret i32 0
}
"""
        )
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["correlated-propagation", "sccp"]),
            args=(7, 8),
        )
        # In `then`, %n is pinned to 7 -> mul folds to 14.
        fn = module.get_function("entry")
        then = next(b for b in fn.blocks if b.name == "then")
        assert isinstance(then.terminator.value, ConstantInt)

    def test_propagates_condition_reuse(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %then, label %out
then:
  %z = zext i1 %c to i32
  ret i32 %z
out:
  ret i32 5
}
"""
        )
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["correlated-propagation", "instsimplify"]),
            args=(1, -1),
        )
        fn = module.get_function("entry")
        then = next(b for b in fn.blocks if b.name == "then")
        assert isinstance(then.terminator.value, ConstantInt)
        assert then.terminator.value.value == 1


class TestTailCallElim:
    RECURSIVE = """
define internal i32 @sum(i32 %k, i32 %acc) {
entry:
  %c = icmp sgt i32 %k, 0
  br i1 %c, label %rec, label %base
rec:
  %k1 = sub i32 %k, 1
  %a1 = add i32 %acc, %k
  %r = call i32 @sum(i32 %k1, i32 %a1)
  ret i32 %r
base:
  ret i32 %acc
}
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @sum(i32 %n, i32 0)
  ret i32 %r
}
"""

    def test_converts_tail_recursion_to_loop(self):
        module = build_module(self.RECURSIVE)
        assert_semantics_preserved(module, lambda m: run_passes(m, ["tailcallelim"]))
        sum_fn = module.get_function("sum")
        assert not any(
            isinstance(i, Call) and i.called_function is sum_fn
            for i in sum_fn.instructions()
        )
        # Deep recursion now runs in constant stack.
        assert run_module(module, "entry", [10000])[0] == sum(range(10001))

    def test_non_tail_recursion_untouched(self):
        module = build_module(
            """
define internal i32 @fact(i32 %k) {
entry:
  %c = icmp sle i32 %k, 1
  br i1 %c, label %base, label %rec
rec:
  %k1 = sub i32 %k, 1
  %f = call i32 @fact(i32 %k1)
  %r = mul i32 %k, %f
  ret i32 %r
base:
  ret i32 1
}
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @fact(i32 %n)
  ret i32 %r
}
"""
        )
        assert not run_passes(module, ["tailcallelim"])


class TestSpecExec:
    def test_hoists_cheap_instructions(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %then, label %out
then:
  %a = add i32 %n, 1
  %b = mul i32 %a, 2
  ret i32 %b
out:
  ret i32 0
}
"""
        )
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["speculative-execution"]), args=(1, -1)
        )
        fn = module.get_function("entry")
        then = next(b for b in fn.blocks if b.name == "then")
        assert len(then.instructions) == 1  # only the ret remains

    def test_does_not_hoist_loads(self):
        module = build_module(
            """
@g = global i32 3, align 4
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %then, label %out
then:
  %v = load i32, i32* @g, align 4
  ret i32 %v
out:
  ret i32 0
}
"""
        )
        run_passes(module, ["speculative-execution"])
        assert not any(isinstance(i, Load) for i in module.get_function("entry").entry.instructions)


class TestDSE:
    def test_removes_overwritten_store(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 1, i32* %p, align 4
  store i32 %n, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["dse"]))
        stores = [
            i for i in module.get_function("entry").instructions()
            if isinstance(i, Store)
        ]
        assert len(stores) == 1

    def test_keeps_store_with_intervening_load(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 1, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  store i32 %n, i32* %p, align 4
  %w = load i32, i32* %p, align 4
  %r = add i32 %v, %w
  ret i32 %r
}
"""
        )
        run_passes(module, ["dse"])
        stores = [
            i for i in module.get_function("entry").instructions()
            if isinstance(i, Store)
        ]
        assert len(stores) == 2

    def test_removes_stores_to_never_loaded_local(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %p = alloca [4 x i32], align 4
  %q = gep [4 x i32]* %p, i32 0, i32 1
  store i32 %n, i32* %q, align 4
  ret i32 %n
}
"""
        )
        run_passes(module, ["dse"])
        assert not any(
            isinstance(i, Store) for i in module.get_function("entry").instructions()
        )


class TestMemOpt:
    def test_memcpyopt_forms_memset_from_store_run(self):
        stores = "\n".join(
            f"  %p{i} = gep [8 x i32]* %a, i32 0, i32 {i}\n"
            f"  store i32 0, i32* %p{i}, align 4"
            for i in range(8)
        )
        module = build_module(
            f"""
define i32 @entry(i32 %n) {{
entry:
  %a = alloca [8 x i32], align 4
{stores}
  %q = gep [8 x i32]* %a, i32 0, i32 5
  %v = load i32, i32* %q, align 4
  ret i32 %v
}}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["memcpyopt"]))
        fn = module.get_function("entry")
        assert any(
            isinstance(i, Call) and "memset" in i.callee.name
            for i in fn.instructions()
        )
        assert not any(isinstance(i, Store) for i in fn.instructions())

    def test_memcpyopt_leaves_mixed_values(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [4 x i32], align 4
  %p0 = gep [4 x i32]* %a, i32 0, i32 0
  store i32 0, i32* %p0, align 4
  %p1 = gep [4 x i32]* %a, i32 0, i32 1
  store i32 %n, i32* %p1, align 4
  %v = load i32, i32* %p1, align 4
  ret i32 %v
}
"""
        )
        assert not run_passes(module, ["memcpyopt"])

    def test_mldst_sinks_diamond_stores(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %a, label %b
a:
  %x = add i32 %n, 1
  store i32 %x, i32* %p, align 4
  br label %m
b:
  %y = sub i32 %n, 1
  store i32 %y, i32* %p, align 4
  br label %m
m:
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
        )
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["mldst-motion"]), args=(1, -1)
        )
        fn = module.get_function("entry")
        stores = [i for i in fn.instructions() if isinstance(i, Store)]
        assert len(stores) == 1
        assert stores[0].parent.name == "m"

    def test_mldst_hoists_duplicate_loads(self):
        module = build_module(
            """
@g = global i32 5, align 4
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %a, label %b
a:
  %x = load i32, i32* @g, align 4
  br label %m
b:
  %y = load i32, i32* @g, align 4
  br label %m
m:
  %v = phi i32 [ %x, %a ], [ %y, %b ]
  ret i32 %v
}
"""
        )
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["mldst-motion"]), args=(1, -1)
        )
        fn = module.get_function("entry")
        loads = [i for i in fn.instructions() if isinstance(i, Load)]
        assert len(loads) == 1
        assert loads[0].parent is fn.entry


class TestSmallOzPasses:
    def test_div_rem_pairs(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %d = or i32 %n, 1
  %q = sdiv i32 100, %d
  %r = srem i32 100, %d
  %s = add i32 %q, %r
  ret i32 %s
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["div-rem-pairs"]))
        assert not any(
            i.opcode == "srem" for i in module.get_function("entry").instructions()
        )

    def test_lower_expect_strips_and_annotates(self):
        module = build_module(
            """
declare i32 @llvm.expect.i32(i32 %v, i32 %e)
define i32 @entry(i32 %n) {
entry:
  %raw = icmp sgt i32 %n, 0
  %w = zext i1 %raw to i32
  %e = call i32 @llvm.expect.i32(i32 %w, i32 1)
  %c = icmp eq i32 %e, 1
  br i1 %c, label %hot, label %cold
hot:
  ret i32 1
cold:
  ret i32 0
}
"""
        )
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["lower-expect"]), args=(1, -1)
        )
        fn = module.get_function("entry")
        assert not any(isinstance(i, Call) for i in fn.instructions())
        branch = next(
            i for i in fn.instructions() if isinstance(i, Branch) and i.is_conditional
        )
        assert branch.meta.get("branch_weights") == [2000, 1]

    def test_float2int_demotes_exact_chain(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %a = sitofp i32 %n to double
  %b = sitofp i32 7 to double
  %c = fadd double %a, %b
  %r = fptosi double %c to i32
  ret i32 %r
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["float2int"]))
        fn = module.get_function("entry")
        assert not any(i.opcode == "fadd" for i in fn.instructions())

    def test_float2int_leaves_mul_chains(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %a = sitofp i32 %n to double
  %c = fmul double %a, %a
  %r = fptosi double %c to i32
  ret i32 %r
}
"""
        )
        assert not run_passes(module, ["float2int"])

    def test_lower_constant_intrinsics(self):
        module = build_module(
            """
declare i32 @llvm.is.constant.i32(i32 %v)
declare i64 @llvm.objectsize.i64(i8* %p)
define i32 @entry(i32 %n) {
entry:
  %a = alloca [8 x i8], align 1
  %p = gep [8 x i8]* %a, i32 0, i32 0
  %k = call i32 @llvm.is.constant.i32(i32 5)
  %u = call i32 @llvm.is.constant.i32(i32 %n)
  %sz = call i64 @llvm.objectsize.i64(i8* %p)
  %szt = trunc i64 %sz to i32
  %t = add i32 %k, %u
  %r = add i32 %t, %szt
  ret i32 %r
}
"""
        )
        run_passes(module, ["lower-constant-intrinsics"])
        fn = module.get_function("entry")
        assert not any(isinstance(i, Call) for i in fn.instructions())
        assert run_module(module, "entry", [1])[0] == 1 + 0 + 8

    def test_alignment_from_assumptions(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 16
  store i32 %n, i32* %p, align 1
  %v = load i32, i32* %p, align 1
  ret i32 %v
}
"""
        )
        run_passes(module, ["alignment-from-assumptions"])
        fn = module.get_function("entry")
        load = next(i for i in fn.instructions() if isinstance(i, Load))
        assert load.alignment == 16
