"""Loop passes: simplify, lcssa, licm, rotate, unroll, deletion, idiom,
unswitch, distribute, vectorize, indvars, sink, load-elim."""

import pytest

from repro.analysis import LoopInfo
from repro.ir import (
    Branch,
    Call,
    Load,
    Phi,
    Store,
    VectorType,
    run_module,
    verify_module,
)
from repro.passes import run_passes
from tests.conftest import LOOP_MODULE, assert_semantics_preserved, build_module


WHILE_LOOP = """
define i32 @entry(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %latch ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %latch ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %acc2 = add i32 %acc, %i
  br label %latch
latch:
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"""


class TestLoopSimplify:
    def test_creates_preheader(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %header, label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %header ]
  %i2 = add i32 %i, 1
  %lc = icmp slt i32 %i2, %n
  br i1 %lc, label %header, label %exit
exit:
  ret i32 %i2
}
"""
        )
        fn = module.get_function("entry")
        (loop,) = LoopInfo(fn).loops
        assert loop.preheader() is None  # entry branches twice into header
        assert_semantics_preserved(module, lambda m: run_passes(m, ["simplifycfg", "loop-simplify"]))
        (loop,) = LoopInfo(fn).loops
        assert loop.preheader() is not None

    def test_merges_latches(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %a2, %l1 ], [ %b2, %l2 ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %odd = and i32 %i, 1
  %isodd = icmp ne i32 %odd, 0
  br i1 %isodd, label %l1, label %l2
l1:
  %a2 = add i32 %i, 1
  br label %h
l2:
  %b2 = add i32 %i, 2
  br label %h
exit:
  ret i32 %i
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["loop-simplify"]))
        fn = module.get_function("entry")
        (loop,) = LoopInfo(fn).loops
        assert loop.single_latch is not None

    def test_dedicates_exits(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %c0 = icmp sgt i32 %n, 100
  br i1 %c0, label %out, label %pre
pre:
  br label %h
h:
  %i = phi i32 [ 0, %pre ], [ %i2, %h ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %h, label %out
out:
  %r = phi i32 [ 999, %entry ], [ %i2, %h ]
  ret i32 %r
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["loop-simplify"]))
        fn = module.get_function("entry")
        (loop,) = LoopInfo(fn).loops
        assert loop.has_dedicated_exits()


class TestLCSSA:
    def test_inserts_exit_phi(self):
        module = build_module(WHILE_LOOP)
        run_passes(module, ["loop-simplify", "lcssa"])
        verify_module(module)
        fn = module.get_function("entry")
        exit_block = next(b for b in fn.blocks if b.name == "exit")
        # acc's out-of-loop use now goes through a phi in the exit block.
        ret = exit_block.terminator
        assert isinstance(ret.value, Phi)
        assert run_module(module, "entry", [5])[0] == 10

    def test_idempotent(self):
        module = build_module(WHILE_LOOP)
        run_passes(module, ["loop-simplify", "lcssa"])
        before = module.get_function("entry").instruction_count
        run_passes(module, ["lcssa"])
        assert module.get_function("entry").instruction_count == before


class TestLICM:
    def test_hoists_invariant_arithmetic(self):
        module = build_module(LOOP_MODULE)
        assert_semantics_preserved(module, lambda m: run_passes(m, ["licm"]))
        fn = module.get_function("entry")
        body = next(b for b in fn.blocks if b.name == "body")
        assert not any(i.name == "hoist" for i in body.instructions)

    def test_hoists_invariant_load(self):
        module = build_module(
            """
@k = internal constant i32 9, align 4
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %k = load i32, i32* @k, align 4
  %i2 = add i32 %i, %k
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %h, label %exit
exit:
  ret i32 %i2
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["licm"]))
        fn = module.get_function("entry")
        header = next(b for b in fn.blocks if b.name == "h")
        assert not any(isinstance(i, Load) for i in header.instructions)

    def test_does_not_hoist_load_with_aliasing_store(self):
        module = build_module(
            """
@g = internal global i32 1, align 4
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %v = load i32, i32* @g, align 4
  %w = add i32 %v, 1
  store i32 %w, i32* @g, align 4
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %h, label %exit
exit:
  ret i32 %v
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["licm"]))
        fn = module.get_function("entry")
        header = next(b for b in fn.blocks if b.name == "h")
        assert any(isinstance(i, Load) for i in header.instructions)

    def test_does_not_hoist_nonspeculatable_division(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %q = sdiv i32 100, %n
  %i2 = add i32 %i, %q
  %c = icmp slt i32 %i2, 50
  br i1 %c, label %h, label %exit
exit:
  ret i32 %i2
}
"""
        )
        run_passes(module, ["licm"])
        fn = module.get_function("entry")
        entry = fn.entry
        assert not any(i.opcode == "sdiv" for i in entry.instructions)


class TestLoopRotate:
    def test_rotates_while_to_dowhile(self):
        module = build_module(WHILE_LOOP)
        assert_semantics_preserved(
            module,
            lambda m: run_passes(m, ["loop-simplify", "lcssa", "loop-rotate"]),
            args=(0, 1, 7),
        )
        fn = module.get_function("entry")
        (loop,) = LoopInfo(fn).loops
        # After rotation the exiting block is the latch (bottom-test).
        assert loop.exiting_blocks() == [loop.single_latch]

    def test_rotation_enables_licm_into_guarded_block(self):
        module = build_module(LOOP_MODULE)
        assert_semantics_preserved(
            module,
            lambda m: run_passes(
                m, ["loop-simplify", "lcssa", "loop-rotate", "licm"]
            ),
            args=(0, 3),
        )

    def test_no_rotation_for_already_rotated(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %h, label %exit
exit:
  ret i32 %i2
}
"""
        )
        assert not run_passes(module, ["loop-rotate"])


class TestUnrollDeletionIndvars:
    SMALL_TRIP = """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %acc = phi i32 [ %n, %entry ], [ %acc2, %h ]
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 4
  br i1 %c, label %h, label %exit
exit:
  ret i32 %acc2
}
"""

    def test_full_unroll(self):
        module = build_module(self.SMALL_TRIP)
        assert_semantics_preserved(module, lambda m: run_passes(m, ["loop-unroll"]))
        assert LoopInfo(module.get_function("entry")).loops == []

    def test_unroll_respects_budget(self):
        # 1000 iterations: way over the trip limit.
        module = build_module(self.SMALL_TRIP.replace("icmp slt i32 %i2, 4",
                                                      "icmp slt i32 %i2, 1000"))
        assert not run_passes(module, ["loop-unroll"])

    def test_loop_deletion_removes_dead_loop(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %junk = mul i32 %i, 3
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 100
  br i1 %c, label %h, label %exit
exit:
  ret i32 %n
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["loop-deletion"]))
        assert LoopInfo(module.get_function("entry")).loops == []

    def test_deletion_keeps_observed_loop(self):
        module = build_module(self.SMALL_TRIP)
        assert not run_passes(module, ["loop-deletion"])

    def test_deletion_keeps_side_effecting_loop(self):
        module = build_module(
            """
@g = global i32 0, align 4
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  store i32 %i, i32* @g, align 4
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 10
  br i1 %c, label %h, label %exit
exit:
  ret i32 %n
}
"""
        )
        assert not run_passes(module, ["loop-deletion"])

    def test_indvars_rewrites_exit_value(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %junk = mul i32 %i, 3
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 10
  br i1 %c, label %h, label %exit
exit:
  ret i32 %i2
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["indvars"]))
        fn = module.get_function("entry")
        ret = next(b for b in fn.blocks if b.name == "exit").terminator
        from repro.ir import ConstantInt

        assert isinstance(ret.value, ConstantInt)
        assert ret.value.value == 10
        # And now indvars+deletion together remove the loop entirely.
        run_passes(module, ["loop-deletion"])
        assert LoopInfo(fn).loops == []


class TestLoopIdiom:
    ZERO_LOOP = """
define i32 @entry(i32 %n) {
entry:
  %buf = alloca [32 x i32], align 4
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %p = gep [32 x i32]* %buf, i32 0, i32 %i
  store i32 0, i32* %p, align 4
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 32
  br i1 %c, label %h, label %exit
exit:
  %q = gep [32 x i32]* %buf, i32 0, i32 %n
  %v = load i32, i32* %q, align 4
  ret i32 %v
}
"""

    def test_memset_idiom(self):
        module = build_module(self.ZERO_LOOP)
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["loop-idiom"]), args=(0, 13, 31)
        )
        fn = module.get_function("entry")
        assert LoopInfo(fn).loops == []
        calls = [i for i in fn.instructions() if isinstance(i, Call)]
        assert any("memset" in c.callee.name for c in calls)

    def test_memcpy_idiom(self):
        module = build_module(
            """
@src = internal constant [16 x i32] zeroinitializer, align 4
define i32 @entry(i32 %n) {
entry:
  %dst = alloca [16 x i32], align 4
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %sp = gep [16 x i32]* @src, i32 0, i32 %i
  %v = load i32, i32* %sp, align 4
  %dp = gep [16 x i32]* %dst, i32 0, i32 %i
  store i32 %v, i32* %dp, align 4
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 16
  br i1 %c, label %h, label %exit
exit:
  %q = gep [16 x i32]* %dst, i32 0, i32 5
  %w = load i32, i32* %q, align 4
  ret i32 %w
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["loop-idiom"]))
        fn = module.get_function("entry")
        calls = [i for i in fn.instructions() if isinstance(i, Call)]
        assert any("memcpy" in c.callee.name for c in calls)

    def test_non_splat_store_not_converted(self):
        module = build_module(self.ZERO_LOOP.replace("store i32 0,", "store i32 %i,"))
        run_passes(module, ["loop-idiom"])
        fn = module.get_function("entry")
        assert LoopInfo(fn).loops != []


class TestUnswitch:
    INVARIANT_BRANCH = """
define i32 @entry(i32 %n) {
entry:
  %flag = icmp sgt i32 %n, 50
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %latch ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %latch ]
  br i1 %flag, label %a, label %b
a:
  %av = add i32 %acc, %i
  br label %latch
b:
  %bv = add i32 %acc, 2
  br label %latch
latch:
  %acc2 = phi i32 [ %av, %a ], [ %bv, %b ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 8
  br i1 %c, label %h, label %exit
exit:
  %r = phi i32 [ %acc2, %latch ]
  ret i32 %r
}
"""

    def test_unswitch_duplicates_loop(self):
        module = build_module(self.INVARIANT_BRANCH)
        before_blocks = len(module.get_function("entry").blocks)
        assert_semantics_preserved(
            module,
            lambda m: run_passes(m, ["loop-unswitch"]),
            args=(10, 60),
        )
        # Unswitching duplicated the loop body (code size grew) and there
        # are now two loops dispatched from the preheader.
        fn = module.get_function("entry")
        assert len(fn.blocks) > before_blocks
        assert len(LoopInfo(fn).loops) == 2

    def test_unswitch_leaves_variant_branch(self):
        module = build_module(
            self.INVARIANT_BRANCH.replace(
                "%flag = icmp sgt i32 %n, 50", "%flagbase = icmp sgt i32 %n, 50"
            ).replace(
                "br i1 %flag, label %a, label %b",
                "%flag = icmp sgt i32 %i, 3\n  br i1 %flag, label %a, label %b",
            )
        )
        assert not run_passes(module, ["loop-unswitch"])


class TestVectorizeDistribute:
    VECTORIZABLE = """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [32 x i32], align 16
  %b = alloca [32 x i32], align 16
  br label %init
init:
  %j = phi i32 [ 0, %entry ], [ %j2, %init ]
  %ip = gep [32 x i32]* %a, i32 0, i32 %j
  store i32 %j, i32* %ip, align 4
  %j2 = add i32 %j, 1
  %jc = icmp slt i32 %j2, 32
  br i1 %jc, label %init, label %pre
pre:
  br label %h
h:
  %i = phi i32 [ 0, %pre ], [ %i2, %h ]
  %sp = gep [32 x i32]* %a, i32 0, i32 %i
  %v = load i32, i32* %sp, align 4
  %w = mul i32 %v, %n
  %x = add i32 %w, 3
  %dp = gep [32 x i32]* %b, i32 0, i32 %i
  store i32 %x, i32* %dp, align 4
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 32
  br i1 %c, label %h, label %exit
exit:
  %q = gep [32 x i32]* %b, i32 0, i32 7
  %r = load i32, i32* %q, align 4
  ret i32 %r
}
"""

    def test_vectorize_produces_vector_ops(self):
        module = build_module(self.VECTORIZABLE)
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["loop-vectorize"]), args=(2, 5)
        )
        fn = module.get_function("entry")
        assert any(
            isinstance(i.type, VectorType)
            for i in fn.instructions()
            if not i.type.is_void
        )

    def test_vectorize_skips_odd_trip(self):
        module = build_module(self.VECTORIZABLE.replace("icmp slt i32 %i2, 32",
                                                        "icmp slt i32 %i2, 31"))
        fn = module.get_function("entry")
        loops_before = len(LoopInfo(fn).loops)
        run_passes(module, ["loop-vectorize"])
        # The compute loop (odd trip) must survive; only shapes with
        # VF-divisible constant trips vectorize.
        assert len(LoopInfo(fn).loops) == loops_before

    def test_distribute_splits_two_streams(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [16 x i32], align 4
  %b = alloca [16 x i32], align 4
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %pa = gep [16 x i32]* %a, i32 0, i32 %i
  %va = mul i32 %i, 2
  store i32 %va, i32* %pa, align 4
  %pb = gep [16 x i32]* %b, i32 0, i32 %i
  %vb = add i32 %i, 9
  store i32 %vb, i32* %pb, align 4
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 16
  br i1 %c, label %h, label %exit
exit:
  %qa = gep [16 x i32]* %a, i32 0, i32 3
  %ra = load i32, i32* %qa, align 4
  %qb = gep [16 x i32]* %b, i32 0, i32 3
  %rb = load i32, i32* %qb, align 4
  %r = add i32 %ra, %rb
  ret i32 %r
}
"""
        )
        fn = module.get_function("entry")
        assert len(LoopInfo(fn).loops) == 1
        assert_semantics_preserved(module, lambda m: run_passes(m, ["loop-distribute"]))
        assert len(LoopInfo(fn).loops) == 2


class TestSinkLoadElim:
    def test_loop_load_elim_forwards_preheader_store(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %v = load i32, i32* %p, align 4
  %i2 = add i32 %i, %v
  %c = icmp slt i32 %i2, 100
  br i1 %c, label %h, label %exit
exit:
  ret i32 %i2
}
"""
        )
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["loop-load-elim"]), args=(1, 7)
        )
        fn = module.get_function("entry")
        header = next(b for b in fn.blocks if b.name == "h")
        assert not any(isinstance(i, Load) for i in header.instructions)

    def test_loop_sink_moves_into_cold_block(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %expensive = mul i32 %n, 123
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %latch ]
  %odd = and i32 %i, 1
  %isodd = icmp ne i32 %odd, 0
  br i1 %isodd, label %cold, label %latch
cold:
  %use = add i32 %expensive, %i
  br label %latch
latch:
  %m = phi i32 [ %use, %cold ], [ %i, %h ]
  %i2 = add i32 %m, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %h, label %exit
exit:
  ret i32 %i2
}
"""
        )
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["loop-sink"]), args=(5, 20)
        )
        fn = module.get_function("entry")
        assert not any(i.name == "expensive" for i in fn.entry.instructions)
