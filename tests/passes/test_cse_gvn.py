"""-early-cse, -early-cse-memssa and -gvn."""

from repro.ir import BinaryOp, Load, run_module, verify_module
from repro.passes import run_passes
from tests.conftest import assert_semantics_preserved, build_module


def ops(module, cls, fn="entry"):
    return [i for i in module.get_function(fn).instructions() if isinstance(i, cls)]


REDUNDANT = """
define i32 @entry(i32 %n) {
entry:
  %a = add i32 %n, 5
  %b = add i32 %n, 5
  %r = mul i32 %a, %b
  ret i32 %r
}
"""


def test_early_cse_dedupes_expression():
    module = build_module(REDUNDANT)
    assert_semantics_preserved(module, lambda m: run_passes(m, ["early-cse"]))
    assert len(ops(module, BinaryOp)) == 2  # one add + the mul


def test_early_cse_commutative_operands():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %x = add i32 %n, 1
  %a = mul i32 %n, %x
  %b = mul i32 %x, %n
  %r = sub i32 %a, %b
  ret i32 %r
}
"""
    )
    run_passes(module, ["early-cse", "instsimplify"])
    assert run_module(module, "entry", [6])[0] == 0
    # sub x,x folded away entirely.
    assert module.get_function("entry").instruction_count == 1


def test_early_cse_scoped_by_dominance():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %a, label %b
a:
  %x = add i32 %n, 3
  br label %m
b:
  %y = add i32 %n, 3
  br label %m
m:
  %p = phi i32 [ %x, %a ], [ %y, %b ]
  ret i32 %p
}
"""
    )
    run_passes(module, ["early-cse"])
    verify_module(module)
    # Neither side dominates the other: both adds must remain.
    assert len(ops(module, BinaryOp)) == 2


def test_early_cse_store_to_load_forwarding_in_block():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
    )
    assert_semantics_preserved(module, lambda m: run_passes(m, ["early-cse"]))
    assert len(ops(module, Load)) == 0


def test_early_cse_invalidated_by_clobber():
    module = build_module(
        """
declare void @ext()
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  call void @ext()
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
    )
    run_passes(module, ["early-cse"])
    # The alloca does not escape, so the call cannot clobber it... but our
    # EarlyCSE uses a global generation bump for any may-write call, which
    # conservatively keeps the load. Either way semantics hold:
    verify_module(module)
    assert run_module(module, "entry", [5])[0] == 5


def test_memssa_variant_forwards_across_blocks():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  br label %next
next:
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
    )
    plain = module.clone()
    run_passes(plain, ["early-cse"])
    assert len(ops(plain, Load)) == 1  # block-local variant keeps it

    run_passes(module, ["early-cse-memssa"])
    verify_module(module)
    assert len(ops(module, Load)) == 0
    assert run_module(module, "entry", [3])[0] == 3


def test_memssa_does_not_forward_across_merge_with_store():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 1, i32* %p, align 4
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %w, label %m
w:
  store i32 2, i32* %p, align 4
  br label %m
m:
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
    )
    assert_semantics_preserved(
        module, lambda m: run_passes(m, ["early-cse-memssa"]), args=(1, -1)
    )
    assert run_module(module, "entry", [1])[0] == 2
    assert run_module(module, "entry", [-1])[0] == 1


def test_cse_of_readnone_calls():
    module = build_module(
        """
declare i32 @pure(i32) readnone willreturn
define i32 @entry(i32 %n) {
entry:
  %a = call i32 @pure(i32 %n)
  %b = call i32 @pure(i32 %n)
  %r = add i32 %a, %b
  ret i32 %r
}
"""
    )
    run_passes(module, ["early-cse"])
    from repro.ir import Call

    assert len(ops(module, Call)) == 1


def test_idempotent_store_elimination():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  store i32 %v, i32* %p, align 4
  %w = load i32, i32* %p, align 4
  ret i32 %w
}
"""
    )
    from repro.ir import Store

    assert_semantics_preserved(module, lambda m: run_passes(m, ["early-cse"]))
    assert len(ops(module, Store)) == 1


class TestGVN:
    def test_gvn_congruent_chains(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %a1 = add i32 %n, 1
  %a2 = add i32 %n, 1
  %b1 = mul i32 %a1, 3
  %b2 = mul i32 %a2, 3
  %r = sub i32 %b1, %b2
  ret i32 %r
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["gvn", "instsimplify"]))
        # sub of congruent values -> 0; everything else dead.
        assert module.get_function("entry").instruction_count == 1

    def test_gvn_across_blocks(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %a = add i32 %n, 7
  br label %next
next:
  %b = add i32 %n, 7
  %r = sub i32 %a, %b
  ret i32 %r
}
"""
        )
        run_passes(module, ["gvn", "instsimplify"])
        assert run_module(module, "entry", [3])[0] == 0

    def test_gvn_load_elimination_single_pred_chain(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  br label %next
next:
  br label %next2
next2:
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["gvn"]))
        assert len(ops(module, Load)) == 0

    def test_gvn_load_cse(self):
        module = build_module(
            """
@g = global i32 5, align 4
define i32 @entry(i32 %n) {
entry:
  %a = load i32, i32* @g, align 4
  %b = load i32, i32* @g, align 4
  %r = add i32 %a, %b
  ret i32 %r
}
"""
        )
        run_passes(module, ["gvn"])
        assert len(ops(module, Load)) == 1

    def test_gvn_blocked_by_may_alias_store(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %p = alloca [4 x i32], align 4
  %q0 = gep [4 x i32]* %p, i32 0, i32 0
  %m = and i32 %n, 3
  %qd = gep [4 x i32]* %p, i32 0, i32 %m
  store i32 1, i32* %q0, align 4
  store i32 9, i32* %qd, align 4
  %v = load i32, i32* %q0, align 4
  ret i32 %v
}
"""
        )
        run_passes(module, ["gvn"])
        verify_module(module)
        assert run_module(module, "entry", [0])[0] == 9
        assert run_module(module, "entry", [1])[0] == 1

    def test_gvn_congruent_phis(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %a, label %b
a:
  br label %m
b:
  br label %m
m:
  %p1 = phi i32 [ 1, %a ], [ 2, %b ]
  %p2 = phi i32 [ 1, %a ], [ 2, %b ]
  %r = sub i32 %p1, %p2
  ret i32 %r
}
"""
        )
        run_passes(module, ["gvn", "instsimplify"])
        assert run_module(module, "entry", [4])[0] == 0
