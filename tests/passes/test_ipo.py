"""IPO passes: inline, functionattrs family, globalopt/globaldce,
deadargelim, constmerge, ipo misc."""

from repro.ir import Call, ConstantInt, Load, Store, run_module, verify_module
from repro.passes import run_passes
from tests.conftest import assert_semantics_preserved, build_module


INLINABLE = """
define internal i32 @tiny(i32 %x) {
entry:
  %r = mul i32 %x, 3
  ret i32 %r
}
define i32 @entry(i32 %n) {
entry:
  %a = call i32 @tiny(i32 %n)
  %b = call i32 @tiny(i32 %a)
  ret i32 %b
}
"""


class TestInliner:
    def test_inlines_small_callee(self):
        module = build_module(INLINABLE)
        assert_semantics_preserved(module, lambda m: run_passes(m, ["inline"]))
        entry = module.get_function("entry")
        assert not any(isinstance(i, Call) for i in entry.instructions())

    def test_inlined_body_deleted_by_globaldce(self):
        module = build_module(INLINABLE)
        run_passes(module, ["inline", "globaldce"])
        assert module.get_function("tiny") is None

    def test_inlines_branchy_callee_with_phi_result(self):
        module = build_module(
            """
define internal i32 @pick(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  ret i32 %x
b:
  %neg = sub i32 0, %x
  ret i32 %neg
}
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @pick(i32 %n)
  %s = add i32 %r, 100
  ret i32 %s
}
"""
        )
        assert_semantics_preserved(
            module, lambda m: run_passes(m, ["inline"]), args=(5, -5, 0)
        )
        entry = module.get_function("entry")
        assert not any(isinstance(i, Call) for i in entry.instructions())
        assert len(entry.blocks) >= 3  # callee CFG was spliced in

    def test_does_not_inline_recursive(self):
        module = build_module(
            """
define internal i32 @rec(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %r, label %b
r:
  %x1 = sub i32 %x, 1
  %v = call i32 @rec(i32 %x1)
  ret i32 %v
b:
  ret i32 0
}
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @rec(i32 %n)
  ret i32 %r
}
"""
        )
        run_passes(module, ["inline"])
        entry = module.get_function("entry")
        assert any(isinstance(i, Call) for i in entry.instructions())

    def test_respects_noinline(self):
        module = build_module(INLINABLE)
        module.get_function("tiny").attributes.add("noinline")
        assert not run_passes(module, ["inline"])

    def test_inlines_calls_mid_block(self):
        module = build_module(
            """
define internal i32 @helper(i32 %x) {
entry:
  %r = add i32 %x, 9
  ret i32 %r
}
define i32 @entry(i32 %n) {
entry:
  %pre = mul i32 %n, 2
  %c = call i32 @helper(i32 %pre)
  %post = sub i32 %c, %n
  ret i32 %post
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["inline"]))

    def test_always_inline_pass(self):
        module = build_module(INLINABLE)
        module.get_function("tiny").attributes.add("alwaysinline")
        run_passes(module, ["always-inline"])
        entry = module.get_function("entry")
        assert not any(isinstance(i, Call) for i in entry.instructions())


class TestFunctionAttrs:
    def test_infers_readnone_for_pure(self):
        module = build_module(INLINABLE)
        run_passes(module, ["functionattrs"])
        tiny = module.get_function("tiny")
        assert "readnone" in tiny.attributes
        assert "willreturn" in tiny.attributes
        assert "norecurse" in tiny.attributes

    def test_loop_blocks_willreturn(self, loop_module):
        run_passes(loop_module, ["functionattrs"])
        fn = loop_module.get_function("entry")
        assert "willreturn" not in fn.attributes

    def test_bottom_up_propagation(self):
        module = build_module(
            """
define internal i32 @leaf(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
define internal i32 @mid(i32 %x) {
entry:
  %r = call i32 @leaf(i32 %x)
  ret i32 %r
}
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @mid(i32 %n)
  ret i32 %r
}
"""
        )
        run_passes(module, ["functionattrs"])
        assert "readnone" in module.get_function("mid").attributes

    def test_stores_to_global_block_readonly(self):
        module = build_module(
            """
@g = global i32 0, align 4
define internal i32 @writer(i32 %x) {
entry:
  store i32 %x, i32* @g, align 4
  ret i32 %x
}
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @writer(i32 %n)
  ret i32 %r
}
"""
        )
        run_passes(module, ["functionattrs"])
        writer = module.get_function("writer")
        assert "readonly" not in writer.attributes
        assert "readnone" not in writer.attributes

    def test_attrs_enable_call_cse(self):
        module = build_module(
            """
define internal i32 @pure(i32 %x) {
entry:
  %r = mul i32 %x, 5
  ret i32 %r
}
define i32 @entry(i32 %n) {
entry:
  %a = call i32 @pure(i32 %n)
  %b = call i32 @pure(i32 %n)
  %r = add i32 %a, %b
  ret i32 %r
}
"""
        )
        # Without attrs CSE keeps both calls; with attrs it merges them.
        plain = module.clone()
        run_passes(plain, ["early-cse"])
        assert sum(1 for i in plain.get_function("entry").instructions() if isinstance(i, Call)) == 2
        run_passes(module, ["functionattrs", "early-cse"])
        assert sum(1 for i in module.get_function("entry").instructions() if isinstance(i, Call)) == 1

    def test_inferattrs_known_library(self):
        module = build_module(
            """
declare i32 @abs(i32)
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @abs(i32 %n)
  ret i32 %r
}
"""
        )
        run_passes(module, ["inferattrs"])
        assert "readnone" in module.get_function("abs").attributes

    def test_forceattrs_is_noop(self, loop_module):
        assert not run_passes(loop_module, ["forceattrs"])


class TestGlobals:
    def test_globalopt_deletes_writeonly_global_stores(self):
        module = build_module(
            """
@sink = internal global i32 0, align 4
define i32 @entry(i32 %n) {
entry:
  store i32 %n, i32* @sink, align 4
  ret i32 %n
}
"""
        )
        run_passes(module, ["globalopt", "globaldce"])
        verify_module(module)
        assert module.get_global("sink") is None
        assert not any(
            isinstance(i, Store) for i in module.get_function("entry").instructions()
        )

    def test_globalopt_constifies_readonly_global(self):
        module = build_module(
            """
@ro = internal global i32 41, align 4
define i32 @entry(i32 %n) {
entry:
  %v = load i32, i32* @ro, align 4
  %r = add i32 %v, 1
  ret i32 %r
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["globalopt"]))
        # Loads were folded to the initializer.
        assert not any(
            isinstance(i, Load) for i in module.get_function("entry").instructions()
        )

    def test_globaldce_removes_unused_function_and_global(self):
        module = build_module(
            """
@unused = internal global i32 1, align 4
define internal i32 @orphan(i32 %x) {
entry:
  ret i32 %x
}
define i32 @entry(i32 %n) {
entry:
  ret i32 %n
}
"""
        )
        run_passes(module, ["globaldce"])
        assert module.get_function("orphan") is None
        assert module.get_global("unused") is None
        assert module.get_function("entry") is not None

    def test_globaldce_keeps_function_referenced_by_initializer(self):
        from repro.ir import Function, GlobalVariable, PointerType

        module = build_module(
            """
define internal i32 @target(i32 %x) {
entry:
  ret i32 %x
}
define i32 @entry(i32 %n) {
entry:
  ret i32 %n
}
"""
        )
        target = module.get_function("target")
        module.add_global(
            GlobalVariable(PointerType(target.ftype), "fp", target, True, "external")
        )
        run_passes(module, ["globaldce"])
        assert module.get_function("target") is not None

    def test_constmerge(self):
        module = build_module(
            """
@a = internal constant i32 7, align 4
@b = internal constant i32 7, align 4
define i32 @entry(i32 %n) {
entry:
  %x = load i32, i32* @a, align 4
  %y = load i32, i32* @b, align 4
  %r = add i32 %x, %y
  ret i32 %r
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["constmerge"]))
        assert len(module.globals) == 1

    def test_called_value_propagation(self):
        from repro.ir import Function, GlobalVariable, IRBuilder, PointerType

        module = build_module(
            """
define internal i32 @impl(i32 %x) {
entry:
  %r = add i32 %x, 50
  ret i32 %r
}
define i32 @entry(i32 %n) {
entry:
  ret i32 %n
}
"""
        )
        impl = module.get_function("impl")
        fp = module.add_global(
            GlobalVariable(PointerType(impl.ftype), "fp", impl, True, "internal")
        )
        entry = module.get_function("entry")
        ret = entry.entry.terminator
        b = IRBuilder(entry.entry)
        ret.erase_from_parent()
        loaded = b.load(fp)
        call = b.call(loaded, [entry.args[0]])
        b.ret(call)
        verify_module(module)
        before = run_module(module, "entry", [4])[0]
        run_passes(module, ["called-value-propagation"])
        verify_module(module)
        assert run_module(module, "entry", [4])[0] == before == 54
        call_inst = next(
            i for i in entry.instructions() if isinstance(i, Call)
        )
        assert call_inst.called_function is impl

    def test_strip_dead_prototypes(self):
        module = build_module(
            """
declare i32 @unused_ext(i32)
declare i32 @used_ext(i32)
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @used_ext(i32 %n)
  ret i32 %r
}
"""
        )
        run_passes(module, ["strip-dead-prototypes"])
        assert module.get_function("unused_ext") is None
        assert module.get_function("used_ext") is not None

    def test_elim_avail_extern(self):
        module = build_module(INLINABLE)
        module.get_function("tiny").linkage = "available_externally"
        run_passes(module, ["elim-avail-extern"])
        assert module.get_function("tiny").is_declaration

    def test_barrier_is_noop(self, loop_module):
        assert not run_passes(loop_module, ["barrier"])


class TestDeadArgElim:
    def test_removes_unused_argument(self):
        module = build_module(
            """
define internal i32 @callee(i32 %x, i32 %dead) {
entry:
  %r = add i32 %x, 2
  ret i32 %r
}
define i32 @entry(i32 %n) {
entry:
  %waste = mul i32 %n, 99
  %r = call i32 @callee(i32 %n, i32 %waste)
  ret i32 %r
}
"""
        )
        assert_semantics_preserved(module, lambda m: run_passes(m, ["deadargelim"]))
        callee = module.get_function("callee")
        assert len(callee.args) == 1
        call = next(
            i for i in module.get_function("entry").instructions()
            if isinstance(i, Call)
        )
        assert len(call.args) == 1

    def test_keeps_args_of_external_function(self):
        module = build_module(
            """
define i32 @exported(i32 %x, i32 %dead) {
entry:
  ret i32 %x
}
define i32 @entry(i32 %n) {
entry:
  %r = call i32 @exported(i32 %n, i32 0)
  ret i32 %r
}
"""
        )
        assert not run_passes(module, ["deadargelim"])

    def test_prune_eh_infers_nounwind(self):
        module = build_module(INLINABLE)
        run_passes(module, ["prune-eh"])
        assert "nounwind" in module.get_function("tiny").attributes
        assert "nounwind" in module.get_function("entry").attributes
