"""Pass-execution statistics collection."""

from repro.passes import PassManager
from repro.passes.pipelines import OZ_PASS_SEQUENCE
from repro.workloads import ProgramProfile, generate_program


def _module():
    return generate_program(ProgramProfile(name="stats", seed=14, segments=5))


def test_stats_disabled_by_default():
    pm = PassManager(["simplifycfg"])
    pm.run(_module())
    assert pm.stats is None


def test_records_per_invocation():
    pm = PassManager(["mem2reg", "instcombine", "dce"], collect_stats=True)
    pm.run(_module())
    assert pm.stats is not None
    assert [r.name for r in pm.stats.records] == ["mem2reg", "instcombine", "dce"]
    assert all(r.seconds >= 0 for r in pm.stats.records)


def test_instruction_delta_tracks_shrinkage():
    pm = PassManager(list(OZ_PASS_SEQUENCE), collect_stats=True)
    module = _module()
    before = module.instruction_count
    pm.run(module)
    total_delta = sum(r.instruction_delta for r in pm.stats.records)
    assert total_delta == module.instruction_count - before
    assert total_delta < 0  # Oz shrinks generated programs


def test_by_pass_aggregation():
    pm = PassManager(list(OZ_PASS_SEQUENCE), collect_stats=True)
    pm.run(_module())
    agg = pm.stats.by_pass()
    # simplifycfg appears 11 times in the Oz sequence.
    assert agg["simplifycfg"]["runs"] == OZ_PASS_SEQUENCE.count("simplifycfg")
    assert pm.stats.total_seconds > 0


def test_report_renders():
    pm = PassManager(["simplifycfg", "dce"], collect_stats=True)
    pm.run(_module())
    report = pm.stats.report()
    assert "simplifycfg" in report
    assert "TOTAL" in report


def test_changed_passes_consistency():
    pm = PassManager(list(OZ_PASS_SEQUENCE), collect_stats=True)
    pm.run(_module())
    assert pm.stats.changed_passes == pm.changed_passes
