"""Pass-execution statistics collection."""

import pytest

from repro.passes import PassManager
from repro.passes.base import Pass
from repro.passes.pipelines import OZ_PASS_SEQUENCE
from repro.passes.stats import PipelineStats, StatsTimer
from repro.workloads import ProgramProfile, generate_program


def _module():
    return generate_program(ProgramProfile(name="stats", seed=14, segments=5))


def test_stats_disabled_by_default():
    pm = PassManager(["simplifycfg"])
    pm.run(_module())
    assert pm.stats is None


def test_records_per_invocation():
    pm = PassManager(["mem2reg", "instcombine", "dce"], collect_stats=True)
    pm.run(_module())
    assert pm.stats is not None
    assert [r.name for r in pm.stats.records] == ["mem2reg", "instcombine", "dce"]
    assert all(r.seconds >= 0 for r in pm.stats.records)


def test_instruction_delta_tracks_shrinkage():
    pm = PassManager(list(OZ_PASS_SEQUENCE), collect_stats=True)
    module = _module()
    before = module.instruction_count
    pm.run(module)
    total_delta = sum(r.instruction_delta for r in pm.stats.records)
    assert total_delta == module.instruction_count - before
    assert total_delta < 0  # Oz shrinks generated programs


def test_by_pass_aggregation():
    pm = PassManager(list(OZ_PASS_SEQUENCE), collect_stats=True)
    pm.run(_module())
    agg = pm.stats.by_pass()
    # simplifycfg appears 11 times in the Oz sequence.
    assert agg["simplifycfg"]["runs"] == OZ_PASS_SEQUENCE.count("simplifycfg")
    assert pm.stats.total_seconds > 0


def test_report_renders():
    pm = PassManager(["simplifycfg", "dce"], collect_stats=True)
    pm.run(_module())
    report = pm.stats.report()
    assert "simplifycfg" in report
    assert "TOTAL" in report


def test_changed_passes_consistency():
    pm = PassManager(list(OZ_PASS_SEQUENCE), collect_stats=True)
    pm.run(_module())
    assert pm.stats.changed_passes == pm.changed_passes


class _ExplodingPass(Pass):
    name = "exploding"

    def run_on_module(self, module):
        raise ValueError("synthetic crash")


class TestCrashingPassIsRecorded:
    """Regression: a pass that raises used to vanish from the stats —
    StatsTimer only recorded on the explicit ``finish`` call, so the
    crashing invocation (the one an engineer is debugging) was the one
    invocation missing from the report."""

    def _crashing_manager(self):
        return PassManager(
            ["mem2reg", _ExplodingPass(), "dce"], collect_stats=True
        )

    def test_terminal_record_is_filed_with_the_error(self):
        pm = self._crashing_manager()
        with pytest.raises(RuntimeError, match="exploding"):
            pm.run(_module())
        names = [r.name for r in pm.stats.records]
        assert names == ["mem2reg", "exploding"]  # dce never ran
        record = pm.stats.records[-1]
        assert record.error == "ValueError: synthetic crash"
        assert record.changed is False
        assert record.seconds >= 0.0

    def test_crash_appears_in_report(self):
        pm = self._crashing_manager()
        with pytest.raises(RuntimeError):
            pm.run(_module())
        report = pm.stats.report()
        assert "exploding" in report
        assert "ERROR -exploding: ValueError: synthetic crash" in report
        assert pm.stats.by_pass()["exploding"]["errors"] == 1
        assert [r.name for r in pm.stats.errors] == ["exploding"]

    def test_successful_runs_report_zero_errors(self):
        pm = PassManager(["mem2reg", "dce"], collect_stats=True)
        pm.run(_module())
        assert pm.stats.errors == []
        assert all(
            agg["errors"] == 0 for agg in pm.stats.by_pass().values()
        )

    def test_timer_exit_without_exception_records_nothing_extra(self):
        stats = PipelineStats()
        module = _module()
        with StatsTimer(stats, "manual", module) as timer:
            timer.finish(changed=True)
        assert len(stats.records) == 1
        assert stats.records[0].error is None
