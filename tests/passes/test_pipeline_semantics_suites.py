"""Whole-suite semantic soak: every pipeline level preserves the observable
behaviour of every named benchmark (the strongest end-to-end guarantee the
substrate offers)."""

import pytest

from repro.ir import run_module, verify_module
from repro.passes import build_pipeline
from repro.workloads import load_suite


@pytest.mark.slow
@pytest.mark.parametrize("level", ["O1", "O3", "Oz"])
def test_pipelines_preserve_suite_semantics(level):
    for suite_name in ("mibench",):
        for name, module in load_suite(suite_name):
            baseline, _ = run_module(module, "entry", [5])
            optimized = module.clone()
            build_pipeline(level).run(optimized)
            verify_module(optimized)
            result, _ = run_module(optimized, "entry", [5])
            assert result == baseline, f"{level} broke {name}"


@pytest.mark.slow
def test_oz_preserves_spec_semantics():
    for suite_name in ("spec2006", "spec2017"):
        for name, module in load_suite(suite_name):
            baseline, _ = run_module(module, "entry", [3])
            optimized = module.clone()
            build_pipeline("Oz").run(optimized)
            verify_module(optimized)
            result, _ = run_module(optimized, "entry", [3])
            assert result == baseline, f"Oz broke {name}"
