"""Differential oracle: observation semantics and failure classification."""

import numpy as np
import pytest

from repro.ir.parser import parse_module
from repro.core.subsequences import MANUAL_SUBSEQUENCES, PAPER_ODG_SUBSEQUENCES
from repro.passes.pipelines import OZ_PASS_SEQUENCE
from repro.testing import (
    DifferentialOracle,
    FuzzProfile,
    Observation,
    generate_fuzz_program,
    make_sequences,
    modules_equivalent,
    observe_module,
)

SUB_MODULE = """
define i32 @entry(i32 %n) {
entry:
  %d = sub i32 %n, 3
  ret i32 %d
}
"""

TRAPPING_MODULE = """
define i32 @entry(i32 %n) {
entry:
  %d = sdiv i32 %n, 0
  ret i32 %d
}
"""


class TestObservation:
    def test_return_observation(self):
        module = parse_module(SUB_MODULE)
        obs = observe_module(module, args=(10,))
        assert obs.kind == "return"
        assert obs.value == 7
        assert obs.steps > 0

    def test_trap_observation(self):
        obs = observe_module(parse_module(TRAPPING_MODULE), args=(1,))
        assert obs.kind == "trap"
        assert "zero" in obs.detail

    def test_fuel_observation(self):
        text = """
        define i32 @entry(i32 %n) {
        entry:
          br label %loop
        loop:
          br label %loop
        }
        """
        obs = observe_module(parse_module(text), args=(0,), fuel=100)
        assert obs.kind == "fuel"

    def test_equality_ignores_diagnostics(self):
        a = Observation("return", value=1, trace=(), steps=10)
        b = Observation("return", value=1, trace=(), steps=99, detail="x")
        assert a == b
        assert hash(a) == hash(b)

    def test_float_values_compare_bitwise(self):
        nan = float("nan")
        a = Observation("return", value=("f64", b"\x00" * 8))
        assert a == Observation("return", value=("f64", b"\x00" * 8))
        # NaN canonicalizes to a bit pattern equal to itself.
        m = parse_module("""
        define double @entry() {
        entry:
          %x = fdiv double 0.0, 0.0
          ret double %x
        }
        """)
        o1 = observe_module(m, args=())
        o2 = observe_module(m, args=())
        assert o1.value == o2.value
        assert nan != nan  # the reason the canonicalization exists

    def test_trace_is_compared(self):
        a = Observation("return", value=0, trace=(("observe", (1,)),))
        b = Observation("return", value=0, trace=(("observe", (2,)),))
        assert a != b


class TestClassification:
    def test_identity_sequence_is_ok(self):
        oracle = DifferentialOracle()
        result = oracle.check(parse_module(SUB_MODULE), [])
        assert result.kind == "ok"
        assert result.ok and not result.is_failure

    def test_real_pipeline_is_ok_on_fuzz_program(self):
        module = generate_fuzz_program(FuzzProfile(seed=3))
        oracle = DifferentialOracle()
        result = oracle.check(module, ["instcombine", "gvn", "simplifycfg"])
        assert result.kind == "ok"

    def test_miscompile_detected(self, broken_passes):
        oracle = DifferentialOracle()
        result = oracle.check(parse_module(SUB_MODULE), ["test-swap-sub"])
        assert result.kind == "miscompile"
        assert result.is_failure
        assert result.args is not None
        assert result.before is not None and result.after is not None
        assert result.before != result.after
        assert "->" in result.detail

    def test_crash_detected_with_pass_name(self, broken_passes):
        oracle = DifferentialOracle()
        result = oracle.check(
            parse_module(SUB_MODULE), ["instcombine", "test-crash"]
        )
        assert result.kind == "crash"
        assert "test-crash" in result.detail

    def test_verifier_error_detected(self, broken_passes):
        oracle = DifferentialOracle()
        result = oracle.check(
            parse_module(SUB_MODULE), ["test-drop-terminator"]
        )
        assert result.kind == "verifier_error"

    def test_verify_each_pinpoints_pass(self, broken_passes):
        oracle = DifferentialOracle(verify_each=True)
        result = oracle.check(
            parse_module(SUB_MODULE), ["test-drop-terminator", "instcombine"]
        )
        assert result.kind == "verifier_error"
        assert "test-drop-terminator" in result.detail

    def test_hang_detected(self, broken_passes):
        oracle = DifferentialOracle(fuel=5000)
        result = oracle.check(
            parse_module(SUB_MODULE), ["test-infinite-loop"]
        )
        assert result.kind == "hang"

    def test_trapping_baseline_is_skip_not_failure(self, broken_passes):
        oracle = DifferentialOracle()
        result = oracle.check(
            parse_module(TRAPPING_MODULE), ["test-swap-sub"]
        )
        assert result.kind == "skip"
        assert not result.is_failure

    def test_unknown_pass_is_crash(self):
        oracle = DifferentialOracle()
        result = oracle.check(parse_module(SUB_MODULE), ["no-such-pass"])
        assert result.kind == "crash"

    def test_baselines_can_be_amortized(self):
        module = parse_module(SUB_MODULE)
        oracle = DifferentialOracle()
        baselines = oracle.baseline(module)
        r1 = oracle.check(module, ["instcombine"], baselines=baselines)
        r2 = oracle.check(module, ["gvn"], baselines=baselines)
        assert r1.kind == r2.kind == "ok"


class TestMakeSequences:
    def test_singles_covers_unique_oz_passes(self):
        rng = np.random.RandomState(0)
        seqs = make_sequences("singles", rng)
        assert all(len(s) == 1 for s in seqs)
        assert {s[0] for s in seqs} == set(OZ_PASS_SEQUENCE)

    def test_oz_includes_pipeline_and_manual_tables(self):
        rng = np.random.RandomState(0)
        seqs = make_sequences("oz", rng)
        assert list(OZ_PASS_SEQUENCE) in seqs
        assert len(seqs) == 1 + len(MANUAL_SUBSEQUENCES)

    def test_odg_episodes_flatten_table_rows(self):
        rng = np.random.RandomState(0)
        seqs = make_sequences("odg", rng, episodes=3, episode_length=4)
        assert len(seqs) == 3
        table_passes = {p for row in PAPER_ODG_SUBSEQUENCES for p in row}
        min_row = min(len(row) for row in PAPER_ODG_SUBSEQUENCES)
        for seq in seqs:
            # 4 drawn sub-sequences, flattened: every pass comes from the
            # table and the episode is at least 4 of the shortest rows.
            assert set(seq) <= table_passes
            assert len(seq) >= 4 * min_row

    def test_random_mode_permutes_unique_passes(self):
        rng = np.random.RandomState(0)
        seqs = make_sequences("random", rng, episodes=2)
        unique = sorted(set(OZ_PASS_SEQUENCE))
        assert len(seqs) == 2
        for seq in seqs:
            assert sorted(seq) == unique

    def test_all_mode_is_union(self):
        rng = np.random.RandomState(0)
        assert len(make_sequences("all", rng)) > len(
            make_sequences("singles", np.random.RandomState(0))
        )

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            make_sequences("bogus", np.random.RandomState(0))

    def test_deterministic_in_rng_seed(self):
        a = make_sequences("odg", np.random.RandomState(7), episodes=2)
        b = make_sequences("odg", np.random.RandomState(7), episodes=2)
        assert a == b


class TestModulesEquivalent:
    def test_equivalent_modules_pass(self):
        a = parse_module(SUB_MODULE)
        assert modules_equivalent(a, a.clone()) is None

    def test_behaviour_change_reported(self, broken_passes):
        from repro.passes.base import run_passes

        a = parse_module(SUB_MODULE)
        b = a.clone()
        run_passes(b, ["test-swap-sub"])
        msg = modules_equivalent(a, b)
        assert msg is not None
        assert "->" in msg

    def test_missing_entry_reported(self):
        a = parse_module(SUB_MODULE)
        b = parse_module("define i32 @other() {\nentry:\n  ret i32 0\n}\n")
        msg = modules_equivalent(a, b)
        assert msg is not None and "disappeared" in msg

    def test_no_driveable_entry_is_vacuous(self):
        a = parse_module("""
        define double @fp_only(double %x) {
        entry:
          ret double %x
        }
        """)
        assert modules_equivalent(a, a.clone()) is None

    def test_trapping_baseline_is_vacuous(self, broken_passes):
        from repro.passes.base import run_passes

        a = parse_module(TRAPPING_MODULE)
        b = a.clone()
        run_passes(b, ["test-swap-sub"])
        assert modules_equivalent(a, b) is None
