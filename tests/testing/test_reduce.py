"""Delta-debugging reducer: pass ddmin and structural module shrinking."""

import pytest

from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.passes.base import PASS_REGISTRY
from repro.testing import (
    DifferentialOracle,
    FuzzProfile,
    Reducer,
    generate_fuzz_program,
)
from repro.testing.reduce import ddmin_passes

from .conftest import SwapSubOperandsPass


class TestDdminPasses:
    def test_single_culprit_isolated(self):
        culprit = "bad"
        seq = ["a", "b", "bad", "c", "d", "e", "f", "g"]
        result = ddmin_passes(seq, lambda ps: culprit in ps)
        assert result == ["bad"]

    def test_pair_of_culprits_kept(self):
        seq = ["a", "x", "b", "c", "y", "d"]
        result = ddmin_passes(
            seq, lambda ps: "x" in ps and "y" in ps
        )
        assert result == ["x", "y"]

    def test_order_preserved(self):
        seq = ["p1", "p2", "p3", "p4"]
        result = ddmin_passes(
            seq,
            lambda ps: ps.index("p2") < ps.index("p4")
            if "p2" in ps and "p4" in ps
            else False,
        )
        assert result == ["p2", "p4"]

    def test_everything_needed_stays(self):
        seq = ["a", "b", "c"]
        assert ddmin_passes(seq, lambda ps: len(ps) == 3) == seq


@pytest.fixture(scope="module")
def swap_sub_module_scope():
    PASS_REGISTRY[SwapSubOperandsPass.name] = SwapSubOperandsPass
    try:
        yield SwapSubOperandsPass.name
    finally:
        PASS_REGISTRY.pop(SwapSubOperandsPass.name, None)


@pytest.fixture(scope="module")
def reduction(swap_sub_module_scope):
    """One full reduction of an injected miscompile, shared across the
    assertion tests below (reductions are expensive)."""
    module = generate_fuzz_program(FuzzProfile(seed=42))
    passes = ["instcombine", swap_sub_module_scope, "simplifycfg", "gvn"]
    full_oracle = DifferentialOracle()
    first = full_oracle.check(module, passes)
    assert first.kind == "miscompile"
    # Reduce against the one diverging input (mirrors what the campaign
    # driver does): 3x fewer interpreter runs per predicate check.
    oracle = DifferentialOracle(arg_sets=[first.args])
    reducer = Reducer(
        lambda m, ps: oracle.check(m, ps).kind == "miscompile",
        max_checks=600,
    )
    reduced, reduced_passes = reducer.reduce(module, passes)
    return {
        "module": module,
        "passes": passes,
        "oracle": oracle,
        "full_oracle": full_oracle,
        "reduced": reduced,
        "reduced_passes": reduced_passes,
    }


class TestReducer:
    def test_non_reproducing_input_rejected(self):
        module = generate_fuzz_program(FuzzProfile(seed=1))
        reducer = Reducer(lambda m, ps: False)
        with pytest.raises(ValueError):
            reducer.reduce(module, ["instcombine"])

    def test_injected_miscompile_reduces_to_tiny_repro(self, reduction):
        """The ISSUE acceptance bar: an injected miscompile shrinks to a
        repro of at most 10 instructions, and the pass list to the single
        broken pass."""
        assert reduction["reduced_passes"] == [SwapSubOperandsPass.name]
        assert reduction["reduced"].instruction_count <= 10
        assert reduction["module"].instruction_count > 100

    def test_reduced_repro_survives_text_round_trip(self, reduction):
        reduced = reduction["reduced"]
        verify_module(reduced)
        text = print_module(reduced)
        replayed = reduction["full_oracle"].check(
            parse_module(text), reduction["reduced_passes"]
        )
        assert replayed.kind == "miscompile"

    def test_inputs_not_mutated(self, reduction):
        assert reduction["module"].instruction_count > 100
        check = reduction["full_oracle"].check(
            reduction["module"], reduction["passes"]
        )
        assert check.kind == "miscompile"

    def test_reduced_module_has_normalized_names(self, reduction):
        for fn in reduction["reduced"].functions:
            for block in fn.blocks:
                for inst in block.instructions:
                    if not inst.type.is_void:
                        assert len(inst.name) < 8, inst.name

    def test_check_budget_respected(self, reduction):
        module = reduction["module"]
        oracle = reduction["oracle"]
        reducer = Reducer(
            lambda m, ps: oracle.check(m, ps).kind == "miscompile",
            max_checks=30,
        )
        reduced, reduced_passes = reducer.reduce(
            module, [SwapSubOperandsPass.name]
        )
        assert reducer.checks <= 31
        # Even a tiny budget must return a *reproducing* pair.
        assert oracle.check(reduced, reduced_passes).kind == "miscompile"
