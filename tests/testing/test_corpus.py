"""Corpus persistence and the replay-forever regression gate.

Every reduced repro the fuzzer ever found lives in ``corpus/`` next to
this file. Replaying a case must come back ``ok`` — a regression of the
original bug flips it back to its recorded failure kind and fails the
suite with the minimal repro already in hand.
"""

from pathlib import Path

import pytest

from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.testing import (
    CorpusCase,
    load_cases,
    replay_case,
    save_case,
)

CORPUS_DIR = Path(__file__).parent / "corpus"


class TestCorpusRoundTrip:
    def test_save_load_preserves_case(self, tmp_path):
        case = CorpusCase(
            name="t1",
            kind="miscompile",
            passes=["instcombine", "gvn"],
            module_text="define i32 @entry(i32 %n) {\nentry:\n  ret i32 %n\n}\n",
            arg_sets=[(0,), (7,)],
            detail="return value 1 -> 2",
        )
        path = save_case(case, tmp_path)
        assert path.name == "t1.ll"
        loaded = load_cases(tmp_path)
        assert len(loaded) == 1
        got = loaded[0]
        assert got.name == "t1"
        assert got.kind == "miscompile"
        assert got.passes == ["instcombine", "gvn"]
        assert got.arg_sets == [(0,), (7,)]
        assert got.detail == "return value 1 -> 2"
        assert parse_module(got.module_text).instruction_count == 1

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_cases(tmp_path / "nope") == []

    def test_replay_detects_live_bug(self, tmp_path, broken_passes):
        case = CorpusCase(
            name="live",
            kind="miscompile",
            passes=["test-swap-sub"],
            module_text=(
                "define i32 @entry(i32 %n) {\n"
                "entry:\n  %d = sub i32 %n, 3\n  ret i32 %d\n}\n"
            ),
        )
        save_case(case, tmp_path)
        (loaded,) = load_cases(tmp_path)
        assert replay_case(loaded).kind == "miscompile"


class TestCommittedCorpus:
    def test_corpus_is_not_empty(self):
        """The first campaign found real miscompiles; their reduced repros
        are committed here forever."""
        assert load_cases(CORPUS_DIR), "committed fuzz corpus went missing"

    def test_committed_cases_are_small_and_valid(self):
        for case in load_cases(CORPUS_DIR):
            module = parse_module(case.module_text)
            verify_module(module)
            assert module.instruction_count <= 20, case.name
            # Round-trips exactly (reduced repros are normalized).
            assert print_module(parse_module(print_module(module))) == \
                print_module(module)

    @pytest.mark.parametrize(
        "case",
        load_cases(CORPUS_DIR),
        ids=[c.name for c in load_cases(CORPUS_DIR)],
    )
    def test_replay_forever(self, case):
        """Each committed case replays ``ok`` — its bug stays fixed."""
        result = replay_case(case)
        assert result.kind == "ok", (
            f"corpus case {case.name} regressed to {result.kind}: "
            f"{result.detail}\noriginally: {case.detail}"
        )
