"""Deliberately broken passes for exercising the differential oracle.

Each fixture registers a test-only pass in the live ``PASS_REGISTRY`` and
removes it on teardown, so fuzz-harness tests can inject each failure
kind on demand without touching the real pipeline.
"""

from __future__ import annotations

import pytest

from repro.ir.instructions import BinaryOp, Branch, Ret
from repro.passes.base import PASS_REGISTRY, FunctionPass


class SwapSubOperandsPass(FunctionPass):
    """Miscompile: rewrites ``sub x, y`` to ``sub y, x`` (valid IR,
    observably wrong results)."""

    name = "test-swap-sub"

    def run_on_function(self, fn):
        changed = False
        for block in fn.blocks:
            for i, inst in enumerate(list(block.instructions)):
                if isinstance(inst, BinaryOp) and inst.opcode == "sub":
                    swapped = BinaryOp(
                        "sub", inst.operand(1), inst.operand(0), inst.name
                    )
                    block.instructions[i] = swapped
                    swapped.parent = block
                    inst.replace_all_uses_with(swapped)
                    inst.drop_all_operands()
                    inst.parent = None
                    changed = True
        return changed


class CrashingPass(FunctionPass):
    """Crash: raises while running."""

    name = "test-crash"

    def run_on_function(self, fn):
        raise RuntimeError("synthetic pass crash")


class InvalidIRPass(FunctionPass):
    """Verifier break: deletes the entry block's terminator."""

    name = "test-drop-terminator"

    def run_on_function(self, fn):
        term = fn.entry.terminator
        if term is None:
            return False
        term.drop_all_operands()
        fn.entry.instructions.remove(term)
        return True


class InfiniteLoopPass(FunctionPass):
    """Hang: retargets every ``ret`` block back to the entry block."""

    name = "test-infinite-loop"

    def run_on_function(self, fn):
        changed = False
        for block in fn.blocks:
            term = block.terminator
            if isinstance(term, Ret) and not fn.entry.phis():
                term.erase_from_parent()
                block.append(Branch(fn.entry))
                changed = True
        return changed


ALL_BROKEN = (
    SwapSubOperandsPass, CrashingPass, InvalidIRPass, InfiniteLoopPass,
)


@pytest.fixture()
def broken_passes():
    """Register every broken pass; yields their flag names."""
    for cls in ALL_BROKEN:
        PASS_REGISTRY[cls.name] = cls
    try:
        yield [cls.name for cls in ALL_BROKEN]
    finally:
        for cls in ALL_BROKEN:
            PASS_REGISTRY.pop(cls.name, None)


@pytest.fixture()
def swap_sub_pass():
    PASS_REGISTRY[SwapSubOperandsPass.name] = SwapSubOperandsPass
    try:
        yield SwapSubOperandsPass.name
    finally:
        PASS_REGISTRY.pop(SwapSubOperandsPass.name, None)
