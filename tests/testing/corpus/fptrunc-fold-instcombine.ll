;; fuzz-corpus-case
;; name: "fptrunc-fold-instcombine"
;; kind: "miscompile"
;; fn: "entry"
;; args: [[0], [7], [-3]]
;; passes: ["instcombine"]
;; detail: "on args (0,): external-call trace diverged (same length, different callees or arguments)"

; module fuzz4

declare void @observe_f64(double %x)

define i32 @entry(i32 %n) {
entry:
  %v1 = add i64 0, 4660
  %v2 = trunc i64 %v1 to i16
  %v3 = zext i16 %v2 to i32
  %v4 = sitofp i32 %v3 to double
  %v5 = or i32 -12, 1
  %v6 = sitofp i32 %v5 to double
  %v7 = fdiv double %v4, %v6
  %v8 = fadd double %v7, 0.0
  %v9 = fsub double %v8, 0.0
  %v10 = fptrunc double %v9 to float
  %v11 = fpext float %v10 to double
  %v12 = fcmp olt double %v11, %v4
  %v13 = select i1 %v12, double %v11, double %v9
  %v14 = fadd double %v13, 0.0
  call void @observe_f64(double %v14)
  ret i32 0
}
