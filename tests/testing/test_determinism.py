"""Seed determinism across process boundaries.

The whole testing story leans on reproducibility: a seed in a fuzz
report must regenerate the exact same module on any machine, any
process. These tests print generated modules from two *separate*
interpreter processes and require byte-identical output — catching
accidental dependence on hash randomization, dict order, id(), or
process-global state.
"""

import subprocess
import sys

import pytest

FUZZ_SNIPPET = """\
import sys
from repro.ir.printer import print_module
from repro.testing import FuzzProfile, generate_fuzz_program
module = generate_fuzz_program(FuzzProfile(seed={seed}))
sys.stdout.write(print_module(module))
"""

WORKLOAD_SNIPPET = """\
import sys
from repro.ir.printer import print_module
from repro.workloads import ProgramProfile, generate_program
module = generate_program(ProgramProfile(name="det", seed={seed}, segments=4))
sys.stdout.write(print_module(module))
"""


def run_in_subprocess(snippet: str, seed: int) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", snippet.format(seed=seed)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout, "generator printed nothing"
    return proc.stdout


@pytest.mark.parametrize("seed", [0, 42])
def test_fuzz_generator_is_deterministic_across_processes(seed):
    first = run_in_subprocess(FUZZ_SNIPPET, seed)
    second = run_in_subprocess(FUZZ_SNIPPET, seed)
    assert first == second


@pytest.mark.parametrize("seed", [3])
def test_workload_generator_is_deterministic_across_processes(seed):
    first = run_in_subprocess(WORKLOAD_SNIPPET, seed)
    second = run_in_subprocess(WORKLOAD_SNIPPET, seed)
    assert first == second


def test_different_seeds_differ():
    a = run_in_subprocess(FUZZ_SNIPPET, 0)
    b = run_in_subprocess(FUZZ_SNIPPET, 1)
    assert a != b
