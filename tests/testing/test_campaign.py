"""Campaign driver and the ``repro.tools.fuzz`` CLI."""

import json

import pytest

from repro.testing import FuzzConfig, run_campaign
from repro.tools import fuzz as fuzz_cli


class TestRunCampaign:
    def test_clean_campaign_odg(self):
        report = run_campaign(
            FuzzConfig(seeds=3, sequences="odg", episodes=2)
        )
        assert report.seeds_run == 3
        assert report.checks == 6
        assert report.clean
        assert report.counts == {"ok": 6}
        assert report.miscompiles == 0
        assert report.elapsed_s > 0

    def test_campaign_is_deterministic(self):
        config = FuzzConfig(seeds=2, sequences="odg", episodes=2)
        a, b = run_campaign(config), run_campaign(config)
        assert a.counts == b.counts
        assert a.checks == b.checks

    def test_explicit_sequences(self):
        report = run_campaign(
            FuzzConfig(seeds=2, sequences=[["instcombine"], ["gvn", "dce"]])
        )
        assert report.checks == 4
        assert report.clean

    def test_time_budget_stops_early(self):
        report = run_campaign(
            FuzzConfig(seeds=10_000, sequences="odg", time_budget_s=1.0)
        )
        assert report.budget_exhausted
        assert report.seeds_run < 10_000

    def test_injected_miscompile_found_reduced_and_saved(
        self, tmp_path, swap_sub_pass
    ):
        """End to end: the campaign catches a broken pass, shrinks the
        repro to <= 10 instructions and writes a replayable corpus case."""
        from repro.testing import load_cases, replay_case

        report = run_campaign(FuzzConfig(
            seeds=1,
            start_seed=42,
            sequences=[["instcombine", swap_sub_pass, "simplifycfg"]],
            reduce=True,
            corpus_dir=tmp_path,
            reduce_max_checks=600,
        ))
        assert not report.clean
        (failure,) = report.failures
        assert failure.kind == "miscompile"
        assert failure.reduced_passes == [swap_sub_pass]
        assert failure.reduced_instructions is not None
        assert failure.reduced_instructions <= 10
        assert failure.corpus_path is not None

        (case,) = load_cases(tmp_path)
        assert case.passes == [swap_sub_pass]
        # The saved case reproduces while the broken pass is registered...
        assert replay_case(case).kind == "miscompile"
        # ...and the report carries the minimal module text.
        assert failure.reduced_module_text is not None
        assert failure.reduced_module_text.count("\n") < 30

    def test_log_callback_receives_summary(self):
        lines = []
        run_campaign(
            FuzzConfig(seeds=1, sequences="odg"), log=lines.append
        )
        assert lines
        assert "1 seeds" in lines[-1]


class TestFuzzCli:
    def test_acceptance_campaign_200_seeds_odg(self, capsys):
        """The ISSUE acceptance run: 200 seeds through agent-style odg
        episodes complete with zero unexplained miscompiles."""
        rc = fuzz_cli.run([
            "--seeds", "200", "--sequences", "odg",
            "--fail-on-miscompile", "--json", "-q",
        ])
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert report["seeds_run"] == 200
        assert report["failures"] == []
        assert report["counts"].get("miscompile", 0) == 0
        assert report["counts"].get("crash", 0) == 0
        assert report["counts"].get("verifier_error", 0) == 0
        assert report["counts"].get("hang", 0) == 0
        # Nothing was skipped either: every generated program executed.
        assert report["counts"] == {"ok": report["checks"]}

    def test_fail_on_miscompile_exit_code(self, capsys, swap_sub_pass):
        from repro.testing import campaign as campaign_mod

        rc_ok = fuzz_cli.run(["--seeds", "1", "-q"])
        assert rc_ok == 0

        # Broken pass injected through an explicit sequence list.
        report = campaign_mod.run_campaign(FuzzConfig(
            seeds=1, start_seed=42, sequences=[[swap_sub_pass]],
        ))
        assert not report.clean  # sanity: the CLI gate has something to catch

    def test_cli_text_output_lists_failures(
        self, capsys, monkeypatch, swap_sub_pass
    ):
        from repro.testing.campaign import run_campaign as real

        def with_broken(config, log=None):
            config.sequences = [[swap_sub_pass]]
            config.start_seed = 42
            return real(config, log=log)

        monkeypatch.setattr(fuzz_cli, "run_campaign", with_broken)
        rc = fuzz_cli.run(["--seeds", "1", "--fail-on-miscompile", "-q"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "miscompile" in out
        assert swap_sub_pass in out
