"""Scheduler edge cases: empty ticks, deadline windows, hot reload."""

import threading
import time

import pytest

from repro import PosetRL
from repro.ir.printer import print_module
from repro.serving import OptimizationService
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def text():
    module = generate_program(ProgramProfile(name="edge", seed=80, segments=2))
    return print_module(module)


@pytest.fixture()
def agent():
    return PosetRL(seed=0)


class TestBatchFormation:
    def test_empty_batch_tick_is_noop(self, agent):
        svc = OptimizationService.from_agent(agent)
        svc._tick()  # never started, no sessions
        assert svc.counters["batch_ticks"] == 0
        assert svc._active == []

    def test_deadline_expiry_with_single_waiter(self, agent, text):
        """A lone request is held for the full batch window, then served."""
        window = 0.15
        with OptimizationService.from_agent(
            agent, batch_window_s=window
        ) as svc:
            start = time.monotonic()
            result = svc.optimize(text)
            elapsed = time.monotonic() - start
        assert result.status == "ok"
        # the scheduler waited out the window before running the batch
        assert elapsed >= window * 0.6
        assert result.latency_s >= window * 0.6

    def test_full_batch_cuts_window_short(self, agent, text):
        """max_batch waiters do not sit out a long window."""
        with OptimizationService.from_agent(
            agent, batch_window_s=30.0, max_batch=2
        ) as svc:
            svc.start()
            start = time.monotonic()
            futures = [svc.submit(text, name=f"r{i}") for i in range(2)]
            results = [f.result(timeout=10) for f in futures]
            elapsed = time.monotonic() - start
        assert [r.status for r in results] == ["ok", "ok"]
        assert elapsed < 5.0  # nowhere near the 30s window

    def test_late_arrival_joins_in_flight_batch(self, agent, text):
        """Continuous batching: a request arriving mid-rollout is admitted
        at the next tick boundary instead of waiting for the batch to
        drain."""
        with OptimizationService.from_agent(
            agent, batch_window_s=0.001
        ) as svc:
            svc.start()
            first = svc.submit(text, name="early")
            second = svc.submit(text + "\n", name="late")  # distinct text key
            results = [
                f.result(timeout=10) for f in (first, second)
            ]
        assert all(r.status == "ok" for r in results)
        # Same fingerprint -> the late request either joined the batch or
        # hit the result cache recorded by the first.
        assert results[0].fingerprint == results[1].fingerprint


class TestHotReload:
    def test_reload_mid_stream_keeps_in_flight_requests(self, agent, text):
        """Requests pinned to v1 finish on v1 while new traffic gets v2 —
        across *different action spaces*, which also exercises the
        per-kind metrics engine segregation."""
        manual = PosetRL(action_space="manual", seed=5)
        svc = OptimizationService.from_agent(
            agent, batch_window_s=0.05, result_cache_size=None
        )
        # Submit before starting the scheduler: the request pins v1 but
        # cannot complete yet.
        first = svc.submit(text, name="pinned-to-v1")
        svc.registry.register(
            manual.agent.online,
            action_space="manual",
            episode_length=manual.episode_length,
            version="v2",
        )
        svc.registry.activate("v2")
        second = svc.submit(text, name="gets-v2")
        with svc:
            r1 = first.result(timeout=30)
            r2 = second.result(timeout=30)

        assert r1.status == "ok"
        assert r1.model_version == "v1"
        assert r1.action_space == "odg"
        assert r2.status == "ok"
        assert r2.model_version == "v2"
        assert r2.action_space == "manual"
        assert len(r2.actions) == manual.episode_length
        # both generations ran; each action-space kind got its own engine
        assert set(svc.stats()["metrics"]) == {"odg", "manual"}
        assert svc.counters["fallbacks"] == 0

    def test_concurrent_reload_under_load(self, agent, text):
        """Activating a new version while clients are in flight drops
        nothing."""
        other = PosetRL(seed=7)
        svc = OptimizationService.from_agent(
            agent, batch_window_s=0.001, result_cache_size=None
        )
        svc.registry.register(other.agent.online, version="v2")
        errors = []
        results = []
        lock = threading.Lock()

        def client(i):
            try:
                result = svc.optimize(text, name=f"c{i}")
                with lock:
                    results.append(result)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reloader():
            for version in ("v2", "v1", "v2"):
                svc.registry.activate(version)
                time.sleep(0.002)

        with svc:
            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(6)
            ]
            threads.append(threading.Thread(target=reloader))
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert not errors
        assert len(results) == 6
        assert all(r.status == "ok" for r in results)
        assert {r.model_version for r in results} <= {"v1", "v2"}
