"""Sharded gateway: routing, admission control, failover, open loop.

Worker subprocesses are real (fork + pipes), so every test keeps the
module corpus small and the episode length short; the gateway tests run
in a few seconds total on one core.
"""

import time

import pytest

from repro import PosetRL
from repro.ir.fingerprint import module_fingerprint
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.serving import (
    OptimizeRequest,
    ShardedGateway,
    TenantMix,
    TokenBucket,
    run_open_loop,
    shard_for_fingerprint,
)
from repro.serving.gateway import route_text
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def texts():
    return [
        print_module(
            generate_program(
                ProgramProfile(name=f"gw{i}", seed=700 + i, segments=2)
            )
        )
        for i in range(6)
    ]


@pytest.fixture(scope="module")
def agent():
    return PosetRL(episode_length=4, seed=0)


def make_gateway(agent, n_shards=2, **kwargs):
    kwargs.setdefault("batch_window_s", 0.001)
    kwargs.setdefault("verify", False)
    kwargs.setdefault("include_ir", False)
    return ShardedGateway.from_agent(agent, n_shards, **kwargs)


def fresh_text_for_shard(gateway, shard, *, seed0=800, segments=2):
    """Generate a module not seen by the gateway that routes to ``shard``."""
    for seed in range(seed0, seed0 + 200):
        text = print_module(
            generate_program(
                ProgramProfile(name=f"fresh{seed}", seed=seed,
                               segments=segments)
            )
        )
        if gateway.shard_for(text) == shard:
            return text
    raise AssertionError(f"no module routed to shard {shard}")


class TestRouting:
    def test_shard_for_fingerprint_deterministic(self):
        fp = "deadbeefcafebabe0123456789abcdef"
        assert shard_for_fingerprint(fp, 4) == int(fp[:16], 16) % 4
        assert shard_for_fingerprint(fp, 4) == shard_for_fingerprint(fp, 4)

    def test_same_text_same_shard_across_processes(self, texts):
        # The routing decision must not depend on process-local state
        # (e.g. Python's salted hash): recompute it in a subprocess.
        import multiprocessing as mp

        parent = [route_text(t, 4) for t in texts]
        with mp.get_context().Pool(1) as pool:
            child = pool.starmap(route_text, [(t, 4) for t in texts])
        assert parent == child

    def test_route_matches_module_fingerprint(self, texts):
        for text in texts:
            fp = module_fingerprint(parse_module(text))
            assert route_text(text, 3) == shard_for_fingerprint(fp, 3)

    def test_gateway_serves_and_reports_shard(self, agent, texts):
        with make_gateway(agent, n_shards=2) as gw:
            for text in texts:
                result = gw.optimize(text)
                assert result.status == "ok"
                assert result.shard == gw.shard_for(text)
                assert result.as_dict()["shard"] == result.shard

    def test_repeats_hit_same_shards_warm_cache(self, agent, texts):
        with make_gateway(agent, n_shards=2) as gw:
            first = [gw.optimize(t) for t in texts]
            second = [gw.optimize(t) for t in texts]
        for a, b in zip(first, second):
            assert b.shard == a.shard
            assert b.cache_hit
            assert b.actions == a.actions
        stats = gw.stats()
        # Round two was routed entirely from the exact-text memo.
        assert stats.counters["routed_memo_hits"] >= len(texts)


class TestAdmissionControl:
    def test_queue_full_sheds_with_reason(self, agent, texts):
        with make_gateway(agent, n_shards=1, max_pending=1) as gw:
            futures = [
                gw.submit(t, name=f"m{i}") for i, t in enumerate(texts)
            ]
            results = [f.result(timeout=120) for f in futures]
        shed = [r for r in results if r.reason and r.reason.startswith("shed")]
        served = [r for r in results if r.status == "ok"]
        assert shed, "max_pending=1 under a burst must shed"
        assert served, "admission control must not shed everything"
        for r in shed:
            assert r.status == "rejected"
            assert "queue_full" in r.reason
        assert gw.stats().shed_reasons.get("queue_full", 0) == len(shed)

    def test_rate_limited_tenant_sheds_others_unaffected(self, agent, texts):
        with make_gateway(
            agent, n_shards=2, tenant_rate=1.0, tenant_burst=2.0
        ) as gw:
            # Warm both shards so the polite tenant's requests are fast.
            for t in texts:
                gw.optimize(t, tenant="warm")
            noisy = [
                gw.submit(texts[i % len(texts)], tenant="noisy")
                for i in range(20)
            ]
            polite = [gw.submit(t, tenant="polite") for t in texts[:2]]
            noisy_results = [f.result(timeout=120) for f in noisy]
            polite_results = [f.result(timeout=120) for f in polite]
        noisy_shed = [
            r for r in noisy_results
            if r.reason and "rate_limited" in r.reason
        ]
        assert len(noisy_shed) >= 10  # burst 2 + a token or two refilled
        # Tokens are per tenant: the polite tenant (2 requests, burst 2)
        # is never shed and its latency stays cache-hit bounded.
        assert all(r.status == "ok" for r in polite_results)
        assert all(r.latency_s < 5.0 for r in polite_results)

    def test_parse_error_rejected_not_shed(self, agent):
        with make_gateway(agent, n_shards=1) as gw:
            result = gw.optimize("this is not IR")
        assert result.status == "rejected"
        assert "parse_error" in result.reason
        assert gw.stats().counters["shed"] == 0

    def test_token_bucket_refills(self):
        bucket = TokenBucket(rate=100.0, burst=1.0)
        now = time.monotonic()
        assert bucket.try_acquire(now)
        assert not bucket.try_acquire(now)
        assert bucket.try_acquire(now + 0.02)  # 2 tokens refilled, capped


class TestFailover:
    def test_worker_crash_mid_request_fails_over(self, agent):
        from repro.observability import disable, enable, get_registry

        enable()
        try:
            gw = make_gateway(
                agent, n_shards=2,
                # Monitor effectively off: only pipe EOF detects death,
                # so the test controls the timing.
                heartbeat_interval_s=30.0, heartbeat_timeout_s=60.0,
            )
            with gw:
                # A slow, never-seen module pinned to shard 0.
                text = fresh_text_for_shard(gw, 0, segments=8)
                victim = gw._handles[0].proc
                future = gw.submit(text, name="inflight")
                time.sleep(0.02)  # let the worker start computing
                victim.kill()
                result = future.result(timeout=120)
                assert result.status == "ok"
                assert result.shard == 1  # served by the sibling
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    stats = gw.stats()
                    if stats.per_shard[0]["alive"]:
                        break
                    time.sleep(0.05)
                assert stats.counters["worker_restarts"] == 1
                assert stats.counters["failovers"] == 1
                assert stats.per_shard[0]["alive"]
                assert get_registry().get_value(
                    "repro_gateway_worker_restarts_total"
                ) == 1
                # The restarted worker serves its shard again.
                after = gw.optimize(fresh_text_for_shard(gw, 0, seed0=1100))
                assert after.status == "ok"
                assert after.shard == 0
        finally:
            disable()

    def test_single_shard_crash_restarts_and_serves(self, agent):
        with make_gateway(
            agent, n_shards=1,
            heartbeat_interval_s=0.05, heartbeat_timeout_s=60.0,
        ) as gw:
            first = gw.optimize(fresh_text_for_shard(gw, 0, seed0=1200))
            assert first.status == "ok"
            gw._handles[0].proc.kill()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if gw.stats().counters["worker_restarts"] >= 1:
                    break
                time.sleep(0.05)
            result = gw.optimize(fresh_text_for_shard(gw, 0, seed0=1300))
            assert result.status == "ok"
            assert gw.stats().counters["worker_restarts"] >= 1


class TestLifecycle:
    def test_stop_returns_final_worker_counters(self, agent, texts):
        gw = make_gateway(agent, n_shards=2)
        gw.start()
        for text in texts:
            assert gw.optimize(text).status == "ok"
        final = gw.stop()
        assert set(final) == {0, 1}
        total = sum(
            final[i].get("counters", {}).get("requests", 0) for i in final
        )
        assert total == len(texts)
        with pytest.raises(RuntimeError):
            gw.submit(texts[0])
        # stop() is idempotent.
        assert gw.stop() == final

    def test_service_drain_returns_counters(self, agent, texts):
        from repro.serving import OptimizationService

        svc = OptimizationService.from_agent(agent, batch_window_s=0.001)
        svc.start()
        assert svc.optimize(texts[0]).status == "ok"
        final = svc.drain()
        assert final["counters"]["requests"] == 1
        assert final["counters"]["ok"] == 1
        with pytest.raises(RuntimeError):
            svc.submit(texts[0])

    def test_hot_reload_broadcasts_to_all_shards(self, agent, texts):
        from repro.rl.network import QNetwork

        with make_gateway(agent, n_shards=2) as gw:
            before = gw.optimize(texts[0])
            assert before.model_version == "v1"
            online = agent.agent.online
            candidate = QNetwork(
                online.state_dim, online.num_actions, online.hidden,
            )
            candidate.copy_from(online)
            outcomes = gw.hot_reload(network=candidate, version="v2")
            assert outcomes == {0: None, 1: None}
            assert gw.model_version == "v2"
            after = gw.optimize(texts[0])
            assert after.model_version == "v2"
            # New version, same fingerprint: not answered from v1's cache.
            assert not after.cache_hit


class TestOpenLoop:
    def test_open_loop_against_plain_service(self, agent, texts):
        from repro.serving import OptimizationService

        svc = OptimizationService.from_agent(agent, batch_window_s=0.001)
        requests = [
            OptimizeRequest(ir_text=t, name=f"m{i}")
            for i, t in enumerate(texts)
        ]
        with svc:
            for req in requests:  # warm the cache: the run is then fast
                svc.optimize(req.ir_text)
            report = run_open_loop(
                svc, requests, arrival_rate=200.0, total=40, seed=1
            )
        assert report.offered == 40
        assert report.completed == 40
        assert report.status_counts.get("ok", 0) == 40
        assert report.shed == 0
        assert report.goodput_rps > 0
        assert report.p99_ms >= report.p50_ms >= 0.0

    def test_overload_sheds_but_p99_stays_bounded(self, agent, texts):
        # Overload far beyond capacity against a tiny admission window:
        # caches start cold, so the first pass over the corpus costs
        # real compute while arrivals land every 2.5ms — the gateway
        # must shed (nonzero) while served latency stays bounded by
        # max_pending * per-request cost rather than growing with the
        # backlog.
        # coalesce=False: this test drives duplicate texts and asserts
        # the raw admission window; coalescing (which legitimately lets
        # duplicates ride outside the window) has its own test file.
        with make_gateway(agent, n_shards=2, max_pending=4,
                          coalesce=False) as gw:
            requests = [
                OptimizeRequest(ir_text=t, name=f"m{i}")
                for i, t in enumerate(texts)
            ]
            report = run_open_loop(
                gw, requests, arrival_rate=400.0, total=200, seed=2,
                burst_factor=4.0, burst_every_s=0.5, burst_duty=0.25,
            )
        assert report.completed == report.offered == 200
        assert report.shed > 0
        assert report.max_in_flight <= 4 + 1  # admission window holds
        assert report.p99_ms < 10_000.0
        served = report.status_counts.get("ok", 0)
        assert served + report.shed + report.status_counts.get(
            "fallback", 0
        ) >= 200 - 5

    def test_tenant_mix_and_per_tenant_stats(self, agent, texts):
        with make_gateway(
            agent, n_shards=1, tenant_rates={"greedy": 5.0}
        ) as gw:
            for t in texts:
                gw.optimize(t)
            requests = [
                OptimizeRequest(ir_text=t, name=f"m{i}")
                for i, t in enumerate(texts)
            ]
            report = run_open_loop(
                gw, requests, arrival_rate=150.0, total=120, seed=3,
                tenants=[
                    TenantMix("greedy", weight=3.0),
                    TenantMix("modest", weight=1.0),
                ],
            )
        greedy = report.per_tenant["greedy"]
        modest = report.per_tenant["modest"]
        assert greedy["offered"] > modest["offered"]
        # Only the rate-limited tenant is shed; the unlimited tenant's
        # p99 stays cache-hit fast despite the greedy tenant's overload.
        assert greedy["shed"] > 0
        assert modest["shed"] == 0
        assert modest["p99_ms"] < 5_000.0
