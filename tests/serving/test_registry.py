"""Model registry: versioning, activation, checkpoint metadata."""

import numpy as np
import pytest

from repro import PosetRL
from repro.rl.network import QNetwork
from repro.serving import ModelRegistry


def _net(num_actions=34, seed=0):
    return QNetwork(300, num_actions, (16,), seed=seed)


class TestRegistry:
    def test_first_registration_activates(self):
        registry = ModelRegistry()
        assert not registry.has_active
        version = registry.register(_net())
        assert version == "v1"
        assert registry.active.version == "v1"
        assert registry.active.action_space_kind == "odg"

    def test_later_registrations_do_not_steal_traffic(self):
        registry = ModelRegistry()
        registry.register(_net(seed=0))
        registry.register(_net(seed=1))
        assert registry.active.version == "v1"
        assert registry.versions() == ["v1", "v2"]

    def test_activate_swaps_atomically(self):
        registry = ModelRegistry()
        registry.register(_net(seed=0))
        registry.register(_net(seed=1))
        model = registry.activate("v2")
        assert model.version == "v2"
        assert registry.active is model

    def test_activate_unknown_version(self):
        registry = ModelRegistry()
        registry.register(_net())
        with pytest.raises(KeyError, match="v9"):
            registry.activate("v9")

    def test_no_active_model_raises(self):
        with pytest.raises(LookupError):
            ModelRegistry().active

    def test_duplicate_version_rejected(self):
        registry = ModelRegistry()
        registry.register(_net(), version="prod")
        with pytest.raises(ValueError, match="prod"):
            registry.register(_net(), version="prod")

    def test_action_count_mismatch_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="manual"):
            registry.register(_net(num_actions=34), action_space="manual")

    def test_act_is_greedy_argmax(self):
        registry = ModelRegistry()
        registry.register(_net())
        model = registry.active
        states = np.random.RandomState(0).standard_normal((4, 300))
        actions = model.act(states)
        expected = model.network.predict(states).argmax(axis=1)
        assert np.array_equal(actions, expected)

    def test_describe_carries_metadata(self):
        registry = ModelRegistry()
        registry.register(_net(), metadata={"train_episodes": 7})
        desc = registry.active.describe()
        assert desc["action_space"] == "odg"
        assert desc["state_dim"] == 300
        assert desc["meta.train_episodes"] == 7


class TestCheckpointMetadata:
    def test_posetrl_checkpoint_embeds_serving_metadata(self, tmp_path):
        agent = PosetRL(action_space="manual", seed=3, episode_length=9)
        path = str(tmp_path / "model.npz")
        agent.save(path)
        meta = QNetwork.load_metadata(path)
        assert meta["action_space"] == "manual"
        assert meta["episode_length"] == 9
        assert meta["num_actions"] == 15
        assert meta["double_dqn"] is True
        assert meta["train_episodes"] == 0

    def test_register_checkpoint_self_configures(self, tmp_path):
        agent = PosetRL(action_space="manual", seed=3, episode_length=9)
        path = str(tmp_path / "model.npz")
        agent.save(path)
        registry = ModelRegistry()
        registry.register_checkpoint(path)
        model = registry.active
        assert model.action_space_kind == "manual"
        assert model.episode_length == 9
        assert model.num_actions == 15
        # weights actually round-trip
        state = np.zeros(300)
        assert np.allclose(
            model.network.predict(state), agent.agent.online.predict(state)
        )

    def test_register_checkpoint_explicit_override(self, tmp_path):
        agent = PosetRL(action_space="odg", seed=0)
        path = str(tmp_path / "model.npz")
        agent.save(path)
        registry = ModelRegistry()
        registry.register_checkpoint(path, action_space="odg",
                                     episode_length=5)
        assert registry.active.episode_length == 5

    def test_legacy_checkpoint_without_metadata(self, tmp_path):
        net = _net()
        path = str(tmp_path / "legacy.npz")
        net.save(path)  # no metadata argument
        assert QNetwork.load_metadata(path) == {}
        registry = ModelRegistry()
        registry.register_checkpoint(path)  # defaults to odg
        assert registry.active.action_space_kind == "odg"
