"""Model registry: versioning, activation, checkpoint metadata."""

import numpy as np
import pytest

from repro import PosetRL
from repro.rl.network import QNetwork
from repro.serving import ModelRegistry


def _net(num_actions=34, seed=0):
    return QNetwork(300, num_actions, (16,), seed=seed)


class TestRegistry:
    def test_first_registration_activates(self):
        registry = ModelRegistry()
        assert not registry.has_active
        version = registry.register(_net())
        assert version == "v1"
        assert registry.active.version == "v1"
        assert registry.active.action_space_kind == "odg"

    def test_later_registrations_do_not_steal_traffic(self):
        registry = ModelRegistry()
        registry.register(_net(seed=0))
        registry.register(_net(seed=1))
        assert registry.active.version == "v1"
        assert registry.versions() == ["v1", "v2"]

    def test_activate_swaps_atomically(self):
        registry = ModelRegistry()
        registry.register(_net(seed=0))
        registry.register(_net(seed=1))
        model = registry.activate("v2")
        assert model.version == "v2"
        assert registry.active is model

    def test_activate_unknown_version(self):
        registry = ModelRegistry()
        registry.register(_net())
        with pytest.raises(KeyError, match="v9"):
            registry.activate("v9")

    def test_no_active_model_raises(self):
        with pytest.raises(LookupError):
            ModelRegistry().active

    def test_duplicate_version_rejected(self):
        registry = ModelRegistry()
        registry.register(_net(), version="prod")
        with pytest.raises(ValueError, match="prod"):
            registry.register(_net(), version="prod")

    def test_action_count_mismatch_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="manual"):
            registry.register(_net(num_actions=34), action_space="manual")

    def test_act_is_greedy_argmax(self):
        registry = ModelRegistry()
        registry.register(_net())
        model = registry.active
        states = np.random.RandomState(0).standard_normal((4, 300))
        actions = model.act(states)
        expected = model.network.predict(states).argmax(axis=1)
        assert np.array_equal(actions, expected)

    def test_describe_carries_metadata(self):
        registry = ModelRegistry()
        registry.register(_net(), metadata={"train_episodes": 7})
        desc = registry.active.describe()
        assert desc["action_space"] == "odg"
        assert desc["state_dim"] == 300
        assert desc["meta.train_episodes"] == 7


class TestCheckpointMetadata:
    def test_posetrl_checkpoint_embeds_serving_metadata(self, tmp_path):
        agent = PosetRL(action_space="manual", seed=3, episode_length=9)
        path = str(tmp_path / "model.npz")
        agent.save(path)
        meta = QNetwork.load_metadata(path)
        assert meta["action_space"] == "manual"
        assert meta["episode_length"] == 9
        assert meta["num_actions"] == 15
        assert meta["double_dqn"] is True
        assert meta["train_episodes"] == 0

    def test_register_checkpoint_self_configures(self, tmp_path):
        agent = PosetRL(action_space="manual", seed=3, episode_length=9)
        path = str(tmp_path / "model.npz")
        agent.save(path)
        registry = ModelRegistry()
        registry.register_checkpoint(path)
        model = registry.active
        assert model.action_space_kind == "manual"
        assert model.episode_length == 9
        assert model.num_actions == 15
        # weights actually round-trip
        state = np.zeros(300)
        assert np.allclose(
            model.network.predict(state), agent.agent.online.predict(state)
        )

    def test_register_checkpoint_explicit_override(self, tmp_path):
        agent = PosetRL(action_space="odg", seed=0)
        path = str(tmp_path / "model.npz")
        agent.save(path)
        registry = ModelRegistry()
        registry.register_checkpoint(path, action_space="odg",
                                     episode_length=5)
        assert registry.active.episode_length == 5

    def test_legacy_checkpoint_without_metadata(self, tmp_path):
        net = _net()
        path = str(tmp_path / "legacy.npz")
        net.save(path)  # no metadata argument
        assert QNetwork.load_metadata(path) == {}
        registry = ModelRegistry()
        registry.register_checkpoint(path)  # defaults to odg
        assert registry.active.action_space_kind == "odg"


class TestPruneAndPin:
    def _registry(self, n=5):
        registry = ModelRegistry()
        for i in range(n):
            registry.register(_net(seed=i))  # v1..vN, v1 active
        return registry

    def test_prune_keeps_last_n_and_active(self):
        registry = self._registry(5)
        removed = registry.prune(keep_last=2)
        # v1 is active, v4/v5 are the newest two.
        assert removed == ["v2", "v3"]
        assert registry.versions() == ["v1", "v4", "v5"]
        assert registry.active.version == "v1"

    def test_pinned_version_survives_prune(self):
        registry = self._registry(5)
        registry.activate("v5")
        registry.pin("v1")
        removed = registry.prune(keep_last=1)
        assert removed == ["v2", "v3", "v4"]
        assert registry.versions() == ["v1", "v5"]
        assert registry.pinned() == ["v1"]

    def test_unpin_reexposes_to_prune(self):
        registry = self._registry(3)
        registry.activate("v3")
        registry.pin("v1")
        registry.unpin("v1")
        assert registry.prune(keep_last=1) == ["v1", "v2"]

    def test_keep_protects_rollback_target(self):
        registry = self._registry(5)
        registry.activate("v5")
        removed = registry.prune(keep_last=1, keep=("v2",))
        assert "v2" not in removed
        assert registry.versions() == ["v2", "v5"]

    def test_pin_unknown_version_raises(self):
        registry = self._registry(2)
        with pytest.raises(KeyError, match="v9"):
            registry.pin("v9")

    def test_negative_keep_last_rejected(self):
        with pytest.raises(ValueError, match="keep_last"):
            self._registry(2).prune(keep_last=-1)

    def test_keep_last_zero_keeps_only_protected(self):
        registry = self._registry(4)
        registry.activate("v4")
        assert registry.prune(keep_last=0) == ["v1", "v2", "v3"]
        assert registry.versions() == ["v4"]

    def test_prune_empty_registry(self):
        assert ModelRegistry().prune() == []

    def test_pruned_version_cannot_be_activated(self):
        registry = self._registry(4)
        registry.prune(keep_last=1)
        with pytest.raises(KeyError):
            registry.activate("v2")
