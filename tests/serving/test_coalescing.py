"""Gateway request coalescing: duplicate in-flight texts share one rollout."""

import threading

import pytest

from repro import PosetRL
from repro import observability as obs
from repro.ir.printer import print_module
from repro.serving import ShardedGateway
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def text():
    return print_module(
        generate_program(ProgramProfile(name="dup", seed=900, segments=2))
    )


@pytest.fixture(scope="module")
def other_text():
    return print_module(
        generate_program(ProgramProfile(name="other", seed=901, segments=2))
    )


def make_gateway(**kwargs):
    agent = PosetRL(episode_length=4, seed=0)
    # A wide batch window holds the leader in the worker long enough for
    # the duplicates to arrive while it is still in flight.
    kwargs.setdefault("batch_window_s", 0.3)
    kwargs.setdefault("verify", False)
    kwargs.setdefault("include_ir", False)
    kwargs.setdefault("result_cache_size", None)
    return ShardedGateway.from_agent(agent, 1, **kwargs)


class TestCoalescing:
    def test_duplicates_share_one_worker_computation(self, text):
        with make_gateway() as gateway:
            futures = [
                gateway.submit(text, name=f"dup{i}") for i in range(5)
            ]
            results = [f.result(timeout=30) for f in futures]
            assert gateway.counters["coalesced"] == 4
        assert all(r.status == "ok" for r in results)
        # Every caller got its own name back on the shared result...
        assert [r.name for r in results] == [f"dup{i}" for i in range(5)]
        # ...and the computation itself ran exactly once.
        assert all(r.actions == results[0].actions for r in results)
        stats = gateway.stats()
        assert stats.per_shard[0]["counters"]["requests"] == 1
        assert stats.counters["ok"] == 5

    def test_coalesce_disabled_runs_each_request(self, text):
        with make_gateway(coalesce=False) as gateway:
            futures = [gateway.submit(text) for _ in range(3)]
            for f in futures:
                assert f.result(timeout=30).status == "ok"
            assert gateway.counters["coalesced"] == 0
        assert gateway.stats().per_shard[0]["counters"]["requests"] == 3

    def test_distinct_texts_not_coalesced(self, text, other_text):
        with make_gateway() as gateway:
            a = gateway.submit(text)
            b = gateway.submit(other_text)
            assert a.result(timeout=30).status == "ok"
            assert b.result(timeout=30).status == "ok"
            assert gateway.counters["coalesced"] == 0
        assert gateway.stats().per_shard[0]["counters"]["requests"] == 2

    def test_completed_leader_does_not_coalesce_later_requests(self, text):
        with make_gateway(batch_window_s=0.001) as gateway:
            first = gateway.submit(text)
            assert first.result(timeout=30).status == "ok"
            # The leader finished; a new request must start a fresh
            # computation, not ride a dead one.
            second = gateway.submit(text)
            assert second.result(timeout=30).status == "ok"
            assert gateway.counters["coalesced"] == 0

    def test_concurrent_duplicate_submissions(self, text):
        """Racing clients: exactly one leader, everyone gets a result."""
        n = 8
        results = [None] * n
        with make_gateway(batch_window_s=0.5) as gateway:
            barrier = threading.Barrier(n)

            def client(i):
                barrier.wait()
                results[i] = gateway.submit(text, name=f"c{i}").result(
                    timeout=30
                )

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert gateway.counters["coalesced"] == n - 1
        assert all(r is not None and r.status == "ok" for r in results)
        assert len({tuple(r.actions) for r in results}) == 1
        assert gateway.stats().per_shard[0]["counters"]["requests"] == 1

    def test_coalesced_metric_published(self, text):
        registry, _ = obs.enable()
        try:
            with make_gateway() as gateway:
                futures = [gateway.submit(text) for _ in range(3)]
                for f in futures:
                    assert f.result(timeout=30).status == "ok"
            assert (
                registry.get_value("repro_gateway_coalesced_total") == 2
            )
        finally:
            obs.disable()
