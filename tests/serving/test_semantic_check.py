"""Optional post-optimization semantic check in the serving path.

A policy-chosen pass sequence that miscompiles must not be served. With
``semantic_check=True`` the service runs the differential oracle on the
(original, optimized) pair and falls back to ``-Oz`` on any mismatch;
without it the miscompiled IR goes out the door — both directions are
pinned here using a deliberately broken pass wired into a one-action
policy.
"""

import pytest

from repro.core.environment import ActionSpace, PhaseOrderingEnv
from repro.ir.interp import Interpreter
from repro.ir.parser import parse_module
from repro.passes.base import PASS_REGISTRY
from repro.rl.network import QNetwork
from repro.serving import OptimizationService
from repro.serving import registry as registry_mod
from repro.serving.registry import ModelRegistry

from ..testing.conftest import SwapSubOperandsPass

SUB_TEXT = """\
define i32 @entry(i32 %n) {
entry:
  %d = sub i32 %n, 3
  ret i32 %d
}
"""


@pytest.fixture()
def broken_policy_service(monkeypatch):
    """A service whose only action applies the swap-sub miscompile pass."""
    PASS_REGISTRY[SwapSubOperandsPass.name] = SwapSubOperandsPass
    monkeypatch.setattr(
        registry_mod,
        "make_action_space",
        lambda kind: ActionSpace([[SwapSubOperandsPass.name]]),
    )
    try:
        state_dim = PhaseOrderingEnv(parse_module(SUB_TEXT)).state_dim
        registry = ModelRegistry()
        registry.register(
            QNetwork(state_dim, 1, seed=0),
            action_space="odg",
            episode_length=1,
        )

        def make(**kwargs):
            kwargs.setdefault("batch_window_s", 0.001)
            kwargs.setdefault("include_ir", True)
            return OptimizationService(registry, **kwargs)

        yield make
    finally:
        PASS_REGISTRY.pop(SwapSubOperandsPass.name, None)


class TestSemanticCheck:
    def test_miscompile_triggers_fallback(self, broken_policy_service):
        with broken_policy_service(semantic_check=True) as svc:
            result = svc.optimize(SUB_TEXT, name="guarded")
        assert result.status == "fallback"
        assert result.reason is not None
        assert result.reason.startswith("miscompile")
        # The fallback result is the -Oz pipeline's, which is correct.
        served = parse_module(result.optimized_ir)
        assert Interpreter(served).run("entry", (0,)) == -3

    def test_without_check_miscompiled_ir_is_served(
        self, broken_policy_service
    ):
        """The gap the check closes: unguarded, the wrong IR ships."""
        with broken_policy_service(semantic_check=False) as svc:
            result = svc.optimize(SUB_TEXT, name="unguarded")
        assert result.status == "ok"
        served = parse_module(result.optimized_ir)
        # sub %n, 3 was flipped to sub 3, %n: entry(0) is 3, not -3.
        assert Interpreter(served).run("entry", (0,)) == 3

    def test_clean_policy_result_passes_check(self):
        registry = ModelRegistry()
        state_dim = PhaseOrderingEnv(parse_module(SUB_TEXT)).state_dim
        from repro.core.environment import make_action_space

        registry.register(
            QNetwork(state_dim, len(make_action_space("odg")), seed=0),
            action_space="odg",
            episode_length=2,
        )
        svc = OptimizationService(
            registry, semantic_check=True, include_ir=True,
            batch_window_s=0.001,
        )
        with svc:
            result = svc.optimize(SUB_TEXT, name="clean")
        assert result.status == "ok"
        served = parse_module(result.optimized_ir)
        assert Interpreter(served).run("entry", (7,)) == 4

    def test_verified_results_are_memoized(self, broken_policy_service):
        with broken_policy_service(semantic_check=True) as svc:
            first = svc.optimize(SUB_TEXT, name="a")
            memo_after_first = len(svc._sem_verified)
            second = svc.optimize(SUB_TEXT, name="b")
        # Both fell back; the miscompiled fingerprint is never memoized
        # as verified.
        assert first.status == second.status == "fallback"
        assert memo_after_first == 0

    def test_clean_memo_skips_recheck(self, monkeypatch):
        registry = ModelRegistry()
        state_dim = PhaseOrderingEnv(parse_module(SUB_TEXT)).state_dim
        from repro.core.environment import make_action_space

        registry.register(
            QNetwork(state_dim, len(make_action_space("odg")), seed=0),
            action_space="odg",
            episode_length=2,
        )
        svc = OptimizationService(
            registry, semantic_check=True, include_ir=True,
            batch_window_s=0.001,
        )
        with svc:
            svc.optimize(SUB_TEXT, name="first")
            assert len(svc._sem_verified) == 1
            # A repeat of the same module hits the result cache (or the
            # memo); either way equivalence is not recomputed.
            import repro.testing.oracle as oracle_mod

            def boom(*args, **kwargs):  # pragma: no cover
                raise AssertionError("equivalence recomputed")

            monkeypatch.setattr(oracle_mod, "modules_equivalent", boom)
            repeat = svc.optimize(SUB_TEXT, name="second")
        assert repeat.status == "ok"
