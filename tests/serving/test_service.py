"""Optimization service: correctness, result cache, robustness guard."""

import pytest

from repro import PosetRL
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import VerificationError, verify_module
from repro.serving import OptimizationService, request_pool, run_load
from repro.serving import service as service_mod
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def modules():
    return [
        generate_program(ProgramProfile(name=f"svc{i}", seed=70 + i, segments=2))
        for i in range(3)
    ]


@pytest.fixture(scope="module")
def texts(modules):
    return [print_module(m) for m in modules]


@pytest.fixture()
def agent():
    return PosetRL(seed=0)


def make_service(agent, **kwargs):
    kwargs.setdefault("batch_window_s", 0.001)
    return OptimizationService.from_agent(agent, **kwargs)


class TestBasicServing:
    def test_result_matches_serial_predict(self, agent, modules, texts):
        with make_service(agent) as svc:
            result = svc.optimize(texts[0], name="m0")
        assert result.status == "ok"
        assert result.model_version == "v1"
        assert result.action_space == "odg"
        # Same policy, same greedy rollout as the one-module API.
        assert result.actions == agent.predict(modules[0])
        assert result.passes == agent.predicted_pass_sequence(result.actions)
        assert len(result.actions) == agent.episode_length
        assert result.base_size > 0
        assert result.optimized_size > 0
        assert result.optimized_ir is not None
        assert "define" in result.optimized_ir
        assert result.latency_s > 0

    def test_optimized_ir_is_equivalent_to_apply_actions(self, agent, texts):
        with make_service(agent) as svc:
            result = svc.optimize(texts[1])
        # The served IR verifies and matches the offline apply_actions
        # result structurally (value *names* may differ between the
        # incremental env path and the one-shot apply path).
        served = parse_module(result.optimized_ir)
        verify_module(served)
        expected = agent.apply_actions(parse_module(texts[1]), result.actions)
        assert served.instruction_count == expected.instruction_count
        assert agent.metrics.size(served).total_bytes == result.optimized_size
        assert (
            agent.metrics.size(expected).total_bytes == result.optimized_size
        )

    def test_include_ir_false_omits_text(self, agent, texts):
        with make_service(agent, include_ir=False) as svc:
            result = svc.optimize(texts[0])
        assert result.status == "ok"
        assert result.optimized_ir is None

    def test_counters_and_stats_shape(self, agent, texts):
        with make_service(agent) as svc:
            svc.optimize(texts[0])
            stats = svc.stats()
        assert svc.counters["requests"] == 1
        assert svc.counters["ok"] == 1
        assert svc.counters["batched_steps"] == agent.episode_length
        assert "v1" in stats["models"]
        assert "result_cache" in stats
        assert "odg" in stats["metrics"]

    def test_submit_after_stop_raises(self, agent, texts):
        svc = make_service(agent)
        svc.start()
        svc.stop()
        with pytest.raises(RuntimeError):
            svc.submit(texts[0])

    def test_stop_drains_queued_work(self, agent, texts):
        svc = make_service(agent)
        svc.start()
        futures = [svc.submit(t) for t in texts]
        svc.stop()
        for future in futures:
            assert future.result(timeout=1).status == "ok"


class TestResultCache:
    def test_repeat_submission_is_bit_identical(self, agent, texts):
        with make_service(agent) as svc:
            first = svc.optimize(texts[0], name="a")
            second = svc.optimize(texts[0], name="b")
        assert not first.cache_hit
        assert second.cache_hit
        # The cached report (everything but per-request fields) is the
        # recorded one, verbatim.
        assert second.report() == first.report()
        assert svc.counters["cache_hits"] == 1
        assert svc.result_cache.stats.hits == 1

    def test_cache_hit_runs_no_pass_or_measurement_code(self, agent, texts):
        with make_service(agent) as svc:
            svc.optimize(texts[0])
            before = svc.stats()["metrics"]
            ticks_before = svc.counters["batch_ticks"]
            hit = svc.optimize(texts[0])
            after = svc.stats()["metrics"]
        assert hit.cache_hit
        # No measurement cache was even consulted, and the scheduler
        # never ticked: the request was answered at admission.
        assert after == before
        assert svc.counters["batch_ticks"] == ticks_before

    def test_structural_hit_across_textual_variants(self, agent, texts):
        variant = "; a leading comment changes the text, not the module\n" + texts[0]
        with make_service(agent) as svc:
            first = svc.optimize(texts[0])
            second = svc.optimize(variant)
        assert second.cache_hit
        assert second.fingerprint == first.fingerprint
        assert second.report() == first.report()

    def test_cache_is_model_version_scoped(self, agent, texts):
        other = PosetRL(seed=99)
        with make_service(agent) as svc:
            svc.optimize(texts[0])
            svc.registry.register(
                other.agent.online, action_space="odg", version="v2"
            )
            svc.registry.activate("v2")
            result = svc.optimize(texts[0])
        assert not result.cache_hit
        assert result.model_version == "v2"

    def test_disabled_cache_never_hits(self, agent, texts):
        with make_service(agent, result_cache_size=None) as svc:
            svc.optimize(texts[0])
            result = svc.optimize(texts[0])
        assert not result.cache_hit
        assert svc.result_cache is None


class TestGuard:
    def test_oversized_module_rejected(self, agent, texts):
        with make_service(agent, max_instructions=5) as svc:
            result = svc.optimize(texts[0])
        assert result.status == "rejected"
        assert "oversized" in result.reason
        assert "limit of 5" in result.reason
        assert svc.counters["rejected"] == 1
        assert svc.error_counts == {"oversized": 1}

    def test_parse_error_rejected(self, agent):
        with make_service(agent) as svc:
            result = svc.optimize("define i32 @broken(")
            again = svc.optimize("define i32 @broken(")
        assert result.status == "rejected"
        assert "parse_error" in result.reason
        # the rejection memo answers the repeat without re-parsing
        assert again.status == "rejected"
        assert svc.error_counts["parse_error"] == 2

    def test_timeout_falls_back_to_oz(self, agent, modules, texts):
        with make_service(agent, request_timeout_s=0.0) as svc:
            result = svc.optimize(texts[0], timeout=30.0)
        assert result.status == "fallback"
        assert result.reason.startswith("timeout")
        assert svc.counters["fallbacks"] == 1
        assert svc.error_counts == {"timeout": 1}
        # the fallback really is the -Oz pipeline
        from repro.core.evaluate import optimize_with_oz
        oz = optimize_with_oz(modules[0], "x86-64")
        assert result.optimized_size == oz["size"]
        assert result.passes  # the stock sequence is reported

    def test_verifier_failure_falls_back(self, agent, texts, monkeypatch):
        calls = {"n": 0}

        def broken_verify(module):
            calls["n"] += 1
            raise VerificationError("injected: bad IR")

        monkeypatch.setattr(service_mod, "verify_module", broken_verify)
        with make_service(agent) as svc:
            result = svc.optimize(texts[0])
        assert calls["n"] == 1
        assert result.status == "fallback"
        assert "verify_error" in result.reason
        assert "injected" in result.reason
        assert svc.error_counts == {"verify_error": 1}

    def test_pass_failure_falls_back(self, agent, texts, monkeypatch):
        from repro.core.environment import PhaseOrderingEnv

        def exploding_step(self, action):
            raise RuntimeError("injected pass crash")

        monkeypatch.setattr(PhaseOrderingEnv, "step", exploding_step)
        with make_service(agent) as svc:
            result = svc.optimize(texts[0])
        assert result.status == "fallback"
        assert "pass_error" in result.reason
        assert "injected pass crash" in result.reason
        assert svc.error_counts == {"pass_error": 1}

    def test_verification_is_memoized_per_result(self, agent, texts,
                                                 monkeypatch):
        calls = {"n": 0}
        real_verify = service_mod.verify_module

        def counting_verify(module):
            calls["n"] += 1
            return real_verify(module)

        monkeypatch.setattr(service_mod, "verify_module", counting_verify)
        with make_service(agent, result_cache_size=None) as svc:
            svc.optimize(texts[0])
            svc.optimize(texts[0])
        # same module, same policy, same result fingerprint: one verify
        assert calls["n"] == 1


class TestLoadGenerator:
    def test_closed_loop_load(self, agent, modules, texts):
        corpus = [(f"m{i}", t) for i, t in enumerate(texts)]
        with make_service(agent, include_ir=False) as svc:
            report = run_load(svc, request_pool(corpus, 12), concurrency=4)
        assert report.requests == 12
        assert report.status_counts == {"ok": 12}
        # Each distinct module misses at least once; concurrent first
        # submissions of the same module may race past the cache, so the
        # exact hit count is not deterministic.
        assert 0 < report.cache_hits <= 12 - len(texts)
        assert report.throughput_rps > 0
        assert 0 < report.p50_ms <= report.p95_ms <= report.p99_ms
        payload = report.as_dict()
        assert payload["latency_ms"]["p99"] >= payload["latency_ms"]["p50"]

    def test_empty_pool_rejected(self, agent):
        with make_service(agent) as svc:
            with pytest.raises(ValueError):
                run_load(svc, [], concurrency=2)
