"""ResultCache: composite keys plus the coupled exact-text admission memo."""

import pytest

from repro.serving.cache import ResultCache, text_key


def fill(cache, n, version="v1", prefix="fp"):
    for i in range(n):
        cache.put(f"{prefix}{i}", version, {"i": i})


class TestResultCache:
    def test_composite_key_includes_model_version(self):
        cache = ResultCache(capacity=4)
        cache.put("fp", "v1", "old")
        cache.put("fp", "v2", "new")
        assert cache.get("fp", "v1") == "old"
        assert cache.get("fp", "v2") == "new"
        assert cache.get("fp", "v3") is None

    def test_text_memo_roundtrip(self):
        cache = ResultCache(capacity=4)
        key = text_key("define i32 @f() { ret i32 0 }")
        assert cache.lookup_text(key) is None
        cache.put("fp", "v1", "result")
        cache.memo_text(key, "fp")
        assert cache.lookup_text(key) == "fp"
        assert cache.memo_size == 1


class TestMemoEvictionCoupling:
    """Regression: memo entries must die with their fingerprint's results.

    Before the coupling, an evicted result left its text-memo entries
    behind — the memo grew without bound under a churn workload, and a
    later lookup could route through a fingerprint whose cached result
    no longer existed.
    """

    def test_memo_evicted_with_last_result_entry(self):
        cache = ResultCache(capacity=2)
        cache.put("fpA", "v1", "a")
        keys = [text_key(f"text-a{i}") for i in range(3)]
        for key in keys:
            cache.memo_text(key, "fpA")
        assert cache.memo_size == 3
        # Two more fingerprints evict fpA (capacity 2, LRU order).
        cache.put("fpB", "v1", "b")
        cache.put("fpC", "v1", "c")
        assert cache.get("fpA", "v1") is None
        for key in keys:
            assert cache.lookup_text(key) is None
        assert cache.memo_size == 0

    def test_memo_survives_while_any_version_remains(self):
        # fpA has entries under two model versions; evicting one of them
        # must not drop the memo — the fingerprint is still resolvable.
        cache = ResultCache(capacity=2)
        cache.put("fpA", "v1", "a1")
        cache.put("fpA", "v2", "a2")
        key = text_key("text-a")
        cache.memo_text(key, "fpA")
        cache.put("fpB", "v1", "b")  # evicts (fpA, v1), the LRU entry
        assert cache.get("fpA", "v1") is None
        assert cache.get("fpA", "v2") == "a2"
        assert cache.lookup_text(key) == "fpA"
        # Make (fpA, v2) the LRU entry again, then evict it.
        assert cache.get("fpB", "v1") == "b"
        cache.put("fpC", "v1", "c")  # evicts (fpA, v2): last entry
        assert cache.lookup_text(key) is None

    def test_memo_not_leaked_under_churn(self):
        cache = ResultCache(capacity=8)
        for i in range(1000):
            fp = f"fp{i}"
            cache.put(fp, "v1", i)
            cache.memo_text(text_key(f"text{i}"), fp)
        # Only the 8 live fingerprints may retain memo entries.
        assert len(cache) == 8
        assert cache.memo_size <= 8

    def test_put_same_key_twice_does_not_double_count(self):
        cache = ResultCache(capacity=2)
        cache.put("fpA", "v1", "a")
        cache.put("fpA", "v1", "a-updated")  # refresh, not a new entry
        key = text_key("text-a")
        cache.memo_text(key, "fpA")
        cache.put("fpB", "v1", "b")
        cache.put("fpC", "v1", "c")  # evicts fpA's only entry
        assert cache.lookup_text(key) is None


class TestMemoBounds:
    def test_memo_capacity_bounds_unbacked_entries(self):
        # Texts memoized before any result lands are bounded separately.
        cache = ResultCache(capacity=4, memo_capacity=10)
        for i in range(50):
            cache.memo_text(text_key(f"inflight{i}"), f"fp{i}")
        assert cache.memo_size <= 10

    def test_invalid_memo_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=4, memo_capacity=0)

    def test_re_memo_to_new_fingerprint(self):
        cache = ResultCache(capacity=4)
        key = text_key("text")
        cache.memo_text(key, "fpA")
        cache.memo_text(key, "fpB")
        assert cache.lookup_text(key) == "fpB"
        cache.put("fpA", "v1", "a")
        cache.put("fpB", "v1", "b")
        # Evict fpB: the memo entry (now pointing at fpB) goes with it.
        fill(cache, 4, prefix="filler")
        assert cache.lookup_text(key) is None

    def test_clear_drops_everything(self):
        cache = ResultCache(capacity=4)
        cache.put("fp", "v1", "r")
        cache.memo_text(text_key("t"), "fp")
        cache.clear()
        assert len(cache) == 0
        assert cache.memo_size == 0
        assert cache.get("fp", "v1") is None
