"""Serving observability integration: one request → full latency story.

The acceptance shape: a single served request must yield (a) one
``request`` span tree decomposing latency into queue/forward/passes/
measure/verify and (b) non-zero ``repro_serving_stage_seconds``
histograms for every stage, exportable as JSON and Prometheus text.
"""

import pytest

from repro import PosetRL
from repro import observability as obs
from repro.ir.printer import print_module
from repro.observability import prometheus_text
from repro.serving import OptimizationService
from repro.serving.service import LATENCY_STAGES
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def ir_text():
    module = generate_program(
        ProgramProfile(name="obs", seed=81, segments=2)
    )
    return print_module(module)


@pytest.fixture
def observed():
    registry, tracer = obs.enable()
    try:
        yield registry, tracer
    finally:
        obs.disable()


def _serve_one(ir_text, **kwargs):
    kwargs.setdefault("batch_window_s", 0.001)
    service = OptimizationService.from_agent(PosetRL(seed=0), **kwargs)
    with service:
        result = service.optimize(ir_text, name="obs-req")
    return service, result


class TestRequestDecomposition:
    def test_one_request_yields_the_span_tree(self, observed, ir_text):
        _, tracer = observed
        _, result = _serve_one(ir_text)
        assert result.status == "ok"
        (trace,) = [t for t in tracer.traces() if t.name == "request"]
        assert trace.tags["name"] == "obs-req"
        assert trace.tags["status"] == "ok"
        assert [c.name for c in trace.children] == list(LATENCY_STAGES)
        # Stage times are real and bounded by the end-to-end latency.
        stage_total = sum(c.duration_s for c in trace.children)
        assert all(c.duration_s >= 0.0 for c in trace.children)
        assert trace.duration_s > 0.0
        assert stage_total <= trace.duration_s * 1.05

    def test_stage_histograms_are_nonzero(self, observed, ir_text):
        registry, _ = observed
        _serve_one(ir_text)
        families = {f["name"]: f for f in registry.collect()}
        stage_family = families["repro_serving_stage_seconds"]
        seen = {s["labels"]["stage"]: s for s in stage_family["samples"]}
        assert set(seen) == set(LATENCY_STAGES)
        for stage, sample in seen.items():
            assert sample["count"] == 1, stage
            assert sample["sum"] >= 0.0
        # passes/measure actually did work for a fresh module.
        assert seen["passes"]["sum"] > 0.0
        assert seen["measure"]["sum"] > 0.0
        latency = families["repro_serving_latency_seconds"]["samples"]
        (ok_sample,) = [
            s for s in latency if s["labels"]["status"] == "ok"
        ]
        assert ok_sample["count"] == 1
        assert ok_sample["sum"] > 0.0

    def test_request_counters_and_prometheus_render(self, observed, ir_text):
        registry, _ = observed
        _serve_one(ir_text)
        assert registry.get_value(
            "repro_serving_requests_total", {"status": "ok"}
        ) == 1
        text = prometheus_text(registry)
        assert 'repro_serving_requests_total{status="ok"} 1' in text
        assert 'repro_serving_stage_seconds_bucket{le="+Inf",stage="verify"} 1' in text

    def test_batch_size_and_queue_depth_published(self, observed, ir_text):
        registry, _ = observed
        _serve_one(ir_text)
        families = {f["name"]: f for f in registry.collect()}
        (batch,) = families["repro_serving_batch_size"]["samples"]
        assert batch["count"] >= 1
        assert registry.get_value("repro_serving_queue_depth") == 0


class TestResultCacheAndFallback:
    def test_result_cache_hit_counter(self, observed, ir_text):
        registry, _ = observed
        kwargs = dict(batch_window_s=0.001, result_cache_size=16)
        service = OptimizationService.from_agent(PosetRL(seed=0), **kwargs)
        with service:
            service.optimize(ir_text)
            service.optimize(ir_text)  # identical → cache hit
        assert registry.get_value(
            "repro_serving_result_cache_hits_total"
        ) == 1
        assert registry.get_value(
            "repro_serving_requests_total", {"status": "ok"}
        ) == 2

    def test_rejected_requests_publish_guard_reason(self, observed):
        registry, _ = observed
        service = OptimizationService.from_agent(
            PosetRL(seed=0), batch_window_s=0.001
        )
        with service:
            result = service.optimize("not ir at all {{{")
        assert result.status == "rejected"
        assert registry.get_value(
            "repro_serving_requests_total", {"status": "rejected"}
        ) == 1
        # The reason tag is the coarse prefix, not the full message.
        collected = {
            tuple(sorted(s["labels"].items()))
            for f in registry.collect()
            if f["name"] == "repro_serving_guard_trips_total"
            for s in f["samples"]
        }
        assert collected, "guard trip counter should exist"


class TestDisabledPath:
    def test_service_built_while_disabled_stays_uninstrumented(self, ir_text):
        # Construction binds the no-op registry; enabling afterwards must
        # not retroactively instrument the service's own metrics. (Pass
        # and cache series are gated on the *live* registry and may still
        # appear — only the repro_serving_* layer is construction-bound.)
        service = OptimizationService.from_agent(
            PosetRL(seed=0), batch_window_s=0.001
        )
        assert service._observe is False
        registry, tracer = obs.enable()
        try:
            with service:
                result = service.optimize(ir_text)
            assert result.status == "ok"
            names = {f["name"] for f in registry.collect()}
            assert not any(n.startswith("repro_serving_") for n in names)
            assert not any(t.name == "request" for t in tracer.traces())
        finally:
            obs.disable()
