"""Tracer: nesting, ring-buffer truncation, hand-built spans, no-op path."""

import threading

import pytest

from repro.observability import NULL_TRACER, Span, Tracer
from repro.observability.tracing import NULL_SPAN


class TestNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        (trace,) = tracer.traces()
        assert trace.name == "root"
        assert [c.name for c in trace.children] == ["a", "b"]
        assert [c.name for c in trace.children[0].children] == ["a1"]
        # Only the root landed in the ring, not the inner spans.
        assert len(tracer.traces()) == 1

    def test_durations_are_positive_and_monotone(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("inner"):
                pass
        (trace,) = tracer.traces()
        inner = trace.find("inner")
        assert inner is not None
        assert 0.0 <= inner.duration_s <= trace.duration_s

    def test_tags_are_stringified_kwargs(self):
        tracer = Tracer()
        with tracer.span("root", phase="measure", n=3) as span:
            assert span.tags == {"phase": "measure", "n": 3}

    def test_exception_still_files_the_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                raise RuntimeError("boom")
        (trace,) = tracer.traces()
        assert trace.name == "root"

    def test_exception_unwinding_past_unexited_children(self):
        """A generator abandoned mid-span must not corrupt the stack."""
        tracer = Tracer()
        ctx = tracer.span("orphan")
        with tracer.span("root"):
            ctx.__enter__()  # never exited
        (trace,) = tracer.traces()
        assert trace.name == "root"
        # The next root-level span still lands as its own trace.
        with tracer.span("next"):
            pass
        assert [t.name for t in tracer.traces()] == ["root", "next"]


class TestRing:
    def test_ring_keeps_most_recent_and_counts_drops(self):
        tracer = Tracer(max_traces=3)
        for i in range(5):
            with tracer.span(f"t{i}"):
                pass
        assert [t.name for t in tracer.traces()] == ["t2", "t3", "t4"]
        assert tracer.dropped == 2

    def test_clear_resets_ring_and_drop_counter(self):
        tracer = Tracer(max_traces=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.clear()
        assert tracer.traces() == []
        assert tracer.dropped == 0

    def test_max_traces_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_traces=0)


class TestHandBuiltSpans:
    def test_record_publishes_a_synthesized_tree(self):
        tracer = Tracer()
        root = Span("request", duration_s=0.25, tags={"status": "ok"})
        root.child("queue", duration_s=0.1)
        root.child("verify", duration_s=0.02)
        tracer.record(root)
        (trace,) = tracer.traces()
        assert trace.find("queue").duration_s == 0.1
        assert trace.find("missing") is None

    def test_to_dict_round_trips_structure(self):
        root = Span("request", duration_s=0.5, tags={"name": "m"})
        root.child("stage", duration_s=0.1)
        d = root.to_dict()
        assert d["name"] == "request"
        assert d["tags"] == {"name": "m"}
        assert d["children"][0] == {"name": "stage", "duration_s": 0.1}

    def test_leaf_to_dict_omits_empty_fields(self):
        assert Span("x").to_dict() == {"name": "x", "duration_s": 0.0}


class TestThreadIsolation:
    def test_each_thread_gets_its_own_stack(self):
        tracer = Tracer()
        ready = threading.Barrier(2)

        def worker(name):
            with tracer.span(name):
                ready.wait(timeout=5)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Two roots, not one nested under the other.
        assert sorted(t.name for t in tracer.traces()) == ["w0", "w1"]
        assert all(not t.children for t in tracer.traces())


class TestNullTracer:
    def test_span_is_shared_noop(self):
        with NULL_TRACER.span("anything", tag="x") as span:
            assert span is NULL_SPAN
        assert NULL_TRACER.traces() == []
        assert NULL_TRACER.enabled is False

    def test_record_and_clear_are_noops(self):
        NULL_TRACER.record(Span("x"))
        NULL_TRACER.clear()
        assert NULL_TRACER.traces() == []
        assert NULL_TRACER.dropped == 0
