"""Merging per-process snapshots into one aggregated view."""

import json

import pytest

from repro.observability import (
    MetricRegistry,
    SNAPSHOT_SCHEMA,
    Tracer,
    merge_snapshots,
    prometheus_text,
    snapshot,
)
from repro.tools.stats import run as stats_run


def make_snapshot(hits, latency_obs, depth, with_trace=False):
    reg = MetricRegistry()
    reg.counter("repro_hits_total", "hits", labels={"cache": "size"}).inc(hits)
    reg.gauge("repro_depth", "queue depth").set(depth)
    hist = reg.histogram("repro_lat_seconds", "latency", buckets=(0.1, 1.0))
    for value in latency_obs:
        hist.observe(value)
    tracer = None
    if with_trace:
        tracer = Tracer()
        with tracer.span("request"):
            pass
    # Round-trip through JSON: merged inputs come from files in practice.
    return json.loads(json.dumps(snapshot(reg, tracer)))


def get_sample(merged, name):
    for family in merged["metrics"]:
        if family["name"] == name:
            return family["samples"][0]
    raise AssertionError(f"{name} not in merged snapshot")


class TestMergeSnapshots:
    def test_counters_sum_across_inputs(self):
        merged = merge_snapshots([
            make_snapshot(3, [], 1.0),
            make_snapshot(4, [], 2.0),
            make_snapshot(5, [], 3.0),
        ])
        assert merged["schema"] == SNAPSHOT_SCHEMA
        assert merged["merged_from"] == 3
        assert get_sample(merged, "repro_hits_total")["value"] == 12

    def test_gauges_sum_as_fleet_totals(self):
        merged = merge_snapshots([
            make_snapshot(0, [], 2.0), make_snapshot(0, [], 5.0),
        ])
        assert get_sample(merged, "repro_depth")["value"] == 7.0

    def test_histograms_merge_buckets_sum_count(self):
        merged = merge_snapshots([
            make_snapshot(0, [0.05, 0.5], 0),
            make_snapshot(0, [0.5, 2.0], 0),
        ])
        sample = get_sample(merged, "repro_lat_seconds")
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(3.05)
        assert sample["buckets"]["0.1"] == 1
        assert sample["buckets"]["1"] == 3
        assert sample["buckets"]["+Inf"] == 4
        # Bounds stay sorted so quantile math keeps working downstream.
        assert list(sample["buckets"]) == ["0.1", "1", "+Inf"]

    def test_samples_matched_on_labels(self):
        a = make_snapshot(3, [], 0)
        b = make_snapshot(4, [], 0)
        for family in b["metrics"]:
            if family["name"] == "repro_hits_total":
                family["samples"][0]["labels"] = {"cache": "mca"}
        merged = merge_snapshots([a, b])
        family = next(
            f for f in merged["metrics"] if f["name"] == "repro_hits_total"
        )
        by_label = {
            s["labels"]["cache"]: s["value"] for s in family["samples"]
        }
        assert by_label == {"size": 3, "mca": 4}

    def test_traces_concatenate_with_source_tag(self):
        merged = merge_snapshots([
            make_snapshot(0, [], 0, with_trace=True),
            make_snapshot(0, [], 0, with_trace=True),
        ])
        assert len(merged["traces"]) == 2
        assert [t["source"] for t in merged["traces"]] == [0, 1]

    def test_single_input_passes_through(self):
        snap = make_snapshot(3, [0.5], 1.0)
        assert merge_snapshots([snap]) == snap

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_snapshots([])

    def test_merged_snapshot_renders_as_prometheus(self):
        merged = merge_snapshots([
            make_snapshot(3, [0.5], 1.0), make_snapshot(4, [0.2], 2.0),
        ])
        text = prometheus_text(merged)
        assert 'repro_hits_total{cache="size"} 7' in text
        assert "repro_lat_seconds_count 2" in text


class TestStatsCliMerge:
    def test_multiple_files_merge(self, tmp_path, capsys):
        paths = []
        for i, hits in enumerate((3, 4)):
            path = tmp_path / f"shard{i}.json"
            path.write_text(json.dumps(make_snapshot(hits, [], 1.0)))
            paths.append(str(path))
        assert stats_run(paths + ["--prom"]) == 0
        out = capsys.readouterr().out
        assert 'repro_hits_total{cache="size"} 7' in out

    def test_missing_file_among_many_fails(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(make_snapshot(1, [], 0)))
        assert stats_run([str(path), str(tmp_path / "absent.json")]) == 1

    def test_follow_with_stdin_still_rejected(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(make_snapshot(1, [], 0)))
        assert stats_run([str(path), "-", "--follow"]) == 2
