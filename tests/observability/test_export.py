"""Exporters and the global enable/disable switch."""

import json

import pytest

from repro import observability as obs
from repro.observability import (
    MetricRegistry,
    NULL_REGISTRY,
    NULL_TRACER,
    SNAPSHOT_SCHEMA,
    Tracer,
    prometheus_text,
    snapshot,
    write_snapshot,
)


@pytest.fixture
def populated():
    reg = MetricRegistry()
    reg.counter("repro_hits_total", "hits", labels={"cache": "size"}).inc(4)
    reg.gauge("repro_depth", "queue depth").set(2.5)
    reg.histogram(
        "repro_latency_seconds", "latency", buckets=(0.1, 1.0)
    ).observe(0.3)
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("inner"):
            pass
    return reg, tracer


class TestSnapshot:
    def test_schema_and_sections(self, populated):
        reg, tracer = populated
        snap = snapshot(reg, tracer)
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["enabled"] is True
        assert {f["name"] for f in snap["metrics"]} == {
            "repro_hits_total", "repro_depth", "repro_latency_seconds",
        }
        (trace,) = snap["traces"]
        assert trace["name"] == "root"
        assert trace["children"][0]["name"] == "inner"
        assert snap["traces_dropped"] == 0

    def test_snapshot_is_json_serializable(self, populated):
        json.dumps(snapshot(*populated))

    def test_write_snapshot_round_trips(self, populated, tmp_path):
        path = tmp_path / "metrics.json"
        written = write_snapshot(str(path), *populated)
        assert json.loads(path.read_text())["metrics"] == json.loads(
            json.dumps(written["metrics"])
        )

    def test_null_snapshot_is_marked_disabled(self):
        snap = snapshot(NULL_REGISTRY, NULL_TRACER)
        assert snap["enabled"] is False
        assert snap["metrics"] == []
        assert snap["traces"] == []


class TestPrometheusText:
    def test_counter_and_gauge_lines(self, populated):
        reg, _ = populated
        text = prometheus_text(reg)
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{cache="size"} 4' in text
        assert "# HELP repro_depth queue depth" in text
        assert "repro_depth 2.5" in text

    def test_histogram_bucket_sum_count_triple(self, populated):
        reg, _ = populated
        lines = prometheus_text(reg).splitlines()
        assert 'repro_latency_seconds_bucket{le="0.1"} 0' in lines
        assert 'repro_latency_seconds_bucket{le="1"} 1' in lines
        assert 'repro_latency_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_latency_seconds_sum 0.3" in lines
        assert "repro_latency_seconds_count 1" in lines

    def test_accepts_snapshot_dict_and_family_list(self, populated):
        reg, tracer = populated
        from_registry = prometheus_text(reg)
        assert prometheus_text(snapshot(reg, tracer)) == from_registry
        assert prometheus_text(reg.collect()) == from_registry

    def test_label_values_are_escaped(self):
        reg = MetricRegistry()
        reg.counter("odd_total", labels={"p": 'a"b\\c\nd'}).inc()
        text = prometheus_text(reg)
        assert 'p="a\\"b\\\\c\\nd"' in text

    def test_integer_values_render_without_decimal(self):
        reg = MetricRegistry()
        reg.counter("n_total").inc(3)
        assert "n_total 3\n" in prometheus_text(reg)

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricRegistry()) == ""


class TestGlobalSwitch:
    def test_enable_disable_swap_the_singletons(self):
        assert obs.enabled() is False
        reg, tracer = obs.enable()
        try:
            assert obs.enabled() is True
            assert obs.get_registry() is reg
            assert obs.get_tracer() is tracer
        finally:
            obs.disable()
        assert obs.get_registry() is NULL_REGISTRY
        assert obs.get_tracer() is NULL_TRACER

    def test_enable_returns_a_fresh_registry_each_time(self):
        first, _ = obs.enable()
        try:
            first.counter("stale_total").inc()
            second, _ = obs.enable()
            assert second is not first
            assert second.get_value("stale_total") is None
        finally:
            obs.disable()

    def test_export_snapshot_uses_the_globals(self, tmp_path):
        reg, _ = obs.enable()
        try:
            reg.counter("live_total").inc(2)
            path = tmp_path / "snap.json"
            snap = obs.export_snapshot(str(path))
            assert snap["enabled"] is True
            on_disk = json.loads(path.read_text())
            (family,) = on_disk["metrics"]
            assert family["name"] == "live_total"
        finally:
            obs.disable()
