"""The ``repro.tools.stats`` renderer and CLI entry point."""

import json

import pytest

from repro.observability import MetricRegistry, Tracer, snapshot
from repro.tools.stats import (
    _histogram_quantile,
    render_snapshot,
    run,
)


def _snapshot():
    reg = MetricRegistry()
    reg.counter("repro_runs_total", labels={"pass": "dce"}).inc(7)
    reg.gauge("repro_depth").set(3)
    reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
    tracer = Tracer()
    with tracer.span("request", status="ok"):
        with tracer.span("verify"):
            pass
    return json.loads(json.dumps(snapshot(reg, tracer)))


class TestQuantiles:
    def test_interpolates_within_a_bucket(self):
        sample = {"buckets": {"1": 0, "2": 10, "+Inf": 10}, "count": 10}
        # All mass in (1, 2]: p50 interpolates to the middle.
        assert _histogram_quantile(sample, 0.5) == pytest.approx(1.5)
        assert _histogram_quantile(sample, 1.0) == pytest.approx(2.0)

    def test_inf_bucket_reports_last_finite_bound(self):
        sample = {"buckets": {"1": 0, "+Inf": 4}, "count": 4}
        assert _histogram_quantile(sample, 0.99) == pytest.approx(1.0)

    def test_empty_histogram_is_zero(self):
        assert _histogram_quantile({"buckets": {"+Inf": 0}, "count": 0}, 0.5) == 0.0


class TestRendering:
    def test_render_includes_metrics_and_traces(self):
        text = render_snapshot(_snapshot())
        assert "repro_runs_total{pass=dce}" in text
        assert "repro_lat_seconds" in text
        assert "request" in text
        assert "verify" in text

    def test_traces_zero_hides_traces(self):
        text = render_snapshot(_snapshot(), traces=0)
        assert "request" not in text

    def test_disabled_snapshot_is_labeled(self):
        text = render_snapshot({"enabled": False, "metrics": []})
        assert "disabled" in text
        assert "(no metrics recorded)" in text


class TestCli:
    def test_renders_file(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(_snapshot()))
        assert run([str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_runs_total{pass=dce}" in out

    def test_prom_mode_emits_exposition_text(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(_snapshot()))
        assert run([str(path), "--prom"]) == 0
        out = capsys.readouterr().out
        assert 'repro_runs_total{pass="dce"} 7' in out
        assert "# TYPE repro_lat_seconds histogram" in out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert run([str(tmp_path / "absent.json")]) == 1

    def test_corrupt_file_fails_without_follow(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{not json")
        assert run([str(path)]) == 1

    def test_follow_stdin_rejected(self):
        assert run(["-", "--follow"]) == 2
