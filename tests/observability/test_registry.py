"""Metric registry: instruments, labels, bucket edges, the no-op path."""

import threading

import pytest

from repro.observability import (
    DEFAULT_TIME_BUCKETS,
    MetricRegistry,
    NULL_REGISTRY,
)
from repro.observability.registry import NULL_INSTRUMENT


class TestCounters:
    def test_counter_starts_at_zero_and_accumulates(self):
        reg = MetricRegistry()
        c = reg.counter("requests_total", "requests")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert reg.get_value("requests_total") == 3.5

    def test_counter_rejects_negative_increments(self):
        c = MetricRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_same_name_same_labels_is_the_same_child(self):
        reg = MetricRegistry()
        a = reg.counter("hits_total", labels={"cache": "size"})
        b = reg.counter("hits_total", labels={"cache": "size"})
        assert a is b

    def test_label_order_is_irrelevant(self):
        reg = MetricRegistry()
        a = reg.counter("hits_total", labels={"a": "1", "b": "2"})
        b = reg.counter("hits_total", labels={"b": "2", "a": "1"})
        assert a is b

    def test_distinct_labels_are_distinct_children(self):
        reg = MetricRegistry()
        reg.counter("hits_total", labels={"cache": "size"}).inc(3)
        reg.counter("hits_total", labels={"cache": "mca"}).inc(7)
        assert reg.get_value("hits_total", {"cache": "size"}) == 3
        assert reg.get_value("hits_total", {"cache": "mca"}) == 7
        # The unlabeled child was never created.
        assert reg.get_value("hits_total") is None


class TestGauges:
    def test_set_inc_dec(self):
        g = MetricRegistry().gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_gauge_accepts_negative_values(self):
        g = MetricRegistry().gauge("delta")
        g.inc(-42)
        assert g.value == -42.0


class TestHistograms:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = MetricRegistry().histogram("lat", buckets=(1.0, 2.0))
        # Exactly on an edge counts in that bucket (le semantics).
        h.observe(1.0)
        h.observe(1.5)
        h.observe(2.0)
        h.observe(99.0)  # +Inf bucket
        assert h.counts == [1, 2, 1]
        assert h.cumulative_counts() == [1, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(103.5)

    def test_default_buckets_are_the_time_buckets(self):
        h = MetricRegistry().histogram("lat")
        assert h.buckets == DEFAULT_TIME_BUCKETS

    def test_collect_renders_cumulative_buckets_with_inf(self):
        reg = MetricRegistry()
        reg.histogram("lat", "latency", buckets=(0.5, 1.0)).observe(0.7)
        (family,) = reg.collect()
        assert family["name"] == "lat"
        assert family["type"] == "histogram"
        (sample,) = family["samples"]
        assert sample["buckets"] == {"0.5": 0, "1": 1, "+Inf": 1}
        assert sample["count"] == 1

    def test_get_value_is_none_for_histograms(self):
        reg = MetricRegistry()
        reg.histogram("lat").observe(0.1)
        assert reg.get_value("lat") is None


class TestFamilies:
    def test_kind_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("thing_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("thing_total")

    def test_collect_is_sorted_and_complete(self):
        reg = MetricRegistry()
        reg.gauge("b_gauge").set(1)
        reg.counter("a_total").inc()
        names = [f["name"] for f in reg.collect()]
        assert names == ["a_total", "b_gauge"]

    def test_get_value_absent_family_is_none(self):
        assert MetricRegistry().get_value("never_registered") is None


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricRegistry()
        c = reg.counter("n_total")
        h = reg.histogram("v", buckets=(0.5,))
        n, per_thread = 4, 2000

        def work():
            for _ in range(per_thread):
                c.inc()
                h.observe(0.1)

        threads = [threading.Thread(target=work) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n * per_thread
        assert h.count == n * per_thread
        assert h.cumulative_counts()[-1] == n * per_thread


class TestNullRegistry:
    def test_disabled_flags(self):
        assert MetricRegistry().enabled is True
        assert NULL_REGISTRY.enabled is False

    def test_every_instrument_is_the_shared_noop(self):
        assert NULL_REGISTRY.counter("a_total") is NULL_INSTRUMENT
        assert NULL_REGISTRY.gauge("b") is NULL_INSTRUMENT
        assert NULL_REGISTRY.histogram("c") is NULL_INSTRUMENT

    def test_noop_instrument_swallows_everything(self):
        i = NULL_REGISTRY.counter("a_total")
        i.inc()
        i.inc(-5)  # even invalid amounts: truly no-op
        i.set(3)
        i.observe(0.2)
        i.dec()
        assert i.value == 0.0
        assert NULL_REGISTRY.collect() == []
        assert NULL_REGISTRY.get_value("a_total") is None
