"""Layer instrumentation: passes, caches, training, fuzz campaigns.

Every test enables a fresh registry/tracer and restores the no-op
singletons afterwards — the gate for all instrumentation is the global
state in :mod:`repro.observability`.
"""

import json

import numpy as np
import pytest

from repro import observability as obs
from repro.caching import LRUCache
from repro.core.metrics import MetricsEngine
from repro.passes import PassManager
from repro.rl.dqn import AgentConfig, DQNAgent
from repro.testing.campaign import FuzzConfig, run_campaign
from repro.testing.oracle import DifferentialOracle
from repro.testing.generator import FuzzProfile, generate_fuzz_program
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture
def enabled():
    registry, tracer = obs.enable()
    try:
        yield registry, tracer
    finally:
        obs.disable()


def _module(seed=14):
    return generate_program(
        ProgramProfile(name="inst", seed=seed, segments=5)
    )


class TestPassPipeline:
    def test_run_publishes_per_pass_series(self, enabled):
        registry, _ = enabled
        pm = PassManager(["mem2reg", "dce"])
        pm.run(_module())
        for name in ("mem2reg", "dce"):
            labels = {"pass": name}
            assert registry.get_value("repro_pass_runs_total", labels) == 1
            assert registry.get_value(
                "repro_pass_seconds_total", labels
            ) > 0.0

    def test_run_produces_a_pipeline_trace(self, enabled):
        _, tracer = enabled
        PassManager(["mem2reg", "instcombine", "dce"]).run(_module())
        trace = tracer.traces()[-1]
        assert trace.name == "pipeline"
        assert [c.name for c in trace.children] == [
            "mem2reg", "instcombine", "dce",
        ]

    def test_disabled_run_keeps_stats_off(self):
        pm = PassManager(["dce"])
        pm.run(_module())
        assert pm.stats is None


class TestCacheMirror:
    def test_named_cache_mirrors_hits_misses_evictions(self, enabled):
        registry, _ = enabled
        cache = LRUCache(capacity=2, name="unit")
        labels = {"cache": "unit"}
        cache.get("a")                    # miss
        cache.put("a", 1)
        cache.get("a")                    # hit
        cache.put("b", 2)
        cache.put("c", 3)                 # evicts "a"
        assert registry.get_value("repro_cache_hits_total", labels) == 1
        assert registry.get_value("repro_cache_misses_total", labels) == 1
        assert registry.get_value("repro_cache_evictions_total", labels) == 1
        # The plain .stats view stays authoritative and in agreement.
        assert cache.stats.hits == 1
        assert cache.stats.evictions == 1

    def test_unnamed_cache_creates_no_series(self, enabled):
        registry, _ = enabled
        cache = LRUCache(capacity=2)
        cache.get("a")
        assert registry.collect() == []

    def test_cache_built_while_disabled_stays_uninstrumented(self):
        cache = LRUCache(capacity=2, name="early")
        registry, _ = obs.enable()
        try:
            cache.get("a")
            assert registry.collect() == []
        finally:
            obs.disable()

    def test_engine_caches_publish_under_their_names(self, enabled):
        registry, _ = enabled
        engine = MetricsEngine()
        module = _module()
        engine.measure(module)
        engine.measure(module)
        for name in ("size", "mca", "embedding"):
            assert registry.get_value(
                "repro_cache_hits_total", {"cache": name}
            ) >= 1


class TestTrainingMetrics:
    def test_train_step_publishes_loss_epsilon_replay(self, enabled):
        registry, _ = enabled
        config = AgentConfig(
            state_dim=4, num_actions=3, hidden=(8,),
            min_replay=8, batch_size=4, train_every=2, seed=3,
        )
        agent = DQNAgent(config)
        rng = np.random.RandomState(0)
        for _ in range(12):
            s, s2 = rng.randn(4), rng.randn(4)
            agent.remember(s, 1, 0.5, s2, False)
        assert agent.train_steps > 0
        assert registry.get_value("repro_train_updates_total") == (
            agent.train_steps
        )
        assert registry.get_value("repro_train_loss") == agent.last_loss
        assert registry.get_value("repro_train_replay_size") == len(
            agent.memory
        )
        eps = registry.get_value("repro_train_epsilon")
        assert eps is not None and 0.0 <= eps <= 1.0


class TestOracleInstrumentation:
    def test_check_publishes_pass_metrics_and_sequence_trace(self, enabled):
        registry, tracer = enabled
        module = generate_fuzz_program(FuzzProfile(name="f", seed=1))
        oracle = DifferentialOracle()
        result = oracle.check(module, ["mem2reg", "dce"])
        assert result.kind == "ok"
        assert registry.get_value(
            "repro_pass_runs_total", {"pass": "mem2reg"}
        ) == 1
        trace = tracer.traces()[-1]
        assert trace.name == "sequence"
        assert [c.name for c in trace.children] == ["mem2reg", "dce"]


class TestCampaignSnapshot:
    def test_snapshot_path_enables_and_writes_then_restores(self, tmp_path):
        path = tmp_path / "fuzz.json"
        assert obs.enabled() is False
        report = run_campaign(
            FuzzConfig(seeds=2, sequences="oz", snapshot_path=path)
        )
        assert report.seeds_run == 2
        assert obs.enabled() is False  # restored what it enabled
        snap = json.loads(path.read_text())
        names = {f["name"] for f in snap["metrics"]}
        assert "repro_pass_runs_total" in names
        assert snap["traces"], "campaign should record sequence traces"
