"""Evaluation plumbing: BenchmarkResult / SuiteSummary arithmetic."""

import pytest

from repro.core.evaluate import (
    BenchmarkResult,
    SuiteSummary,
    evaluate_benchmark,
    measure,
    optimize_with_oz,
)
from repro.core import make_action_space
from repro.workloads import ProgramProfile, generate_program


def result(name, oz_size, agent_size, oz_cycles=100.0, agent_cycles=100.0):
    return BenchmarkResult(
        name=name,
        oz_size=oz_size,
        agent_size=agent_size,
        oz_cycles=oz_cycles,
        agent_cycles=agent_cycles,
    )


class TestBenchmarkResult:
    def test_size_reduction_sign_convention(self):
        # Positive = agent smaller than Oz (paper's Table IV convention).
        assert result("x", 1000, 900).size_reduction_pct == pytest.approx(10.0)
        assert result("x", 1000, 1100).size_reduction_pct == pytest.approx(-10.0)

    def test_runtime_improvement_sign_convention(self):
        r = result("x", 1, 1, oz_cycles=200.0, agent_cycles=150.0)
        assert r.runtime_improvement_pct == pytest.approx(25.0)

    def test_zero_guards(self):
        r = BenchmarkResult("x", 0, 0, 0.0, 0.0)
        assert r.size_reduction_pct == 0.0
        assert r.runtime_improvement_pct == 0.0


class TestSuiteSummary:
    def test_min_avg_max(self):
        summary = SuiteSummary(
            suite="s",
            target="x86-64",
            results=[
                result("a", 100, 90),   # +10%
                result("b", 100, 105),  # -5%
                result("c", 100, 80),   # +20%
            ],
        )
        assert summary.min_size_reduction == pytest.approx(-5.0)
        assert summary.max_size_reduction == pytest.approx(20.0)
        assert summary.avg_size_reduction == pytest.approx(25.0 / 3)
        row = summary.row()
        assert row["min"] == -5.0 and row["max"] == 20.0

    def test_empty_suite(self):
        summary = SuiteSummary(suite="s", target="x86-64", results=[])
        assert summary.avg_size_reduction == 0.0
        assert summary.min_size_reduction == 0.0


def test_evaluate_benchmark_with_fixed_policy():
    module = generate_program(ProgramProfile(name="ev", seed=2, segments=5))
    space = make_action_space("odg")

    def predict(m):
        return [23, 7, 0]

    def apply_actions(m, actions):
        copy = m.clone()
        for a in actions:
            space.apply(a, copy)
        return copy

    r = evaluate_benchmark("ev", module, predict, apply_actions)
    assert r.actions == [23, 7, 0]
    assert r.oz_size > 0 and r.agent_size > 0
    # measure() agrees with the recorded numbers.
    again = measure(apply_actions(module, r.actions), "x86-64")
    assert again["size"] == r.agent_size


def test_optimize_with_oz_does_not_mutate_input():
    module = generate_program(ProgramProfile(name="oz", seed=3, segments=5))
    before = module.instruction_count
    optimize_with_oz(module, "x86-64")
    assert module.instruction_count == before
