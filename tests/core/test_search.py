"""Search/baseline policies."""

import pytest

from repro.core import make_action_space
from repro.core.search import (
    greedy_reward_policy,
    greedy_size_policy,
    greedy_throughput_policy,
    oz_decomposition_policy,
    random_policy,
    rollout_policy,
)
from repro.workloads import ProgramProfile, generate_program
from repro.ir import run_module, verify_module


@pytest.fixture(scope="module")
def module():
    return generate_program(ProgramProfile(name="srch", seed=8, segments=6))


def test_greedy_size_policy_shrinks(module):
    result = greedy_size_policy(module, steps=6)
    assert result.final_size < result.base_size
    assert result.size_reduction_from_base_pct > 0
    assert len(result.actions) == 6


def test_greedy_throughput_beats_size_on_cycles(module):
    tp = greedy_throughput_policy(module, steps=6)
    size = greedy_size_policy(module, steps=6)
    assert tp.final_cycles <= size.final_cycles
    assert size.final_size <= tp.final_size


def test_greedy_reward_policy_between_extremes(module):
    combined = greedy_reward_policy(module, steps=6)
    size_only = greedy_size_policy(module, steps=6)
    tp_only = greedy_throughput_policy(module, steps=6)
    # The combined optimum cannot beat either specialist on its own axis.
    assert combined.final_size >= size_only.final_size
    assert combined.final_cycles >= tp_only.final_cycles - 1e-9


def test_random_policy_deterministic_per_seed(module):
    a = random_policy(module, steps=5, seed=3)
    b = random_policy(module, steps=5, seed=3)
    assert a.actions == b.actions
    c = random_policy(module, steps=5, seed=4)
    assert a.actions != c.actions or a.final_size == c.final_size


def test_oz_decomposition_applies_every_action(module):
    space = make_action_space("manual")
    result = oz_decomposition_policy(module, space)
    assert result.actions == list(range(15))
    assert result.final_size < result.base_size


def test_policies_preserve_semantics(module):
    baseline, _ = run_module(module, "entry", [5])
    for policy in (greedy_size_policy, random_policy):
        result = policy(module, steps=4)
        verify_module(result.module)
        out, _ = run_module(result.module, "entry", [5])
        assert out == baseline


def test_rollout_policy_custom_chooser(module):
    calls = []

    def chooser(env):
        calls.append(env.steps)
        return 23

    result = rollout_policy(module, chooser, steps=3)
    assert result.actions == [23, 23, 23]
    assert calls == [0, 1, 2]
