"""LRU cache thread-safety under the serving scheduler.

Regression for an audit finding: ``OptimizationService`` shares one
``MetricsEngine`` (hence one set of LRU caches) between client threads
(admission fingerprinting) and the scheduler thread, but ``LRUCache``
mutates an ``OrderedDict`` plus plain-int counters with no
synchronization — ``move_to_end``/``popitem`` racing ``put`` can corrupt
the linked list or lose counter updates. The fix is an optional
caller-supplied lock (``LRUCache(lock=...)``), threaded through
``MetricsEngine(threadsafe=True)``, which the service now requests.
"""

import threading

from repro.caching import LRUCache
from repro.core.metrics import MetricsEngine
from repro.workloads import ProgramProfile, generate_program


def _hammer(cache, n_threads=4, ops=3000, key_space=64):
    """Drive one cache from several threads; returns per-thread errors."""
    errors = []
    start = threading.Barrier(n_threads)

    def work(tid):
        try:
            start.wait(timeout=10)
            for i in range(ops):
                key = (tid * i) % key_space
                if i % 3 == 0:
                    cache.put(key, (tid, i))
                else:
                    cache.get(key)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=work, args=(tid,)) for tid in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestLockedCache:
    def test_two_threads_hammering_one_locked_cache(self):
        cache = LRUCache(capacity=32, lock=threading.Lock())
        errors = _hammer(cache, n_threads=2)
        assert errors == []
        stats = cache.stats
        # No lost updates: every operation is accounted for.
        assert stats.hits + stats.misses == 2 * 3000 * 2 // 3
        assert stats.size <= 32
        # The LRU structure is still internally consistent.
        assert len(cache._data) == stats.size

    def test_many_threads_with_evictions(self):
        cache = LRUCache(capacity=8, lock=threading.Lock())
        errors = _hammer(cache, n_threads=4, key_space=256)
        assert errors == []
        assert cache.stats.size <= 8
        assert cache.stats.evictions > 0

    def test_lock_is_optional_and_default_off(self):
        cache = LRUCache(capacity=4)
        assert cache._lock is None
        cache.put("a", 1)
        assert cache.get("a") == 1


class TestThreadsafeEngine:
    def test_threadsafe_engine_shares_one_lock_across_caches(self):
        engine = MetricsEngine(threadsafe=True)
        caches = [
            engine.size_cache, engine.mca_cache, engine._embedding_cache,
            engine.transitions._cache,
        ]
        locks = {id(c._lock) for c in caches}
        assert None not in {c._lock for c in caches}
        assert len(locks) == 1

    def test_default_engine_is_lockless(self):
        engine = MetricsEngine()
        assert engine.size_cache._lock is None

    def test_threadsafe_survives_pickling(self):
        import pickle

        engine = MetricsEngine(threadsafe=True)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.size_cache._lock is not None

    def test_concurrent_measure_is_consistent(self):
        engine = MetricsEngine(threadsafe=True)
        modules = [
            generate_program(
                ProgramProfile(name=f"ts{i}", seed=40 + i, segments=3)
            )
            for i in range(4)
        ]
        expected = [engine.size(m).total_bytes for m in modules]
        fresh = MetricsEngine(threadsafe=True)
        errors = []

        def work(idx):
            try:
                for _ in range(20):
                    assert fresh.size(modules[idx]).total_bytes == (
                        expected[idx]
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_service_engines_request_threadsafe(self):
        """The serving layer must build thread-safe engines (the audit's
        actual fix site)."""
        from repro import PosetRL
        from repro.serving import OptimizationService

        service = OptimizationService.from_agent(
            PosetRL(seed=0), batch_window_s=0.001
        )
        engine = service._engine_for(service.registry.active.action_space_kind)
        assert engine.size_cache._lock is not None
