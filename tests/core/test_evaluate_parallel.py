"""Process-pool suite evaluation: parallel results must match serial."""

import pytest

from repro.core import PosetRL, evaluate_suite
from repro.core.presets import quick_config
from repro.workloads import load_suite


@pytest.fixture(scope="module")
def corpus():
    return load_suite("mibench")[:4]


@pytest.fixture(scope="module")
def agent(corpus):
    a = PosetRL(seed=0, agent_config=quick_config())
    a.train(corpus, episodes=2)
    return a


def test_parallel_matches_serial(agent, corpus):
    serial = agent.evaluate_suite("mibench", corpus)
    parallel = agent.evaluate_suite("mibench", corpus, max_workers=2)
    assert [r.name for r in parallel.results] == [
        r.name for r in serial.results
    ]
    for s, p in zip(serial.results, parallel.results):
        assert p.oz_size == s.oz_size
        assert p.agent_size == s.agent_size
        assert p.oz_cycles == s.oz_cycles
        assert p.agent_cycles == s.agent_cycles
        assert p.actions == s.actions


def test_function_form_parallel(agent, corpus):
    summary = evaluate_suite(
        "mibench",
        corpus,
        predict=agent.predict,
        apply_actions=agent.apply_actions,
        target=agent.target,
        max_workers=2,
    )
    assert len(summary.results) == len(corpus)
    assert summary.suite == "mibench"


def test_single_worker_is_serial(agent, corpus):
    one = agent.evaluate_suite("mibench", corpus[:2], max_workers=1)
    none = agent.evaluate_suite("mibench", corpus[:2])
    assert [r.agent_size for r in one.results] == [
        r.agent_size for r in none.results
    ]
