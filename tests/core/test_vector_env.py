"""VectorPhaseOrderingEnv: lockstep semantics, auto-reset, worker mode."""

import numpy as np
import pytest

from repro.core import MetricsEngine, PhaseOrderingEnv, make_action_space
from repro.core.vector_env import (
    EnvSpec,
    EpisodeRecord,
    VectorPhaseOrderingEnv,
)
from repro.workloads import ProgramProfile, generate_program

EPISODE_LENGTH = 4


@pytest.fixture(scope="module")
def corpus():
    return [
        (
            f"prog{i}",
            generate_program(ProgramProfile(name=f"prog{i}", seed=i, segments=2)),
        )
        for i in range(3)
    ]


def _make_vector(corpus, n_envs, seed=0, workers=0, cache=True):
    if workers:
        return VectorPhaseOrderingEnv(
            corpus,
            n_envs,
            rng=np.random.RandomState(seed),
            workers=workers,
            spec=EnvSpec(episode_length=EPISODE_LENGTH, cache=cache),
        )
    engine = MetricsEngine(enabled=cache)
    space = make_action_space("odg")

    def factory(module):
        return PhaseOrderingEnv(
            module,
            space,
            episode_length=EPISODE_LENGTH,
            metrics=engine,
        )

    return VectorPhaseOrderingEnv(
        corpus, n_envs, factory, rng=np.random.RandomState(seed)
    )


class TestLockstep:
    def test_reset_shapes(self, corpus):
        venv = _make_vector(corpus, 3)
        states = venv.reset()
        assert states.shape[0] == 3
        assert states.shape == venv.observations.shape
        assert venv.state_dim == states.shape[1]

    def test_step_shapes_and_infos(self, corpus):
        venv = _make_vector(corpus, 3)
        venv.reset()
        next_states, rewards, dones, infos = venv.step([1, 2, 3])
        assert next_states.shape == (3, venv.state_dim)
        assert rewards.shape == (3,) and dones.shape == (3,)
        assert len(infos) == 3
        assert [info.action for info in infos] == [1, 2, 3]
        assert not dones.any()

    def test_wrong_action_count_raises(self, corpus):
        venv = _make_vector(corpus, 2)
        venv.reset()
        with pytest.raises(ValueError):
            venv.step([0])

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            _make_vector([], 2)

    def test_nonpositive_n_envs_rejected(self, corpus):
        with pytest.raises(ValueError):
            _make_vector(corpus, 0)

    def test_matches_single_env_rollouts(self, corpus):
        """Each slot's trajectory equals a standalone env rollout on the
        module the shared RNG sampled for it."""
        n = 2
        venv = _make_vector(corpus, n, seed=5, cache=False)
        sample_rng = np.random.RandomState(5)
        venv.reset()
        expected_names = [
            corpus[int(sample_rng.randint(len(corpus)))][0] for _ in range(n)
        ]
        actions_per_step = [[1, 4], [7, 2], [3, 3], [5, 9]]
        slot_rewards = np.zeros(n)
        for step_actions in actions_per_step:
            _, rewards, dones, _ = venv.step(step_actions)
            slot_rewards += rewards
        assert dones.all()
        completed = venv.pop_completed()
        assert [rec.module for rec in completed] == expected_names

        by_name = dict(corpus)
        for slot, rec in enumerate(completed):
            env = PhaseOrderingEnv(
                by_name[rec.module],
                make_action_space("odg"),
                episode_length=EPISODE_LENGTH,
                cache=False,
            )
            slot_actions = [acts[slot] for acts in actions_per_step]
            infos = env.rollout(slot_actions)
            assert rec.actions == [info.action for info in infos]
            assert rec.final_size == env.last_size
            env2 = PhaseOrderingEnv(
                by_name[rec.module],
                make_action_space("odg"),
                episode_length=EPISODE_LENGTH,
                cache=False,
            )
            env2.reset()
            expected_total = 0.0
            for a in slot_actions:
                _, r, _, _ = env2.step(a)
                expected_total += r
            assert rec.total_reward == pytest.approx(expected_total, abs=1e-12)


class TestAutoReset:
    def test_lazy_reset_draws_on_observation(self, corpus):
        """The next module is sampled when observations are requested,
        not at the moment the episode finishes."""
        venv = _make_vector(corpus, 1, seed=2)
        venv.reset()

        def rng_state():
            # key array + stream position: the position is what a single
            # randint draw advances.
            state = venv._rng.get_state()
            return state[1].copy(), state[2]

        after_reset = rng_state()
        for _ in range(EPISODE_LENGTH):
            _, _, dones, _ = venv.step([0])
        assert dones.all()
        # done happened, but no draw yet
        current = rng_state()
        assert np.array_equal(current[0], after_reset[0])
        assert current[1] == after_reset[1]
        venv.observations
        assert rng_state()[1] != after_reset[1]

    def test_continuous_episodes(self, corpus):
        venv = _make_vector(corpus, 2, seed=3)
        venv.reset()
        episodes = 0
        for _ in range(3 * EPISODE_LENGTH):
            venv.observations
            _, _, dones, _ = venv.step([0, 1])
            episodes += len(venv.pop_completed())
        assert episodes == 6  # 2 slots x 3 episodes each

    def test_episode_record_fields(self, corpus):
        venv = _make_vector(corpus, 1, seed=1)
        venv.reset()
        for _ in range(EPISODE_LENGTH):
            venv.observations
            venv.step([2])
        (rec,) = venv.pop_completed()
        assert isinstance(rec, EpisodeRecord)
        assert rec.module in {name for name, _ in corpus}
        assert rec.actions == [2] * EPISODE_LENGTH
        assert rec.final_size > 0
        assert venv.pop_completed() == []  # drained


class TestWorkerMode:
    def test_worker_trajectories_match_in_process(self, corpus):
        """Subprocess stepping is bit-identical to in-process stepping:
        same modules sampled, same rewards, sizes and episode records."""
        n, steps = 3, 2 * EPISODE_LENGTH
        rng = np.random.RandomState(17)
        actions = [[int(rng.randint(34)) for _ in range(n)] for _ in range(steps)]

        def run(workers):
            venv = _make_vector(corpus, n, seed=4, workers=workers)
            try:
                venv.reset()
                rewards, sizes = [], []
                for step_actions in actions:
                    venv.observations
                    _, r, _, infos = venv.step(step_actions)
                    rewards.append(r.copy())
                    sizes.append([info.bin_size for info in infos])
                return rewards, sizes, venv.pop_completed()
            finally:
                venv.close()

        serial_r, serial_s, serial_done = run(workers=0)
        worker_r, worker_s, worker_done = run(workers=2)
        for a, b in zip(serial_r, worker_r):
            assert np.array_equal(a, b)
        assert serial_s == worker_s
        assert [(d.module, d.actions, d.final_size) for d in serial_done] == [
            (d.module, d.actions, d.final_size) for d in worker_done
        ]

    def test_worker_close_idempotent(self, corpus):
        venv = _make_vector(corpus, 2, workers=2)
        venv.reset()
        venv.close()
        venv.close()  # second close is a no-op
