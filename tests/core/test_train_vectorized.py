"""train_vectorized: serial equivalence at n_envs=1, batched sanity.

The load-bearing guarantee of the vectorized trainer is that it is not a
different algorithm: with ``n_envs=1`` and the same seed it must consume
the same RNG streams and produce exactly the serial loop's trajectory —
module sampling order, action sequences, replay contents, training
losses, and final network weights.
"""

import numpy as np
import pytest

from repro.core.agent_api import PosetRL, TrainThroughput
from repro.rl.dqn import AgentConfig
from repro.workloads import ProgramProfile, generate_program

EPISODE_LENGTH = 5


@pytest.fixture(scope="module")
def corpus():
    return [
        (
            f"prog{i}",
            generate_program(ProgramProfile(name=f"prog{i}", seed=i, segments=2)),
        )
        for i in range(3)
    ]


def _make_agent(seed=3):
    # Small min_replay so training updates (and their sampling RNG) are
    # exercised inside the comparison window.
    config = AgentConfig(min_replay=8, batch_size=4, train_every=2,
                        target_sync_every=16)
    return PosetRL(seed=seed, episode_length=EPISODE_LENGTH,
                   agent_config=config)


class TestSerialEquivalence:
    def test_n_envs_1_is_trajectory_identical(self, corpus):
        episodes = 6
        serial = _make_agent()
        serial_stats = serial.train(corpus, episodes=episodes)
        vec = _make_agent()
        vec_stats = vec.train_vectorized(corpus, episodes=episodes, n_envs=1)

        # Episode records: same modules, actions, rewards, sizes, epsilons.
        assert len(serial_stats) == len(vec_stats) == episodes
        for s, v in zip(serial_stats, vec_stats):
            assert s.episode == v.episode
            assert s.module == v.module
            assert s.actions == v.actions
            assert s.total_reward == v.total_reward
            assert s.final_size == v.final_size
            assert s.epsilon == v.epsilon

        # Replay contents: byte-identical, in insertion order.
        assert len(serial.agent.memory) == len(vec.agent.memory)
        for i in range(len(serial.agent.memory)):
            a, b = serial.agent.memory[i], vec.agent.memory[i]
            assert np.array_equal(a.state, b.state)
            assert np.array_equal(a.next_state, b.next_state)
            assert (a.action, a.reward, a.done) == (b.action, b.reward, b.done)

        # Learning: same number of updates, same final loss, identical
        # online-network weights (the strongest loss-history statement:
        # every intermediate loss fed the same Adam trajectory).
        assert serial.agent.train_steps == vec.agent.train_steps > 0
        assert serial.agent.last_loss == vec.agent.last_loss
        for wa, wb in zip(
            serial.agent.online.get_weights(), vec.agent.online.get_weights()
        ):
            assert np.array_equal(wa, wb)

        # RNG end states (key array AND stream position): the vectorized
        # loop made exactly the draws the serial loop made — no extra
        # module samples, no extra ε draws.
        for rng_a, rng_b in (
            (serial._rng, vec._rng),
            (serial.agent._rng, vec.agent._rng),
            (serial.agent.memory._rng, vec.agent.memory._rng),
        ):
            state_a, state_b = rng_a.get_state(), rng_b.get_state()
            assert np.array_equal(state_a[1], state_b[1])
            assert state_a[2] == state_b[2]

    def test_per_episode_loss_sequence_identical(self, corpus):
        """The loss visible after each episode matches serial training."""

        def capture(agent, into):
            def cb(record):
                into.append((record.total_reward, agent.agent.last_loss))
            return cb

        serial = _make_agent()
        serial_seq = []
        serial.train(corpus, episodes=4, callback=capture(serial, serial_seq))
        vec = _make_agent()
        vec_seq = []
        vec.train_vectorized(
            corpus, episodes=4, n_envs=1, callback=capture(vec, vec_seq)
        )
        assert serial_seq == vec_seq


class TestBatchedTraining:
    def test_n_envs_4_trains_and_reports(self, corpus):
        agent = _make_agent()
        stats = agent.train_vectorized(corpus, total_steps=40, n_envs=4)
        assert len(stats) == 40 // EPISODE_LENGTH
        assert all(len(s.actions) == EPISODE_LENGTH for s in stats)
        assert agent.agent.steps == 40
        report = agent.last_train_throughput
        assert isinstance(report, TrainThroughput)
        assert report.n_envs == 4 and report.total_steps == 40
        assert report.steps_per_second > 0
        assert report.episodes == len(stats)
        d = report.as_dict()
        assert d["episodes_per_second"] > 0

    def test_history_extended(self, corpus):
        agent = _make_agent()
        agent.train_vectorized(corpus, total_steps=10, n_envs=2)
        agent.train_vectorized(corpus, total_steps=10, n_envs=2)
        assert len(agent.train_history) == 4

    def test_worker_training_matches_in_process(self, corpus):
        a = _make_agent()
        sa = a.train_vectorized(corpus, total_steps=30, n_envs=3)
        b = _make_agent()
        sb = b.train_vectorized(corpus, total_steps=30, n_envs=3, workers=2)
        assert [(s.module, s.actions, s.final_size) for s in sa] == [
            (s.module, s.actions, s.final_size) for s in sb
        ]
        for wa, wb in zip(
            a.agent.online.get_weights(), b.agent.online.get_weights()
        ):
            assert np.array_equal(wa, wb)

    def test_argument_validation(self, corpus):
        agent = _make_agent()
        with pytest.raises(ValueError):
            agent.train_vectorized(corpus)  # neither budget given
        with pytest.raises(ValueError):
            agent.train_vectorized(corpus, total_steps=10, episodes=2)
        with pytest.raises(ValueError):
            agent.train_vectorized(corpus, total_steps=0)
        with pytest.raises(ValueError):
            agent.train_vectorized([], total_steps=10)
