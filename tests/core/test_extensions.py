"""Parameterized action spaces (the paper's future-work extension)."""

import pytest

from repro.core import PAPER_ODG_SUBSEQUENCES, PhaseOrderingEnv
from repro.core.extensions import (
    PARAMETERIZED_VARIANTS,
    make_parameterized_action_space,
)
from repro.ir import run_module, verify_module
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def space():
    return make_parameterized_action_space()


def test_expansion_counts(space):
    unroll_seqs = sum(
        1 for s in PAPER_ODG_SUBSEQUENCES if "loop-unroll" in s
    )
    inline_seqs = sum(
        1
        for s in PAPER_ODG_SUBSEQUENCES
        if "inline" in s and "loop-unroll" not in s
    )
    plain = len(PAPER_ODG_SUBSEQUENCES) - unroll_seqs - inline_seqs
    expected = (
        plain
        + unroll_seqs * len(PARAMETERIZED_VARIANTS["loop-unroll"])
        + inline_seqs * len(PARAMETERIZED_VARIANTS["inline"])
    )
    assert len(space) == expected
    assert len(space) > len(PAPER_ODG_SUBSEQUENCES)


def test_labels_name_parameters(space):
    assert any("[unroll=wide]" in l for l in space.labels)
    assert any("[inline=speed]" in l for l in space.labels)
    assert len(space.labels) == len(space)


def test_parameter_changes_outcome(space):
    """Wide vs tiny unroll on the same program must differ in size."""
    module = generate_program(
        ProgramProfile(name="param", seed=6, segments=6, w_compute_loop=3.0)
    )
    by_label = {l: i for i, l in enumerate(space.labels)}
    # Find a pair of sibling actions differing only in unroll budget.
    tiny = next(i for l, i in by_label.items() if l.endswith("[unroll=tiny]"))
    wide = by_label[space.labels[tiny].replace("tiny", "wide")]

    from repro.codegen import object_size

    a = module.clone()
    space.apply(tiny, a)
    b = module.clone()
    space.apply(wide, b)
    verify_module(a)
    verify_module(b)
    assert object_size(b, "x86-64").total_bytes >= object_size(
        a, "x86-64"
    ).total_bytes
    # Semantics identical either way.
    r0, _ = run_module(module, "entry", [5])
    assert run_module(a, "entry", [5])[0] == r0
    assert run_module(b, "entry", [5])[0] == r0


def test_env_works_with_parameterized_space(space):
    module = generate_program(ProgramProfile(name="penv", seed=7, segments=5))
    env = PhaseOrderingEnv(module, space, episode_length=4)
    state = env.reset()
    assert env.num_actions == len(space)
    total = 0.0
    for action in (0, len(space) // 2, len(space) - 1, 1):
        state, reward, done, info = env.step(action)
        total += reward
    verify_module(env.current)


def test_agent_trains_on_parameterized_space():
    from repro.core.agent_api import PosetRL
    from repro.core.presets import quick_config
    from repro.workloads import load_suite

    agent = PosetRL(action_space="odg", seed=0, agent_config=quick_config())
    # Swap in the parameterized space (num_actions must match).
    space = make_parameterized_action_space()
    from dataclasses import replace

    agent.actions = space
    agent.agent.config = replace(agent.agent.config, num_actions=len(space))
    from repro.rl import DoubleDQNAgent

    agent.agent = DoubleDQNAgent(agent.agent.config)
    stats = agent.train(load_suite("llvm_test_suite")[:3], episodes=4)
    assert len(stats) == 4
    module = load_suite("mibench")[0][1]
    actions = agent.predict(module)
    assert all(0 <= a < len(space) for a in actions)
