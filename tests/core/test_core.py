"""POSET-RL core: sub-sequence tables, ODG, rewards, environment."""

import numpy as np
import pytest

from repro.core import (
    ALPHA,
    BETA,
    DEFAULT_CRITICAL_DEGREE,
    MANUAL_SUBSEQUENCES,
    OZ_PASS_SEQUENCE,
    OzDependenceGraph,
    PAPER_ODG_SUBSEQUENCES,
    PhaseOrderingEnv,
    RewardWeights,
    binsize_reward,
    combined_reward,
    make_action_space,
    throughput_reward,
)
from repro.core.environment import ActionSpace
from repro.passes import PASS_REGISTRY
from repro.workloads import ProgramProfile, generate_program


class TestSubsequenceTables:
    def test_table_sizes(self):
        assert len(MANUAL_SUBSEQUENCES) == 15  # Table II
        assert len(PAPER_ODG_SUBSEQUENCES) == 34  # Table III

    def test_all_passes_registered(self):
        for table in (MANUAL_SUBSEQUENCES, PAPER_ODG_SUBSEQUENCES):
            for seq in table:
                for name in seq:
                    assert name in PASS_REGISTRY, name

    def test_manual_subsequences_cover_oz_passes(self):
        covered = {p for seq in MANUAL_SUBSEQUENCES for p in seq}
        assert covered == set(OZ_PASS_SEQUENCE)

    def test_odg_subsequences_start_at_critical_nodes(self):
        critical = {"simplifycfg", "instcombine", "loop-simplify"}
        for seq in PAPER_ODG_SUBSEQUENCES:
            assert seq[0] in critical

    def test_manual_group7_matches_paper(self):
        # Table II row 7 (the rotate/licm/unswitch group).
        assert MANUAL_SUBSEQUENCES[6] == [
            "loop-simplify", "lcssa", "loop-rotate", "licm",
            "loop-unswitch", "simplifycfg", "instcombine",
        ]


class TestODG:
    def test_summary_matches_paper(self):
        """Fig. 4 / Sec. IV-B: simplifycfg(11), instcombine(10),
        loop-simplify(8) are the k>=8 critical nodes; 54 unique passes."""
        odg = OzDependenceGraph()
        summary = odg.summary()
        assert summary["unique_passes"] == 54
        assert summary["critical_nodes"] == {
            "simplifycfg": 11,
            "instcombine": 10,
            "loop-simplify": 8,
        }
        assert DEFAULT_CRITICAL_DEGREE == 8

    def test_edges_follow_sequence_adjacency(self):
        odg = OzDependenceGraph()
        for a, b in zip(OZ_PASS_SEQUENCE, OZ_PASS_SEQUENCE[1:]):
            if a != b:
                assert odg.graph.has_edge(a, b)

    def test_generates_34_walks(self):
        odg = OzDependenceGraph()
        walks = odg.generate_subsequences()
        assert len(walks) == 34

    def test_walks_respect_graph_edges(self):
        odg = OzDependenceGraph()
        for walk in odg.generate_subsequences():
            for a, b in zip(walk, walk[1:]):
                assert odg.graph.has_edge(a, b)

    def test_walks_overlap_paper_table(self):
        """28 of the paper's 34 rows are reproduced verbatim; the other 6
        differ only in the paper's inconsistent handling of terminal
        nodes (trailing -barrier / -simplifycfg) — see DESIGN.md."""
        odg = OzDependenceGraph()
        generated = {tuple(w) for w in odg.generate_subsequences()}
        paper = {tuple(s) for s in PAPER_ODG_SUBSEQUENCES}
        assert len(generated & paper) == 28

        def strip_tail(seq):
            if seq[-1] in ("barrier", "simplifycfg") and len(seq) > 1:
                return tuple(seq[:-1])
            return tuple(seq)

        assert {strip_tail(s) for s in paper} <= {
            strip_tail(g) for g in generated
        }

    def test_higher_threshold_fewer_critical_nodes(self):
        odg = OzDependenceGraph(critical_degree=10)
        assert odg.critical_nodes() == ["simplifycfg", "instcombine"]

    def test_custom_sequence(self):
        odg = OzDependenceGraph(["a", "b", "a", "c", "a", "b"], critical_degree=3)
        assert odg.critical_nodes() == ["a"]


class TestRewards:
    def test_paper_weights(self):
        assert ALPHA == 10.0 and BETA == 5.0

    def test_binsize_reward_sign(self):
        # Shrinking is positive (Eqn 2).
        assert binsize_reward(last=1000, current=900, base=2000) == pytest.approx(0.05)
        assert binsize_reward(last=900, current=1000, base=2000) == pytest.approx(-0.05)

    def test_throughput_reward_sign(self):
        # Speeding up is positive (Eqn 3).
        assert throughput_reward(last=10, current=12, base=20) == pytest.approx(0.1)
        assert throughput_reward(last=12, current=10, base=20) == pytest.approx(-0.1)

    def test_combined_weighting(self):
        r = combined_reward(1000, 900, 1000, 10, 10, 10)
        assert r == pytest.approx(10 * 0.1)
        r2 = combined_reward(1000, 1000, 1000, 10, 11, 10)
        assert r2 == pytest.approx(5 * 0.1)

    def test_zero_base_guard(self):
        assert binsize_reward(1, 2, 0) == 0.0
        assert throughput_reward(1, 2, 0) == 0.0

    def test_custom_weights(self):
        w = RewardWeights(alpha=1.0, beta=0.0)
        r = combined_reward(100, 90, 100, 1, 99, 1, w)
        assert r == pytest.approx(0.1)


@pytest.fixture(scope="module")
def env_module():
    return generate_program(ProgramProfile(name="env", seed=21, segments=5))


class TestEnvironment:
    def test_reset_returns_state(self, env_module):
        env = PhaseOrderingEnv(env_module)
        state = env.reset()
        assert state.shape == (300,)
        assert env.num_actions == 34
        assert env.episode_length == 15  # Table VI sequences are 15 long

    def test_step_returns_reward_and_done(self, env_module):
        env = PhaseOrderingEnv(env_module, episode_length=3)
        env.reset()
        for i in range(3):
            state, reward, done, info = env.step(0)
            assert isinstance(reward, float)
            assert info.passes == PAPER_ODG_SUBSEQUENCES[0]
        assert done

    def test_shrinking_action_gets_positive_reward(self, env_module):
        env = PhaseOrderingEnv(env_module)
        env.reset()
        # Sub-sequence 24 (index 23) is the big inline/simplify group.
        rewards = []
        for action in (23, 7, 0):
            _, reward, _, info = env.step(action)
            rewards.append(reward)
        assert sum(rewards) > 0
        assert env.last_size < env.base_size

    def test_reward_uses_baseline_denominator(self, env_module):
        env = PhaseOrderingEnv(env_module)
        env.reset()
        _, _, _, info = env.step(23)
        expected = (env.base_size - info.bin_size) / env.base_size
        assert info.size_reward == pytest.approx(expected)

    def test_reset_restores_baseline(self, env_module):
        env = PhaseOrderingEnv(env_module)
        env.reset()
        env.step(23)
        size_after = env.last_size
        env.reset()
        assert env.last_size == env.base_size
        assert env.steps == 0
        # Original module untouched throughout.
        assert env.original.instruction_count == env_module.instruction_count

    def test_invalid_action_raises(self, env_module):
        env = PhaseOrderingEnv(env_module)
        env.reset()
        with pytest.raises(IndexError):
            env.step(99)

    def test_rollout_helper(self, env_module):
        env = PhaseOrderingEnv(env_module, episode_length=4)
        infos = env.rollout([0, 1, 2, 3])
        assert len(infos) == 4
        assert env.steps == 4

    def test_manual_action_space(self, env_module):
        env = PhaseOrderingEnv(env_module, make_action_space("manual"))
        assert env.num_actions == 15

    def test_unknown_action_space_kind(self):
        with pytest.raises(ValueError):
            make_action_space("bogus")

    def test_action_space_passes_for(self):
        space = ActionSpace([["simplifycfg"], ["dce", "gvn"]])
        assert len(space) == 2
        assert space.passes_for(1) == ["dce", "gvn"]
