"""Environment edge behaviours not covered by the main core tests."""

import numpy as np
import pytest

from repro.core import (
    ActionSpace,
    PhaseOrderingEnv,
    RewardWeights,
    make_action_space,
)
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def module():
    return generate_program(ProgramProfile(name="envx", seed=41, segments=5))


def test_cumulative_reward_telescopes(module):
    """Σ size-rewards over an episode equals the total normalized size
    drop — Eqn (2) is a telescoping sum."""
    env = PhaseOrderingEnv(module, episode_length=6)
    env.reset()
    total_size_reward = 0.0
    for action in (23, 7, 8, 0, 30, 19):
        _, _, _, info = env.step(action)
        total_size_reward += info.size_reward
    expected = (env.base_size - env.last_size) / env.base_size
    assert total_size_reward == pytest.approx(expected)


def test_history_records_every_step(module):
    env = PhaseOrderingEnv(module, episode_length=3)
    env.reset()
    for action in (1, 2, 3):
        env.step(action)
    assert [i.action for i in env.history] == [1, 2, 3]
    env.reset()
    assert env.history == []


def test_target_changes_measurements(module):
    x86 = PhaseOrderingEnv(module, target="x86-64")
    arm = PhaseOrderingEnv(module, target="aarch64")
    assert x86.base_size != arm.base_size or (
        x86.base_throughput != arm.base_throughput
    )


def test_states_differ_between_programs():
    a = generate_program(ProgramProfile(name="pa", seed=50, segments=4))
    b = generate_program(ProgramProfile(name="pb", seed=51, segments=8))
    ea = PhaseOrderingEnv(a).reset()
    eb = PhaseOrderingEnv(b).reset()
    assert not np.allclose(ea, eb)


def test_custom_weights_scale_reward(module):
    heavy = PhaseOrderingEnv(
        module, weights=RewardWeights(alpha=20.0, beta=10.0)
    )
    light = PhaseOrderingEnv(
        module, weights=RewardWeights(alpha=10.0, beta=5.0)
    )
    heavy.reset()
    light.reset()
    _, r_heavy, _, _ = heavy.step(23)
    _, r_light, _, _ = light.step(23)
    assert r_heavy == pytest.approx(2.0 * r_light)


def test_single_action_space(module):
    env = PhaseOrderingEnv(module, ActionSpace([["simplifycfg", "dce"]]))
    env.reset()
    assert env.num_actions == 1
    _, _, done, info = env.step(0)
    assert info.passes == ["simplifycfg", "dce"]


def test_original_module_never_mutates(module):
    text_before = None
    from repro.ir import print_module

    text_before = print_module(module)
    env = PhaseOrderingEnv(module, episode_length=4)
    env.reset()
    for action in (23, 7, 18, 8):
        env.step(action)
    assert print_module(module) == text_before
