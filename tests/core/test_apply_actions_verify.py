"""PosetRL.apply_actions verifies its result and names the bad action."""

import pytest

from repro import PosetRL
from repro.ir.verifier import verify_module
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture()
def module():
    return generate_program(ProgramProfile(name="av", seed=90, segments=2))


@pytest.fixture()
def agent():
    return PosetRL(seed=0)


def _drop_a_terminator(mod):
    for function in mod.functions:
        for block in function.blocks:
            if block.instructions and block.instructions[-1].is_terminator:
                block.instructions.pop()
                return
    raise AssertionError("no terminator found to drop")


def test_happy_path_returns_verified_module(agent, module):
    result = agent.apply_actions(module, [0, 1, 2])
    verify_module(result)  # does not raise
    assert result is not module  # original untouched
    assert module.instruction_count > 0


def test_broken_action_is_named(agent, module, monkeypatch):
    """If a pass breaks an IR invariant, the error names the offending
    action index and its pass sub-sequence."""
    real_apply = agent.actions.apply

    def sabotaged_apply(action, mod):
        changed = real_apply(action, mod)
        if action == 7:
            _drop_a_terminator(mod)
        return changed

    monkeypatch.setattr(agent.actions, "apply", sabotaged_apply)
    with pytest.raises(ValueError) as excinfo:
        agent.apply_actions(module, [0, 7, 2])
    message = str(excinfo.value)
    assert "action 1" in message
    assert "id 7" in message
    for name in agent.actions.passes_for(7):
        assert name in message
    assert "invalid IR" in message


def test_verify_false_skips_the_check(agent, module, monkeypatch):
    real_apply = agent.actions.apply

    def sabotaged_apply(action, mod):
        changed = real_apply(action, mod)
        _drop_a_terminator(mod)
        return changed

    monkeypatch.setattr(agent.actions, "apply", sabotaged_apply)
    result = agent.apply_actions(module, [0], verify=False)
    assert result is not module


def test_original_module_is_never_mutated(agent, module):
    before = module.instruction_count
    agent.apply_actions(module, list(range(5)))
    assert module.instruction_count == before
