"""Incremental metrics engine: cached == uncached, hit accounting,
no-op visibility, and the shared-default-weights fix."""

import numpy as np
import pytest

from repro.core import (
    MetricsEngine,
    PhaseOrderingEnv,
    PosetRL,
    RewardWeights,
)
from repro.core.metrics import Transition, TransitionCache
from repro.caching import LRUCache
from repro.workloads import ProgramProfile, generate_program, load_suite

EVAL_SUITES = ("mibench", "spec2006", "spec2017")


def fixed_actions(env, seed, length=15):
    rng = np.random.RandomState(seed)
    return [int(rng.randint(env.num_actions)) for _ in range(length)]


@pytest.fixture(scope="module")
def module():
    return generate_program(ProgramProfile(name="mc", seed=23, segments=6))


class TestEquivalence:
    @pytest.mark.parametrize("suite", EVAL_SUITES)
    def test_cached_rollout_bit_identical_on_suite(self, suite):
        """Cached env must reproduce the uncached metrics exactly on every
        workload-suite module (sizes, throughputs and state embeddings)."""
        for seed_offset, (name, mod) in enumerate(load_suite(suite)):
            cached = PhaseOrderingEnv(mod, cache=True)
            uncached = PhaseOrderingEnv(mod, cache=False)
            actions = fixed_actions(cached, seed=seed_offset)

            assert cached.base_size == uncached.base_size
            assert cached.base_throughput == uncached.base_throughput
            sc = cached.reset()
            su = uncached.reset()
            assert np.array_equal(sc, su), f"{suite}/{name}: reset state"
            for action in actions:
                state_c, reward_c, _, info_c = cached.step(action)
                state_u, reward_u, _, info_u = uncached.step(action)
                assert info_c.bin_size == info_u.bin_size, f"{suite}/{name}"
                assert info_c.throughput == info_u.throughput, f"{suite}/{name}"
                assert reward_c == reward_u, f"{suite}/{name}"
                assert np.array_equal(state_c, state_u), f"{suite}/{name}"

    def test_repeated_episode_stays_identical(self, module):
        """Transition-cache replay (episode 2+) must serve the exact
        metrics the first episode computed."""
        cached = PhaseOrderingEnv(module, cache=True)
        uncached = PhaseOrderingEnv(module, cache=False)
        # Distinct actions ⇒ distinct transition keys ⇒ a miss-only first
        # episode and a hit-only replay.
        actions = list(np.random.RandomState(99).permutation(cached.num_actions)[:15])
        first = cached.rollout(actions)
        assert not any(i.cache_hit for i in first)
        replay = cached.rollout(actions)
        assert all(i.cache_hit for i in replay)
        baseline = uncached.rollout(actions)
        for a, b in zip(replay, baseline):
            assert a.bin_size == b.bin_size
            assert a.throughput == b.throughput

    def test_shared_engine_across_envs(self, module):
        """PosetRL-style sharing: one engine, many envs over the same
        module — second env's episode is served from the cache."""
        engine = MetricsEngine()
        env1 = PhaseOrderingEnv(module, metrics=engine)
        actions = fixed_actions(env1, seed=3)
        env1.rollout(actions)
        env2 = PhaseOrderingEnv(module, metrics=engine)
        infos = env2.rollout(actions)
        assert all(i.cache_hit for i in infos)


class TestTransitionAccounting:
    def test_hit_miss_counters(self, module):
        env = PhaseOrderingEnv(module, cache=True)
        actions = list(range(10))  # distinct ⇒ distinct transition keys
        env.rollout(actions)
        stats = env.cache_stats()["transitions"]
        assert stats["misses"] == 10
        assert stats["hits"] == 0
        env.rollout(actions)
        stats = env.cache_stats()["transitions"]
        assert stats["hits"] == 10
        assert stats["misses"] == 10

    def test_prefix_sharing_between_sequences(self, module):
        """Two action sequences sharing a prefix share cached transitions."""
        env = PhaseOrderingEnv(module, cache=True)
        env.rollout([1, 2, 3, 4])
        before = env.cache_stats()["transitions"]
        env.rollout([1, 2, 3, 7])
        after = env.cache_stats()["transitions"]
        assert after["hits"] - before["hits"] == 3
        assert after["misses"] - before["misses"] == 1

    def test_eviction_counting(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.stats.evictions == 1
        assert "a" not in cache and "c" in cache

    def test_transition_cache_capacity(self):
        tc = TransitionCache(capacity=1)
        t = Transition(
            result_fingerprint="x", changed=False, size=1, throughput=1.0,
            cycles=1.0, embedding=np.zeros(4), module=None,
        )
        tc.put("fp1", 0, t)
        tc.put("fp2", 0, t)
        assert len(tc) == 1
        assert tc.stats.evictions == 1

    def test_function_cache_hits_on_partial_change(self, module):
        """A step that leaves most functions untouched re-measures only
        the changed ones: per-function caches must show hits."""
        engine = MetricsEngine()
        env = PhaseOrderingEnv(module, metrics=engine)
        env.reset()
        for action in fixed_actions(env, seed=13, length=8):
            env.step(action)
        stats = engine.stats()
        assert stats["size"]["hits"] > 0
        assert stats["mca"]["hits"] > 0
        assert stats["embedding"]["hits"] > 0


class TestNoOpVisibility:
    def test_noop_actions_recorded_in_stepinfo(self, module):
        """Re-applying the same subsequence at a fixpoint is a no-op and
        must be visible as ``changed=False`` with unchanged metrics."""
        env = PhaseOrderingEnv(module, cache=True)
        env.reset()
        action = 0
        # Drive to the action's fixpoint, then one more application.
        last = None
        for _ in range(6):
            _, _, _, info = env.step(action)
            last = info
        assert last is not None and not last.changed
        assert last.bin_size == env.last_size

    def test_noop_has_zero_reward(self, module):
        env = PhaseOrderingEnv(module, cache=True, episode_length=8)
        env.reset()
        rewards = []
        for _ in range(8):
            _, reward, _, info = env.step(2)
            rewards.append((reward, info.changed))
        # Once the fixpoint is reached every later step is a free no-op.
        tail = [r for r, changed in rewards if not changed]
        assert all(r == 0.0 for r in tail)

    def test_uncached_env_also_records_changed_flag(self, module):
        env = PhaseOrderingEnv(module, cache=False)
        env.reset()
        for _ in range(6):
            _, _, _, info = env.step(0)
        assert info.changed is False


class TestWeightsDefault:
    def test_env_weights_not_shared_between_instances(self, module):
        a = PhaseOrderingEnv(module)
        b = PhaseOrderingEnv(module)
        assert a.weights is not b.weights
        assert a.weights == RewardWeights()

    def test_agent_weights_not_shared_between_instances(self):
        a = PosetRL(seed=0)
        b = PosetRL(seed=1)
        assert a.weights is not b.weights

    def test_explicit_weights_still_respected(self, module):
        w = RewardWeights(alpha=1.0, beta=0.0)
        env = PhaseOrderingEnv(module, weights=w)
        assert env.weights is w


class TestEngineLifecycle:
    def test_clear_resets_counters_and_contents(self, module):
        engine = MetricsEngine()
        env = PhaseOrderingEnv(module, metrics=engine)
        env.rollout([0, 1, 2])
        assert len(engine.transitions) > 0
        engine.clear()
        assert len(engine.transitions) == 0
        assert engine.stats()["size"]["hits"] == 0

    def test_disabled_engine_reports_disabled(self, module):
        env = PhaseOrderingEnv(module, cache=False)
        assert env.cache_stats() == {"enabled": {"enabled": 0.0}}

    def test_pickling_drops_cache_contents(self, module):
        import pickle

        agent = PosetRL(seed=0)
        env = agent.make_env(module)
        env.rollout([0, 1, 2, 3])
        assert len(agent.metrics.transitions) > 0
        restored = pickle.loads(pickle.dumps(agent))
        assert restored.metrics.enabled
        assert len(restored.metrics.transitions) == 0
