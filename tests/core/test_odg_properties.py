"""Property-based checks of ODG construction over arbitrary sequences."""

from hypothesis import given, settings, strategies as st

from repro.core import OzDependenceGraph

PASS_NAMES = [f"p{i}" for i in range(12)]


@given(
    sequence=st.lists(st.sampled_from(PASS_NAMES), min_size=2, max_size=60),
    k=st.integers(1, 10),
)
@settings(max_examples=60, deadline=None)
def test_walks_always_follow_edges(sequence, k):
    odg = OzDependenceGraph(sequence, critical_degree=k)
    for walk in odg.generate_subsequences(max_walks=200):
        for a, b in zip(walk, walk[1:]):
            assert odg.graph.has_edge(a, b)


@given(
    sequence=st.lists(st.sampled_from(PASS_NAMES), min_size=2, max_size=60),
    k=st.integers(1, 10),
)
@settings(max_examples=60, deadline=None)
def test_walks_start_at_critical_nodes(sequence, k):
    odg = OzDependenceGraph(sequence, critical_degree=k)
    critical = set(odg.critical_nodes())
    for walk in odg.generate_subsequences(max_walks=200):
        assert walk[0] in critical


@given(sequence=st.lists(st.sampled_from(PASS_NAMES), min_size=2, max_size=60))
@settings(max_examples=60, deadline=None)
def test_nodes_are_unique_sequence_elements(sequence):
    odg = OzDependenceGraph(sequence)
    assert set(odg.graph.nodes) == set(sequence)
    # Deduplicated edges: every edge corresponds to some adjacency.
    adjacent = {
        (a, b) for a, b in zip(sequence, sequence[1:]) if a != b
    }
    assert set(odg.graph.edges) == adjacent


@given(
    sequence=st.lists(st.sampled_from(PASS_NAMES), min_size=2, max_size=40),
    k=st.integers(1, 8),
)
@settings(max_examples=40, deadline=None)
def test_interior_nodes_are_not_critical(sequence, k):
    """A walk only passes *through* non-critical nodes."""
    odg = OzDependenceGraph(sequence, critical_degree=k)
    critical = set(odg.critical_nodes())
    for walk in odg.generate_subsequences(max_walks=100):
        for node in walk[1:]:
            assert node not in critical


@given(
    sequence=st.lists(st.sampled_from(PASS_NAMES), min_size=2, max_size=40),
)
@settings(max_examples=40, deadline=None)
def test_generation_is_deterministic(sequence):
    a = OzDependenceGraph(sequence).generate_subsequences(max_walks=100)
    b = OzDependenceGraph(sequence).generate_subsequences(max_walks=100)
    assert a == b
