"""Deeper encoder properties: sum semantics, flow weights, components."""

import numpy as np

from repro.embeddings import (
    IR2VecEncoder,
    W_ARG,
    W_FLOW,
    W_OPCODE,
    W_TYPE,
    program_embedding,
)
from repro.embeddings.vocabulary import default_vocabulary
from tests.conftest import build_module


def test_ir2vec_weights_match_published_values():
    # IR2Vec's published composition weights.
    assert W_OPCODE == 1.0
    assert W_TYPE == 0.5
    assert W_ARG == 0.2


def test_program_embedding_scales_with_size():
    """Sum semantics: duplicating the work grows the embedding norm."""
    small = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %a = add i32 %n, 1
  ret i32 %a
}
"""
    )
    body = "\n".join(f"  %a{i} = add i32 %n, {i}" for i in range(20))
    big = build_module(
        f"""
define i32 @entry(i32 %n) {{
entry:
{body}
  ret i32 %a19
}}
"""
    )
    assert np.linalg.norm(program_embedding(big)) > np.linalg.norm(
        program_embedding(small)
    )


def test_seed_instruction_composition():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %a = add i32 %n, 1
  ret i32 %a
}
"""
    )
    encoder = IR2VecEncoder()
    vocab = default_vocabulary()
    fn = module.get_function("entry")
    add = fn.entry.instructions[0]
    seed = encoder.seed_instruction(add)
    expected = (
        W_OPCODE * vocab.opcode("add")
        + W_TYPE * vocab.type_kind("int32")
        + W_ARG * vocab.operand_kind("argument")
        + W_ARG * vocab.operand_kind("constant")
    )
    assert np.allclose(seed, expected)


def test_flow_component_mixes_reaching_defs():
    """A load's embedding includes the reaching store's embedding."""
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
    )
    encoder = IR2VecEncoder()
    fn = module.get_function("entry")
    flowed = encoder.function_instruction_embeddings(fn)
    insts = fn.entry.instructions
    store = insts[1]
    load = insts[2]
    seed_load = encoder.seed_instruction(load)
    # flowed(load) = seed(load) + W_FLOW * seed(pointer-def) + W_FLOW * seed(store)
    contribution = flowed[id(load)] - seed_load
    seed_store = encoder.seed_instruction(store)
    # Strip the alloca (pointer operand def) part to isolate the store flow.
    seed_alloca = encoder.seed_instruction(insts[0])
    residue = contribution - W_FLOW * seed_alloca - W_FLOW * seed_store
    assert np.allclose(residue, 0.0, atol=1e-9)


def test_opcode_mix_dominates_similarity():
    """Programs with the same opcode histogram embed closer than programs
    with different ones (a sanity property of the representation)."""
    a1 = build_module(
        "define i32 @entry(i32 %n) {\nentry:\n  %x = add i32 %n, 1\n  %y = add i32 %x, 2\n  ret i32 %y\n}"
    )
    a2 = build_module(
        "define i32 @entry(i32 %n) {\nentry:\n  %x = add i32 %n, 9\n  %y = add i32 %x, 4\n  ret i32 %y\n}"
    )
    b = build_module(
        "define i32 @entry(i32 %n) {\nentry:\n  %p = alloca i32, align 4\n  store i32 %n, i32* %p, align 4\n  %x = load i32, i32* %p, align 4\n  ret i32 %x\n}"
    )
    ea1, ea2, eb = map(program_embedding, (a1, a2, b))

    def dist(u, v):
        return float(np.linalg.norm(u - v))

    assert dist(ea1, ea2) < dist(ea1, eb)
