"""IR2Vec-style embeddings: vocabulary and encoder."""

import numpy as np
import pytest

from repro.embeddings import (
    DIMENSION,
    IR2VecEncoder,
    Vocabulary,
    default_vocabulary,
    function_embedding,
    program_embedding,
)
from repro.passes import run_passes
from repro.workloads import ProgramProfile, generate_program
from tests.conftest import DIAMOND_MODULE, LOOP_MODULE, build_module


class TestVocabulary:
    def test_dimension(self):
        vocab = Vocabulary()
        assert vocab.opcode("add").shape == (DIMENSION,)

    def test_deterministic(self):
        a = Vocabulary().opcode("add")
        b = Vocabulary().opcode("add")
        assert np.array_equal(a, b)

    def test_distinct_entities_nearly_orthogonal(self):
        vocab = default_vocabulary()
        a = vocab.opcode("add")
        b = vocab.opcode("mul")
        cos = float(a @ b)
        assert abs(cos) < 0.3  # high-dim random vectors

    def test_unit_norm(self):
        vocab = default_vocabulary()
        assert np.linalg.norm(vocab.opcode("load")) == pytest.approx(1.0)

    def test_oov_entities_get_vectors(self):
        vocab = Vocabulary()
        vec = vocab.opcode("some-future-opcode")
        assert vec.shape == (DIMENSION,)
        assert np.array_equal(vec, vocab.opcode("some-future-opcode"))


class TestEncoder:
    def test_program_embedding_shape_and_dtype(self, loop_module):
        vec = program_embedding(loop_module)
        assert vec.shape == (300,)  # the paper's dimensionality
        assert vec.dtype == np.float32
        assert np.isfinite(vec).all()

    def test_embedding_deterministic(self, loop_module):
        assert np.array_equal(
            program_embedding(loop_module), program_embedding(loop_module)
        )

    def test_clone_has_same_embedding(self, loop_module):
        assert np.allclose(
            program_embedding(loop_module),
            program_embedding(loop_module.clone()),
        )

    def test_different_programs_differ(self, loop_module, diamond_module):
        a = program_embedding(loop_module)
        b = program_embedding(diamond_module)
        assert not np.allclose(a, b)

    def test_optimization_changes_embedding(self):
        module = generate_program(ProgramProfile(name="e", seed=4, segments=5))
        before = program_embedding(module)
        run_passes(module, ["mem2reg", "instcombine", "simplifycfg", "dce"])
        after = program_embedding(module)
        assert not np.allclose(before, after)

    def test_flow_awareness_distinguishes_data_flow(self):
        """Same multiset of instructions, different use-def wiring."""
        a = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %x = add i32 %n, 1
  %y = mul i32 %x, 2
  %z = sub i32 %y, 3
  ret i32 %z
}
"""
        )
        b = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %x = add i32 %n, 1
  %y = mul i32 %n, 2
  %z = sub i32 %x, 3
  ret i32 %z
}
"""
        )
        assert not np.allclose(program_embedding(a), program_embedding(b))

    def test_size_normalization_keeps_magnitudes_bounded(self):
        small = generate_program(ProgramProfile(name="s", seed=1, segments=2))
        large = generate_program(ProgramProfile(name="l", seed=1, segments=14))
        ns = np.linalg.norm(program_embedding(small))
        nl = np.linalg.norm(program_embedding(large))
        assert 0.05 < ns < 50
        assert 0.05 < nl < 50

    def test_function_embedding_of_declaration_is_zero(self):
        module = build_module("declare i32 @ext(i32)\n")
        fn = module.get_function("ext")
        assert np.allclose(function_embedding(fn), 0.0)

    def test_custom_vocabulary_dimension(self):
        encoder = IR2VecEncoder(Vocabulary(dimension=64))
        module = build_module(DIAMOND_MODULE)
        assert encoder.program_embedding(module).shape == (64,)
