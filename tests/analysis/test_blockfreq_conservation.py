"""Block-frequency flow conservation and trip-count awareness."""

import pytest

from repro.analysis import BlockFrequency
from tests.conftest import build_module


def test_exit_flow_conserved_through_loop():
    """Code after a loop runs as often as code before it, regardless of
    in-loop branch shapes."""
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %latch ]
  %odd = and i32 %i, 1
  %c0 = icmp ne i32 %odd, 0
  br i1 %c0, label %a, label %b
a:
  br label %latch
b:
  br label %latch
latch:
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %h, label %after
after:
  %r = add i32 %i2, 1
  ret i32 %r
}
"""
    )
    fn = module.get_function("entry")
    freq = BlockFrequency(fn)
    blocks = {b.name: b for b in fn.blocks}
    assert freq.frequency(blocks["after"]) == pytest.approx(
        freq.frequency(blocks["entry"]), rel=0.01
    )


def test_constant_trip_count_drives_frequency():
    src = """
define i32 @entry(i32 %n) {{
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, {trip}
  br i1 %c, label %h, label %out
out:
  ret i32 %i2
}}
"""
    small = build_module(src.format(trip=4))
    large = build_module(src.format(trip=64))
    f_small = BlockFrequency(small.get_function("entry"))
    f_large = BlockFrequency(large.get_function("entry"))
    h_small = next(b for b in small.get_function("entry").blocks if b.name == "h")
    h_large = next(b for b in large.get_function("entry").blocks if b.name == "h")
    assert f_small.frequency(h_small) == pytest.approx(4.0)
    assert f_large.frequency(h_large) == pytest.approx(64.0)


def test_nested_loops_multiply_trip_counts():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %outer
outer:
  %i = phi i32 [ 0, %entry ], [ %i2, %olatch ]
  br label %inner
inner:
  %j = phi i32 [ 0, %outer ], [ %j2, %inner ]
  %j2 = add i32 %j, 1
  %jc = icmp slt i32 %j2, 8
  br i1 %jc, label %inner, label %olatch
olatch:
  %i2 = add i32 %i, 1
  %ic = icmp slt i32 %i2, 5
  br i1 %ic, label %outer, label %exit
exit:
  ret i32 %i2
}
"""
    )
    fn = module.get_function("entry")
    freq = BlockFrequency(fn)
    blocks = {b.name: b for b in fn.blocks}
    assert freq.frequency(blocks["inner"]) == pytest.approx(40.0)
    assert freq.frequency(blocks["olatch"]) == pytest.approx(5.0)
    assert freq.frequency(blocks["exit"]) == pytest.approx(1.0, rel=0.01)
