"""Liveness, reaching stores, block frequency."""

from repro.analysis import BlockFrequency, Liveness, LoopInfo, ReachingStores
from repro.ir import Load, Store
from tests.conftest import LOOP_MODULE, build_module


class TestLiveness:
    def test_loop_carried_values_live_across(self, loop_module):
        fn = loop_module.get_function("entry")
        live = Liveness(fn)
        blocks = {b.name: b for b in fn.blocks}
        inv = blocks["entry"].instructions[0]  # %inv used in body
        # inv is live into header and body.
        assert id(inv) in live.live_in[id(blocks["header"])]
        assert id(inv) in live.live_in[id(blocks["body"])]
        # Not live into exit (unused there).
        assert id(inv) not in live.live_in[id(blocks["exit"])]

    def test_phi_operands_live_out_of_preds(self, loop_module):
        fn = loop_module.get_function("entry")
        live = Liveness(fn)
        blocks = {b.name: b for b in fn.blocks}
        i2 = next(i for i in blocks["latch"].instructions if i.name == "i2")
        assert id(i2) in live.live_out[id(blocks["latch"])]

    def test_live_across_blocks_counts(self, loop_module):
        fn = loop_module.get_function("entry")
        live = Liveness(fn)
        blocks = {b.name: b for b in fn.blocks}
        inv = blocks["entry"].instructions[0]
        assert live.live_across_blocks(inv) >= 2

    def test_max_pressure_positive(self, loop_module):
        fn = loop_module.get_function("entry")
        assert Liveness(fn).max_pressure() >= 2

    def test_straightline_no_cross_block_liveness(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %a = add i32 %n, 1
  %b = mul i32 %a, 2
  ret i32 %b
}
"""
        )
        fn = module.get_function("entry")
        live = Liveness(fn)
        assert live.live_in[id(fn.entry)] == set()


class TestReachingStores:
    def test_store_reaches_load(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 %n, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
        )
        fn = module.get_function("entry")
        reaching = ReachingStores(fn)
        load = next(i for i in fn.instructions() if isinstance(i, Load))
        stores = reaching.stores_for(load)
        assert len(stores) == 1

    def test_killed_store_does_not_reach(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 1, i32* %p, align 4
  store i32 %n, i32* %p, align 4
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
        )
        fn = module.get_function("entry")
        reaching = ReachingStores(fn)
        load = next(i for i in fn.instructions() if isinstance(i, Load))
        stores = reaching.stores_for(load)
        assert len(stores) == 1
        assert stores[0].value is fn.args[0]

    def test_both_branch_stores_reach_merge_load(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  %c = icmp sgt i32 %n, 0
  br i1 %c, label %a, label %b
a:
  store i32 1, i32* %p, align 4
  br label %m
b:
  store i32 2, i32* %p, align 4
  br label %m
m:
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
        )
        fn = module.get_function("entry")
        reaching = ReachingStores(fn)
        load = next(i for i in fn.instructions() if isinstance(i, Load))
        assert len(reaching.stores_for(load)) == 2


class TestBlockFrequency:
    def test_loop_blocks_hotter(self, loop_module):
        fn = loop_module.get_function("entry")
        freq = BlockFrequency(fn)
        blocks = {b.name: b for b in fn.blocks}
        assert freq.frequency(blocks["body"]) > freq.frequency(blocks["entry"])
        assert freq.frequency(blocks["entry"]) == 1.0

    def test_nesting_multiplies(self):
        module = build_module(
            """
define i32 @entry(i32 %n) {
entry:
  br label %outer
outer:
  %i = phi i32 [ 0, %entry ], [ %i2, %olatch ]
  br label %inner
inner:
  %j = phi i32 [ 0, %outer ], [ %j2, %inner ]
  %j2 = add i32 %j, 1
  %jc = icmp slt i32 %j2, 4
  br i1 %jc, label %inner, label %olatch
olatch:
  %i2 = add i32 %i, 1
  %ic = icmp slt i32 %i2, %n
  br i1 %ic, label %outer, label %exit
exit:
  ret i32 %i2
}
"""
        )
        fn = module.get_function("entry")
        freq = BlockFrequency(fn)
        blocks = {b.name: b for b in fn.blocks}
        assert freq.frequency(blocks["inner"]) > freq.frequency(blocks["outer"])

    def test_branch_weights_skew(self, diamond_module):
        fn = diamond_module.get_function("entry")
        blocks = {b.name: b for b in fn.blocks}
        term = blocks["entry"].terminator
        term.meta["branch_weights"] = [2000, 1]
        freq = BlockFrequency(fn)
        assert freq.frequency(blocks["then"]) > 0.9
        assert freq.frequency(blocks["els"]) < 0.1

    def test_even_split_without_weights(self, diamond_module):
        fn = diamond_module.get_function("entry")
        freq = BlockFrequency(fn)
        blocks = {b.name: b for b in fn.blocks}
        assert abs(freq.frequency(blocks["then"]) - 0.5) < 1e-9
        assert abs(freq.frequency(blocks["merge"]) - 1.0) < 1e-9
