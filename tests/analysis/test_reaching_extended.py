"""ReachingStores edge cases."""

from repro.analysis import ReachingStores
from repro.ir import Load, Store
from tests.conftest import build_module


def loads_and_stores(module, fn="entry"):
    f = module.get_function(fn)
    loads = [i for i in f.instructions() if isinstance(i, Load)]
    stores = [i for i in f.instructions() if isinstance(i, Store)]
    return f, loads, stores


def test_loop_carried_store_reaches_header_load():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  store i32 0, i32* %p, align 4
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %h ]
  %v = load i32, i32* %p, align 4
  %w = add i32 %v, %i
  store i32 %w, i32* %p, align 4
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %h, label %out
out:
  %r = load i32, i32* %p, align 4
  ret i32 %r
}
"""
    )
    fn, loads, stores = loads_and_stores(module)
    reaching = ReachingStores(fn)
    header_load = loads[0]
    # Both the init store and the loop store can reach the header load.
    assert len(reaching.stores_for(header_load)) == 2
    # The loop body always runs before exiting (bottom-test), and its
    # store kills the init store: only the loop store reaches the exit.
    exit_reaching = reaching.stores_for(loads[1])
    assert exit_reaching == [stores[1]]


def test_different_objects_do_not_interfere():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %p = alloca i32, align 4
  %q = alloca i32, align 4
  store i32 1, i32* %p, align 4
  store i32 2, i32* %q, align 4
  %v = load i32, i32* %p, align 4
  ret i32 %v
}
"""
    )
    fn, loads, stores = loads_and_stores(module)
    reaching = ReachingStores(fn)
    got = reaching.stores_for(loads[0])
    assert len(got) == 1
    assert got[0] is stores[0]


def test_dynamic_gep_stores_may_reach():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  %a = alloca [4 x i32], align 4
  %m = and i32 %n, 3
  %pd = gep [4 x i32]* %a, i32 0, i32 %m
  store i32 9, i32* %pd, align 4
  %p1 = gep [4 x i32]* %a, i32 0, i32 1
  %v = load i32, i32* %p1, align 4
  ret i32 %v
}
"""
    )
    fn, loads, stores = loads_and_stores(module)
    reaching = ReachingStores(fn)
    assert stores[0] in reaching.stores_for(loads[0])
