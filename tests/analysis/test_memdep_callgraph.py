"""Alias analysis, escape analysis, and the call graph."""

from repro.analysis import (
    CallGraph,
    clobbers_between,
    may_alias,
    must_alias,
    pointer_escapes,
    underlying_object,
)
from repro.ir import (
    Alloca,
    ConstantInt,
    Function,
    FunctionType,
    GetElementPtr,
    GlobalVariable,
    IRBuilder,
    I32,
    I64,
    ArrayType,
    Module,
    Store,
)
from tests.conftest import build_module, make_simple_function


class TestAlias:
    def test_distinct_allocas_never_alias(self):
        a, b = Alloca(I32), Alloca(I32)
        assert not may_alias(a, b)
        assert may_alias(a, a)
        assert must_alias(a, a)

    def test_distinct_globals_never_alias(self):
        g1 = GlobalVariable(I32, "g1")
        g2 = GlobalVariable(I32, "g2")
        assert not may_alias(g1, g2)

    def test_gep_same_base_disjoint_offsets(self):
        arr = Alloca(ArrayType(I32, 8))
        p0 = GetElementPtr(arr, [ConstantInt(I64, 0), ConstantInt(I64, 0)])
        p1 = GetElementPtr(arr, [ConstantInt(I64, 0), ConstantInt(I64, 1)])
        assert not may_alias(p0, p1)
        assert may_alias(p0, p0)

    def test_gep_same_offset_must_alias(self):
        arr = Alloca(ArrayType(I32, 8))
        p_a = GetElementPtr(arr, [ConstantInt(I64, 0), ConstantInt(I64, 2)])
        p_b = GetElementPtr(arr, [ConstantInt(I64, 0), ConstantInt(I64, 2)])
        assert must_alias(p_a, p_b)

    def test_dynamic_gep_may_alias(self):
        from repro.ir import Argument

        arr = Alloca(ArrayType(I32, 8))
        i = Argument(I64, "i")
        pd = GetElementPtr(arr, [ConstantInt(I64, 0), i])
        p1 = GetElementPtr(arr, [ConstantInt(I64, 0), ConstantInt(I64, 1)])
        assert may_alias(pd, p1)
        assert not must_alias(pd, p1)

    def test_unknown_pointers_conservative(self):
        from repro.ir import Argument, PointerType

        p = Argument(PointerType(I32), "p")
        q = Argument(PointerType(I32), "q")
        assert may_alias(p, q)
        a = Alloca(I32)
        assert may_alias(p, a)  # arg may point anywhere... except? stays conservative

    def test_underlying_object_strips_geps(self):
        arr = Alloca(ArrayType(I32, 8))
        p = GetElementPtr(arr, [ConstantInt(I64, 0), ConstantInt(I64, 3)])
        assert underlying_object(p) is arr


class TestEscape:
    def test_local_loads_stores_do_not_escape(self):
        module, fn, b = make_simple_function()
        a = b.alloca(I32)
        b.store(fn.args[0], a)
        v = b.load(a)
        b.ret(v)
        assert not pointer_escapes(a)

    def test_call_escapes(self):
        module, fn, b = make_simple_function()
        from repro.ir import PointerType

        ext = Function(module, "ext", FunctionType(I32, [PointerType(I32)]))
        a = b.alloca(I32)
        b.store(fn.args[0], a)
        call = b.call(ext, [a])
        b.ret(call)
        assert pointer_escapes(a)

    def test_storing_the_address_escapes(self):
        module, fn, b = make_simple_function()
        from repro.ir import PointerType

        a = b.alloca(I32)
        slot = b.alloca(PointerType(I32))
        b.store(a, slot)
        b.ret(fn.args[0])
        assert pointer_escapes(a)
        assert not pointer_escapes(slot)

    def test_gep_derived_use_does_not_escape(self):
        module, fn, b = make_simple_function()
        arr = b.alloca(ArrayType(I32, 4))
        p = b.gep(arr, [ConstantInt(I64, 0), ConstantInt(I64, 1)])
        b.store(fn.args[0], p)
        b.ret(fn.args[0])
        assert not pointer_escapes(arr)


class TestClobbers:
    def test_intervening_store_clobbers(self):
        module, fn, b = make_simple_function()
        a = b.alloca(I32)
        s1 = b.store(fn.args[0], a)
        s2 = b.store(ConstantInt(I32, 0), a)
        load = b.load(a)
        b.ret(load)
        assert clobbers_between(s1, load, a)
        assert not clobbers_between(s2, load, a)

    def test_unrelated_store_does_not_clobber(self):
        module, fn, b = make_simple_function()
        a = b.alloca(I32)
        other = b.alloca(I32)
        s1 = b.store(fn.args[0], a)
        b.store(ConstantInt(I32, 0), other)
        load = b.load(a)
        b.ret(load)
        assert not clobbers_between(s1, load, a)


CG_MODULE = """
define internal i32 @leaf(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
define internal i32 @mid(i32 %x) {
entry:
  %a = call i32 @leaf(i32 %x)
  %b = call i32 @leaf(i32 %a)
  ret i32 %b
}
define internal i32 @selfrec(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %r, label %b
r:
  %x1 = sub i32 %x, 1
  %v = call i32 @selfrec(i32 %x1)
  ret i32 %v
b:
  ret i32 0
}
define internal i32 @orphan(i32 %x) {
entry:
  ret i32 %x
}
define i32 @entry(i32 %n) {
entry:
  %a = call i32 @mid(i32 %n)
  %b = call i32 @selfrec(i32 3)
  %r = add i32 %a, %b
  ret i32 %r
}
"""


class TestCallGraph:
    def test_call_sites(self):
        module = build_module(CG_MODULE)
        graph = CallGraph(module)
        assert len(graph.call_sites["leaf"]) == 2
        assert len(graph.call_sites["mid"]) == 1
        assert graph.call_sites["orphan"] == []

    def test_dead_detection(self):
        module = build_module(CG_MODULE)
        graph = CallGraph(module)
        assert graph.is_dead(module.get_function("orphan"))
        assert not graph.is_dead(module.get_function("leaf"))
        assert not graph.is_dead(module.get_function("entry"))  # external

    def test_recursion_detection(self):
        module = build_module(CG_MODULE)
        graph = CallGraph(module)
        assert graph.is_recursive(module.get_function("selfrec"))
        assert not graph.is_recursive(module.get_function("leaf"))

    def test_bottom_up_order(self):
        module = build_module(CG_MODULE)
        graph = CallGraph(module)
        order = [f.name for f in graph.bottom_up_order()]
        assert order.index("leaf") < order.index("mid")
        assert order.index("mid") < order.index("entry")

    def test_address_taken(self):
        from repro.ir import PointerType

        module = build_module(CG_MODULE)
        leaf = module.get_function("leaf")
        module.add_global(
            GlobalVariable(PointerType(leaf.ftype), "fp", leaf, True, "internal")
        )
        graph = CallGraph(module)
        assert "leaf" in graph.address_taken
        assert "mid" not in graph.address_taken
