"""Natural-loop detection and loop shape queries."""

from repro.analysis import LoopInfo
from tests.conftest import LOOP_MODULE, build_module


NESTED_LOOPS = """
define i32 @entry(i32 %n) {
entry:
  br label %outer
outer:
  %i = phi i32 [ 0, %entry ], [ %i2, %outer.latch ]
  br label %inner
inner:
  %j = phi i32 [ 0, %outer ], [ %j2, %inner ]
  %j2 = add i32 %j, 1
  %jc = icmp slt i32 %j2, 4
  br i1 %jc, label %inner, label %outer.latch
outer.latch:
  %i2 = add i32 %i, 1
  %ic = icmp slt i32 %i2, %n
  br i1 %ic, label %outer, label %exit
exit:
  ret i32 %i2
}
"""


def test_single_loop_shape(loop_module):
    fn = loop_module.get_function("entry")
    info = LoopInfo(fn)
    assert len(info.loops) == 1
    (loop,) = info.loops
    assert loop.header.name == "header"
    assert {b.name for b in loop.blocks} == {"header", "body", "latch"}
    assert [l.name for l in loop.latches] == ["latch"]
    assert loop.single_latch.name == "latch"
    assert loop.depth == 1


def test_preheader_and_exits(loop_module):
    fn = loop_module.get_function("entry")
    (loop,) = LoopInfo(fn).loops
    assert loop.preheader().name == "entry"
    assert [b.name for b in loop.exiting_blocks()] == ["header"]
    assert [b.name for b in loop.exit_blocks()] == ["exit"]
    assert loop.has_dedicated_exits()


def test_nested_loops():
    module = build_module(NESTED_LOOPS)
    fn = module.get_function("entry")
    info = LoopInfo(fn)
    assert len(info.loops) == 2
    by_header = {l.header.name: l for l in info.loops}
    outer, inner = by_header["outer"], by_header["inner"]
    assert inner.parent is outer
    assert inner in outer.children
    assert outer.depth == 1 and inner.depth == 2
    assert inner.contains(inner.header)
    assert outer.contains(inner.header)


def test_loop_for_innermost():
    module = build_module(NESTED_LOOPS)
    fn = module.get_function("entry")
    info = LoopInfo(fn)
    blocks = {b.name: b for b in fn.blocks}
    assert info.loop_for(blocks["inner"]).header.name == "inner"
    assert info.loop_for(blocks["outer.latch"]).header.name == "outer"
    assert info.loop_for(blocks["exit"]) is None
    assert info.depth_of(blocks["inner"]) == 2
    assert info.depth_of(blocks["entry"]) == 0


def test_innermost_first_ordering():
    module = build_module(NESTED_LOOPS)
    fn = module.get_function("entry")
    info = LoopInfo(fn)
    order = info.innermost_first()
    assert order[0].header.name == "inner"
    assert order[1].header.name == "outer"
    assert [l.header.name for l in info.top_level()] == ["outer"]


def test_no_loops_in_acyclic(diamond_module):
    fn = diamond_module.get_function("entry")
    assert LoopInfo(fn).loops == []


def test_self_loop_single_block():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %spin
spin:
  %i = phi i32 [ 0, %entry ], [ %i2, %spin ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %spin, label %out
out:
  ret i32 %i2
}
"""
    )
    fn = module.get_function("entry")
    (loop,) = LoopInfo(fn).loops
    assert loop.header.name == "spin"
    assert loop.single_latch is loop.header
    assert len(loop.blocks) == 1


def test_multi_latch_loop():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %a2, %l1 ], [ %b2, %l2 ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %even = and i32 %i, 1
  %isodd = icmp ne i32 %even, 0
  br i1 %isodd, label %l1, label %l2
l1:
  %a2 = add i32 %i, 1
  br label %h
l2:
  %b2 = add i32 %i, 2
  br label %h
exit:
  ret i32 %i
}
"""
    )
    fn = module.get_function("entry")
    (loop,) = LoopInfo(fn).loops
    assert len(loop.latches) == 2
    assert loop.single_latch is None
