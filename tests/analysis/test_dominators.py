"""Dominator tree and dominance frontiers."""

from repro.analysis import DominatorTree
from tests.conftest import LOOP_MODULE, build_module


NESTED = """
define i32 @entry(i32 %n) {
entry:
  %c0 = icmp sgt i32 %n, 0
  br i1 %c0, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i32 [ 1, %a ], [ 2, %b ]
  br label %tail
tail:
  ret i32 %p
}
"""


def blocks_of(module, fn_name="entry"):
    fn = module.get_function(fn_name)
    return fn, {b.name: b for b in fn.blocks}


class TestIdom:
    def test_entry_has_no_idom(self):
        fn, blocks = blocks_of(build_module(NESTED))
        dom = DominatorTree(fn)
        assert dom.immediate_dominator(blocks["entry"]) is None

    def test_diamond_idoms(self):
        fn, blocks = blocks_of(build_module(NESTED))
        dom = DominatorTree(fn)
        assert dom.immediate_dominator(blocks["a"]) is blocks["entry"]
        assert dom.immediate_dominator(blocks["b"]) is blocks["entry"]
        assert dom.immediate_dominator(blocks["join"]) is blocks["entry"]
        assert dom.immediate_dominator(blocks["tail"]) is blocks["join"]

    def test_loop_idoms(self):
        fn, blocks = blocks_of(build_module(LOOP_MODULE))
        dom = DominatorTree(fn)
        assert dom.immediate_dominator(blocks["header"]) is blocks["entry"]
        assert dom.immediate_dominator(blocks["body"]) is blocks["header"]
        assert dom.immediate_dominator(blocks["latch"]) is blocks["body"]
        assert dom.immediate_dominator(blocks["exit"]) is blocks["header"]

    def test_dominates_block_reflexive_transitive(self):
        fn, blocks = blocks_of(build_module(LOOP_MODULE))
        dom = DominatorTree(fn)
        assert dom.dominates_block(blocks["header"], blocks["header"])
        assert dom.dominates_block(blocks["entry"], blocks["latch"])
        assert dom.dominates_block(blocks["header"], blocks["exit"])
        assert not dom.dominates_block(blocks["body"], blocks["exit"])
        assert dom.strictly_dominates_block(blocks["entry"], blocks["exit"])
        assert not dom.strictly_dominates_block(blocks["exit"], blocks["exit"])

    def test_children_partition(self):
        fn, blocks = blocks_of(build_module(NESTED))
        dom = DominatorTree(fn)
        child_names = {b.name for b in dom.children(blocks["entry"])}
        assert child_names == {"a", "b", "join"}


class TestValueDominance:
    def test_instruction_dominates_later_use(self):
        fn, blocks = blocks_of(build_module(LOOP_MODULE))
        dom = DominatorTree(fn)
        inv = blocks["entry"].instructions[0]
        use = blocks["body"].instructions[0]
        assert dom.dominates(inv, use)
        assert not dom.dominates(use, inv)

    def test_same_block_ordering(self):
        fn, blocks = blocks_of(build_module(NESTED))
        dom = DominatorTree(fn)
        first = blocks["entry"].instructions[0]
        second = blocks["entry"].instructions[1]
        assert dom.dominates(first, second)
        assert not dom.dominates(second, first)

    def test_arguments_dominate_everything(self):
        fn, blocks = blocks_of(build_module(LOOP_MODULE))
        dom = DominatorTree(fn)
        use = blocks["exit"].terminator
        assert dom.dominates(fn.args[0], use)


class TestFrontiers:
    def test_diamond_frontier_is_join(self):
        fn, blocks = blocks_of(build_module(NESTED))
        dom = DominatorTree(fn)
        frontiers = dom.dominance_frontiers()
        assert frontiers[id(blocks["a"])] == {id(blocks["join"])}
        assert frontiers[id(blocks["b"])] == {id(blocks["join"])}
        assert frontiers[id(blocks["join"])] == set()

    def test_loop_header_in_own_frontier(self):
        fn, blocks = blocks_of(build_module(LOOP_MODULE))
        dom = DominatorTree(fn)
        frontiers = dom.dominance_frontiers()
        # header has a back edge from latch: header ∈ DF(header-subtree).
        assert id(blocks["header"]) in frontiers[id(blocks["header"])]

    def test_dfs_preorder_parents_first(self):
        fn, blocks = blocks_of(build_module(LOOP_MODULE))
        dom = DominatorTree(fn)
        order = dom.dfs_preorder()
        position = {id(b): i for i, b in enumerate(order)}
        for block in order:
            parent = dom.immediate_dominator(block)
            if parent is not None:
                assert position[id(parent)] < position[id(block)]


def test_unreachable_blocks_absent():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  ret i32 %n
dead:
  ret i32 0
}
"""
    )
    fn = module.get_function("entry")
    dom = DominatorTree(fn)
    dead = next(b for b in fn.blocks if b.name == "dead")
    assert not dom.is_reachable(dead)
    assert dom.is_reachable(fn.entry)
