"""CFG traversal and unreachable-block removal."""

from repro.analysis import (
    postorder,
    predecessors_map,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
)
from repro.ir import ConstantInt, IRBuilder, I32, run_module, verify_module
from tests.conftest import LOOP_MODULE, build_module, make_simple_function


def test_reverse_postorder_starts_at_entry(loop_module):
    fn = loop_module.get_function("entry")
    order = reverse_postorder(fn)
    assert order[0] is fn.entry
    assert len(order) == len(fn.blocks)


def test_rpo_visits_defs_before_uses_in_acyclic(diamond_module):
    fn = diamond_module.get_function("entry")
    order = [b.name for b in reverse_postorder(fn)]
    assert order.index("entry") < order.index("then")
    assert order.index("then") < order.index("merge")
    assert order.index("els") < order.index("merge")


def test_postorder_is_reverse_of_rpo(loop_module):
    fn = loop_module.get_function("entry")
    assert postorder(fn) == list(reversed(reverse_postorder(fn)))


def test_reachable_excludes_orphans():
    module, fn, b = make_simple_function()
    b.ret(fn.args[0])
    dead = fn.add_block("dead")
    IRBuilder(dead).ret(ConstantInt(I32, 0))
    ids = reachable_blocks(fn)
    assert id(fn.entry) in ids
    assert id(dead) not in ids


def test_predecessors_map(loop_module):
    fn = loop_module.get_function("entry")
    preds = predecessors_map(fn)
    by_name = {b.name: b for b in fn.blocks}
    header_preds = {p.name for p in preds[id(by_name["header"])]}
    assert header_preds == {"entry", "latch"}
    assert preds[id(fn.entry)] == []


def test_remove_unreachable_blocks_fixes_phis():
    module = build_module(
        """
define i32 @entry(i32 %n) {
entry:
  br label %merge
dead:
  %d = add i32 %n, 1
  br label %merge
merge:
  %p = phi i32 [ %n, %entry ], [ %d, %dead ]
  ret i32 %p
}
"""
    )
    fn = module.get_function("entry")
    assert remove_unreachable_blocks(fn)
    verify_module(module)
    assert len(fn.blocks) == 2
    result, _ = run_module(module, "entry", [3])
    assert result == 3


def test_remove_unreachable_noop_when_all_reachable(loop_module):
    fn = loop_module.get_function("entry")
    assert not remove_unreachable_blocks(fn)


def test_remove_unreachable_cycle():
    """A dead cycle (blocks referencing each other) is fully removed."""
    module, fn, b = make_simple_function()
    b.ret(fn.args[0])
    d1, d2 = fn.add_block("d1"), fn.add_block("d2")
    IRBuilder(d1).br(d2)
    IRBuilder(d2).br(d1)
    assert remove_unreachable_blocks(fn)
    assert len(fn.blocks) == 1
    verify_module(module)
